//! The tenant proxy plane (paper §4.2, §4.4).
//!
//! Each tenant owns a fleet of `N` proxies organized into `n` **proxy
//! groups**. A request is hashed to a group by its key ("a custom hashing
//! function") and then sent to a random proxy inside the group — the *limited
//! fan-out hash* strategy. Each proxy receives `1/n` of the keyspace, so a
//! larger `n` concentrates each key on fewer proxies (higher per-proxy hit
//! ratio), while a smaller `n` spreads a hot key across `N/n` proxies (lower
//! per-proxy pressure).
//!
//! Proxies also enforce the **proxy quota** (standard rate = tenant quota / N,
//! autonomously boosted 2×, clawed back by the meta server) and carry the
//! **AU-LRU** cache whose hits are "directly returned without throttling or
//! charges".

use crate::types::{ConsistencyLevel, TenantId};
use abase_cache::aulru::AuLruConfig;
use abase_cache::{AuLruCache, CacheStats};
use abase_quota::{ProxyQuota, QuotaDecision, RuEstimator};
use abase_util::clock::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one tenant's proxy plane.
#[derive(Debug, Clone)]
pub struct ProxyPlaneConfig {
    /// Total proxies `N`.
    pub n_proxies: u32,
    /// Proxy groups `n` (limited fan-out parameter); divides `N` ideally.
    pub n_groups: u32,
    /// Tenant quota in RU/s (divided across proxies).
    pub tenant_quota_ru: f64,
    /// AU-LRU settings per proxy.
    pub cache: AuLruConfig,
    /// Whether the proxy cache is active (Table 2 toggles this).
    pub cache_enabled: bool,
    /// Whether proxy quota enforcement is active (Figure 6 toggles this).
    pub quota_enabled: bool,
}

impl Default for ProxyPlaneConfig {
    fn default() -> Self {
        Self {
            n_proxies: 8,
            n_groups: 4,
            tenant_quota_ru: 10_000.0,
            cache: AuLruConfig::default(),
            cache_enabled: true,
            quota_enabled: true,
        }
    }
}

/// What the proxy plane decided about a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProxyDecision {
    /// The proxy cache answered; nothing reaches the data node and no quota
    /// is consumed.
    CacheHit {
        /// Which proxy served it.
        proxy: u32,
    },
    /// Forward to the data node via this proxy.
    Forward {
        /// Which proxy forwards it.
        proxy: u32,
    },
    /// Rejected by the proxy quota.
    Rejected {
        /// Which proxy rejected it.
        proxy: u32,
    },
}

#[derive(Debug)]
struct ProxySim {
    quota: ProxyQuota,
    cache: AuLruCache<u64, usize>,
    /// Reads this proxy answered from its own cache.
    reads_local: u64,
    /// Reads this proxy forwarded to the data plane (for the router to place
    /// on a replica). Kept separate from `reads_local` so hit attribution
    /// stays correct now that forwarded reads may be served by followers.
    reads_forwarded: u64,
    /// Reads the proxy quota rejected — still pressure on this proxy, so
    /// they count toward the hot-key distribution but toward neither
    /// serving-side counter.
    reads_rejected: u64,
}

/// One proxy's read-serving split: answered locally vs forwarded downstream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyReadSplit {
    /// Reads served from the proxy's own cache.
    pub local: u64,
    /// Reads forwarded to the data plane.
    pub forwarded: u64,
}

/// One tenant's proxy fleet.
#[derive(Debug)]
pub struct ProxyPlane {
    /// Owning tenant.
    pub tenant: TenantId,
    config: ProxyPlaneConfig,
    proxies: Vec<ProxySim>,
    /// Proxy-side RU estimator (drives admission pricing).
    estimator: RuEstimator,
    rng: StdRng,
    group_size: u32,
}

impl ProxyPlane {
    /// Build the plane for `tenant` at virtual time `now`.
    pub fn new(tenant: TenantId, config: ProxyPlaneConfig, now: SimTime, seed: u64) -> Self {
        assert!(config.n_proxies >= 1);
        assert!(config.n_groups >= 1 && config.n_groups <= config.n_proxies);
        let per_proxy = config.tenant_quota_ru / config.n_proxies as f64;
        let proxies = (0..config.n_proxies)
            .map(|_| ProxySim {
                quota: ProxyQuota::new(per_proxy, now),
                cache: AuLruCache::new(config.cache),
                reads_local: 0,
                reads_forwarded: 0,
                reads_rejected: 0,
            })
            .collect();
        let group_size = config.n_proxies / config.n_groups;
        Self {
            tenant,
            config,
            proxies,
            estimator: RuEstimator::default(),
            rng: StdRng::seed_from_u64(seed),
            group_size: group_size.max(1),
        }
    }

    /// The plane configuration.
    pub fn config(&self) -> &ProxyPlaneConfig {
        &self.config
    }

    /// Toggle quota enforcement (Figure 6's minute-35 switch).
    pub fn set_quota_enabled(&mut self, enabled: bool) {
        self.config.quota_enabled = enabled;
    }

    /// Toggle the proxy cache (Table 2's before/after).
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.config.cache_enabled = enabled;
    }

    /// Reconfigure the group count (the Table 2 rollout "solely alters the
    /// traffic routing proxy strategy").
    pub fn set_groups(&mut self, n_groups: u32) {
        assert!(n_groups >= 1 && n_groups <= self.config.n_proxies);
        self.config.n_groups = n_groups;
        self.group_size = (self.config.n_proxies / n_groups).max(1);
    }

    /// Meta-server directive toward every proxy (boost on/off).
    pub fn set_boost(&mut self, allowed: bool, now: SimTime) {
        for p in &mut self.proxies {
            p.quota.set_boost(allowed, now);
        }
    }

    /// Update the tenant quota (autoscaling path).
    pub fn set_tenant_quota(&mut self, quota_ru: f64, now: SimTime) {
        self.config.tenant_quota_ru = quota_ru;
        let per_proxy = quota_ru / self.config.n_proxies as f64;
        for p in &mut self.proxies {
            p.quota.set_standard_rate(per_proxy, now);
        }
    }

    /// The plane's current RU estimate for one request (admission pricing).
    pub fn estimate_ru(&self, is_write: bool) -> f64 {
        if is_write {
            self.estimator.write_ru(1024, 3)
        } else {
            self.estimator.estimate_read_ru()
        }
    }

    /// Limited fan-out hash routing: key → group → random member.
    pub fn route(&mut self, key: u64) -> u32 {
        let group = (mix64(key) % u64::from(self.config.n_groups)) as u32;
        let member = self.rng.gen_range(0..self.group_size);
        (group * self.group_size + member).min(self.config.n_proxies - 1)
    }

    /// Process a request at `now`. Reads may be served by the proxy cache;
    /// everything else is admission-checked against the proxy quota. Reads
    /// run at [`ConsistencyLevel::Eventual`] — the historical behavior; use
    /// [`ProxyPlane::submit_read`] to carry a stronger level.
    pub fn submit(&mut self, key: u64, is_write: bool, now: SimTime) -> ProxyDecision {
        self.submit_with(key, is_write, ConsistencyLevel::Eventual, now)
    }

    /// Submit a read at an explicit consistency level.
    pub fn submit_read(
        &mut self,
        key: u64,
        consistency: ConsistencyLevel,
        now: SimTime,
    ) -> ProxyDecision {
        self.submit_with(key, false, consistency, now)
    }

    /// Process a request carrying a consistency level. The proxy cache may
    /// only answer `Eventual` reads: it has no LSN to prove a fence, so
    /// `ReadYourWrites` and `Leader` reads always forward to the data plane
    /// (where the read router picks a fenced replica or the leader).
    pub fn submit_with(
        &mut self,
        key: u64,
        is_write: bool,
        consistency: ConsistencyLevel,
        now: SimTime,
    ) -> ProxyDecision {
        let proxy = self.route(key);
        let p = &mut self.proxies[proxy as usize];
        let cacheable = !is_write && consistency == ConsistencyLevel::Eventual;
        if cacheable && self.config.cache_enabled && p.cache.get(&key, now).is_some() {
            p.reads_local += 1;
            crate::metrics::PROXY_CACHE_HITS.inc();
            return ProxyDecision::CacheHit { proxy };
        }
        if is_write && self.config.cache_enabled {
            // A write invalidates the routed proxy's cached copy.
            p.cache.invalidate(&key);
        }
        if self.config.quota_enabled {
            let est = if is_write {
                self.estimator.write_ru(1024, 3)
            } else {
                self.estimator.estimate_read_ru()
            };
            if p.quota.admit(now, est) == QuotaDecision::Reject {
                if !is_write {
                    p.reads_rejected += 1;
                }
                return ProxyDecision::Rejected { proxy };
            }
        }
        if !is_write {
            p.reads_forwarded += 1;
            crate::metrics::PROXY_FORWARDS.inc();
        }
        ProxyDecision::Forward { proxy }
    }

    /// Record a completed read so the routed proxy caches it and the
    /// estimator tracks sizes/hits.
    pub fn on_read_complete(
        &mut self,
        proxy: u32,
        key: u64,
        value_bytes: usize,
        node_cache_hit: bool,
        now: SimTime,
    ) {
        if self.config.cache_enabled {
            self.proxies[proxy as usize]
                .cache
                .insert(key, value_bytes, value_bytes, now);
        }
        self.estimator.record_read(
            value_bytes,
            if node_cache_hit {
                abase_quota::ru::ReadOutcome::NodeCacheHit
            } else {
                abase_quota::ru::ReadOutcome::Miss
            },
        );
    }

    /// Drain the active-update refresh candidates of every proxy: `(proxy,
    /// key)` pairs the plane should re-read from the data node and then
    /// [`ProxyPlane::complete_refresh`].
    pub fn refresh_candidates(&mut self, now: SimTime) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        if !self.config.cache_enabled {
            return out;
        }
        for (i, p) in self.proxies.iter_mut().enumerate() {
            for cand in p.cache.refresh_candidates(now) {
                out.push((i as u32, cand.key));
            }
        }
        out
    }

    /// Finish an active refresh with the re-read value.
    pub fn complete_refresh(&mut self, proxy: u32, key: u64, value_bytes: usize, now: SimTime) {
        self.proxies[proxy as usize]
            .cache
            .update(key, value_bytes, value_bytes, now);
    }

    /// Aggregate proxy-cache statistics across the fleet.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for p in &self.proxies {
            total.merge(p.cache.stats());
        }
        total
    }

    /// Per-proxy read counts (served locally + forwarded + quota-rejected) —
    /// the hot-key pressure distribution the fan-out parameter trades against
    /// hit ratio. Counted from explicit request counters, not cache-stat
    /// lookups, so active-refresh probes and disabled caches don't skew
    /// attribution; rejected reads still count as pressure.
    pub fn per_proxy_lookups(&self) -> Vec<u64> {
        self.proxies
            .iter()
            .map(|p| p.reads_local + p.reads_forwarded + p.reads_rejected)
            .collect()
    }

    /// Per-proxy split of reads served locally vs forwarded to the data
    /// plane — what the read router's hit attribution consumes.
    pub fn per_proxy_read_split(&self) -> Vec<ProxyReadSplit> {
        self.proxies
            .iter()
            .map(|p| ProxyReadSplit {
                local: p.reads_local,
                forwarded: p.reads_forwarded,
            })
            .collect()
    }

    /// Fleet-wide read split (sums of [`ProxyPlane::per_proxy_read_split`]).
    pub fn read_split(&self) -> ProxyReadSplit {
        let mut total = ProxyReadSplit::default();
        for p in &self.proxies {
            total.local += p.reads_local;
            total.forwarded += p.reads_forwarded;
        }
        total
    }
}

/// SplitMix64 finalizer — the "custom hashing function" for group routing.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abase_util::clock::secs;

    fn plane(n_proxies: u32, n_groups: u32) -> ProxyPlane {
        ProxyPlane::new(
            1,
            ProxyPlaneConfig {
                n_proxies,
                n_groups,
                tenant_quota_ru: 1000.0,
                ..Default::default()
            },
            0,
            42,
        )
    }

    #[test]
    fn routing_stays_within_group() {
        let mut p = plane(8, 4);
        // Same key must always land in the same group (size 2).
        let key = 12345u64;
        let group = p.route(key) / 2;
        for _ in 0..100 {
            assert_eq!(p.route(key) / 2, group);
        }
    }

    #[test]
    fn cache_hit_after_read_completion() {
        let mut p = plane(4, 4); // group size 1: routing is deterministic
        let key = 7u64;
        match p.submit(key, false, 0) {
            ProxyDecision::Forward { proxy } => {
                p.on_read_complete(proxy, key, 512, false, 0);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            p.submit(key, false, secs(1)),
            ProxyDecision::CacheHit { .. }
        ));
    }

    #[test]
    fn writes_invalidate_cached_reads() {
        let mut p = plane(4, 4);
        let key = 9u64;
        if let ProxyDecision::Forward { proxy } = p.submit(key, false, 0) {
            p.on_read_complete(proxy, key, 512, false, 0);
        }
        assert!(matches!(
            p.submit(key, true, secs(1)),
            ProxyDecision::Forward { .. }
        ));
        // The cached copy is gone.
        assert!(matches!(
            p.submit(key, false, secs(2)),
            ProxyDecision::Forward { .. }
        ));
    }

    #[test]
    fn quota_rejects_floods_and_boost_doubles() {
        let mut p = plane(1, 1);
        // Quota 1000 RU/s, boosted ×2; reads estimate at 1 RU. Burst capacity
        // at t=0 is 2000.
        let mut forwarded = 0;
        for i in 0..5000u64 {
            if matches!(p.submit(i, false, 0), ProxyDecision::Forward { .. }) {
                forwarded += 1;
            }
        }
        assert!((1900..=2100).contains(&forwarded), "forwarded={forwarded}");
        // Clawback: boost off halves the steady rate.
        p.set_boost(false, secs(10));
        let mut steady = 0;
        for t in 0..1000u64 {
            let now = secs(11) + t * 1000;
            if matches!(p.submit(t, false, now), ProxyDecision::Forward { .. }) {
                steady += 1;
            }
        }
        assert!(steady <= 1100, "steady={steady}");
    }

    #[test]
    fn disabled_quota_forwards_everything() {
        let mut p = plane(2, 1);
        p.set_quota_enabled(false);
        p.set_cache_enabled(false);
        for i in 0..10_000u64 {
            assert!(matches!(
                p.submit(i, false, 0),
                ProxyDecision::Forward { .. }
            ));
        }
    }

    #[test]
    fn fewer_groups_spread_hot_key_over_more_proxies() {
        // One scorching key; compare the per-proxy load spread for n=8 vs n=1.
        let run = |groups: u32| -> usize {
            let mut p = plane(8, groups);
            p.set_quota_enabled(false);
            for _ in 0..8_000 {
                p.submit(42, false, 0);
            }
            p.per_proxy_lookups().iter().filter(|&&c| c > 0).count()
        };
        let narrow = run(8); // group size 1 → one proxy takes it all
        let wide = run(1); // group size 8 → spread over 8 proxies
        assert_eq!(narrow, 1);
        assert!(wide >= 6, "hot key hit {wide} proxies");
    }

    #[test]
    fn refresh_candidates_surface_hot_entries() {
        let mut p = plane(1, 1);
        p.set_quota_enabled(false);
        let key = 5u64;
        if let ProxyDecision::Forward { proxy } = p.submit(key, false, 0) {
            p.on_read_complete(proxy, key, 256, false, 0);
        }
        // Hammer the key so it counts as hot.
        for t in 1..10 {
            p.submit(key, false, secs(t));
        }
        // Default TTL is 60 s, refresh window 5 s.
        let cands = p.refresh_candidates(secs(56));
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].1, key);
        p.complete_refresh(cands[0].0, key, 256, secs(56));
        // Still serving after the original expiry.
        assert!(matches!(
            p.submit(key, false, secs(70)),
            ProxyDecision::CacheHit { .. }
        ));
    }

    #[test]
    fn stronger_consistency_bypasses_the_proxy_cache() {
        let mut p = plane(4, 4);
        let key = 11u64;
        if let ProxyDecision::Forward { proxy } = p.submit(key, false, 0) {
            p.on_read_complete(proxy, key, 128, false, 0);
        }
        // Cached for Eventual...
        assert!(matches!(
            p.submit_read(key, ConsistencyLevel::Eventual, secs(1)),
            ProxyDecision::CacheHit { .. }
        ));
        // ...but the cache cannot prove an LSN fence: RYW and Leader reads
        // must reach the data plane.
        assert!(matches!(
            p.submit_read(key, ConsistencyLevel::ReadYourWrites, secs(1)),
            ProxyDecision::Forward { .. }
        ));
        assert!(matches!(
            p.submit_read(key, ConsistencyLevel::Leader, secs(1)),
            ProxyDecision::Forward { .. }
        ));
    }

    #[test]
    fn read_split_attributes_local_vs_forwarded() {
        let mut p = plane(2, 1);
        p.set_quota_enabled(false);
        let key = 3u64;
        if let ProxyDecision::Forward { proxy } = p.submit(key, false, 0) {
            p.on_read_complete(proxy, key, 64, false, 0);
        }
        // Hammer the same key, completing each forward so every proxy caches
        // after its own first miss: the split then records exactly the reads
        // that really reached the data plane (one first-miss per proxy).
        for _ in 0..20 {
            if let ProxyDecision::Forward { proxy } = p.submit(key, false, secs(1)) {
                p.on_read_complete(proxy, key, 64, false, secs(1));
            }
        }
        let split = p.read_split();
        assert_eq!(split.local + split.forwarded, 21);
        assert!(split.forwarded <= 2, "split={split:?}");
        assert!(split.local >= 19, "split={split:?}");
        let per_proxy = p.per_proxy_read_split();
        let sum: u64 = per_proxy.iter().map(|s| s.local + s.forwarded).sum();
        assert_eq!(sum, 21);
        assert_eq!(
            p.per_proxy_lookups(),
            per_proxy
                .iter()
                .map(|s| s.local + s.forwarded)
                .collect::<Vec<_>>()
        );
        // Writes are not part of the read split.
        p.submit(key, true, secs(2));
        assert_eq!(p.read_split().local + p.read_split().forwarded, 21);
    }

    #[test]
    fn plane_cache_stats_aggregate() {
        let mut p = plane(4, 2);
        p.set_quota_enabled(false);
        for i in 0..100u64 {
            if let ProxyDecision::Forward { proxy } = p.submit(i, false, 0) {
                p.on_read_complete(proxy, i, 64, false, 0);
            }
        }
        for i in 0..100u64 {
            p.submit(i, false, secs(1));
        }
        let stats = p.cache_stats();
        assert!(stats.hits > 30, "hits={}", stats.hits);
    }
}
