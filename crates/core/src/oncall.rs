//! The Figure 8b oncall model.
//!
//! "The occurrence of emergency oncalls likely indicates that users have
//! experienced throttling." We model a population of tenants whose usage
//! grows with noise; in **reactive** mode a quota is raised only *after* usage
//! crosses it (each crossing files oncall tickets that week); in **predictive**
//! mode the Algorithm-1 autoscaler raises quotas ahead of the forecast peak,
//! so only forecast misses (sudden unforecastable jumps) produce tickets.

use abase_scheduler::{AutoscaleConfig, Autoscaler, ScalingDecision};
use abase_util::clock::days;
use abase_util::TimeSeries;
use abase_workload::series::HOUR;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How tenant quotas are managed in the oncall study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingMode {
    /// Quota raised only after a throttling incident (pre-deployment).
    Reactive,
    /// Predictive autoscaling (post-deployment, §5.1).
    Predictive,
}

/// Weekly oncall counts produced by the study.
#[derive(Debug, Clone, PartialEq)]
pub struct OncallSeries {
    /// Tickets per week.
    pub weekly: Vec<u32>,
}

impl OncallSeries {
    /// Mean weekly tickets.
    pub fn mean(&self) -> f64 {
        if self.weekly.is_empty() {
            return 0.0;
        }
        self.weekly.iter().map(|&c| f64::from(c)).sum::<f64>() / self.weekly.len() as f64
    }
}

/// Configuration for the oncall study.
#[derive(Debug, Clone, Copy)]
pub struct OncallStudyConfig {
    /// Tenants in the pool.
    pub tenants: usize,
    /// Weeks simulated.
    pub weeks: usize,
    /// Weekly usage growth factor per tenant (mean).
    pub weekly_growth: f64,
    /// Multiplicative usage noise.
    pub noise: f64,
    /// Per-tenant per-week probability of an unforecastable flash burst
    /// (hot events, product launches) that no forecaster can anticipate.
    pub flash_burst_prob: f64,
    /// Peak multiplier of a flash burst.
    pub flash_burst_factor: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OncallStudyConfig {
    fn default() -> Self {
        Self {
            tenants: 200,
            weeks: 26,
            weekly_growth: 1.05,
            noise: 0.08,
            flash_burst_prob: 0.02,
            flash_burst_factor: 2.2,
            seed: 17,
        }
    }
}

/// Run the study in one mode and return weekly oncall counts.
#[allow(clippy::needless_range_loop)]
pub fn run_oncall_study(config: &OncallStudyConfig, mode: ScalingMode) -> OncallSeries {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut weekly = vec![0u32; config.weeks];
    let mut autoscaler = Autoscaler::new(AutoscaleConfig::default());
    for tenant in 0..config.tenants {
        // Initial state: usage at ~50 % of quota.
        let mut usage = 100.0 * rng.gen_range(0.5..2.0);
        let mut quota = usage * 2.0;
        // Rolling 30-day hourly history fed to the forecaster.
        let mut history: Vec<f64> = Vec::new();
        let growth = config.weekly_growth + rng.gen_range(-0.02..0.02);
        for week in 0..config.weeks {
            // One week of hourly samples with a daily cycle and noise.
            for h in 0..24 * 7 {
                let diurnal = 1.0 + 0.2 * (2.0 * std::f64::consts::PI * h as f64 / 24.0).sin();
                let n = 1.0 + config.noise * rng.gen_range(-1.0_f64..1.0);
                history.push(usage * diurnal * n);
            }
            if history.len() > 720 {
                let cut = history.len() - 720;
                history.drain(..cut);
            }
            let week_slice = &history[history.len().saturating_sub(24 * 7)..];
            let mut week_peak = week_slice.iter().copied().fold(0.0, f64::max);
            // Flash bursts are invisible to history: they spike the observed
            // peak without leaving a forecastable trace.
            if rng.gen::<f64>() < config.flash_burst_prob {
                week_peak *= config.flash_burst_factor;
            }
            if week_peak > quota {
                // Throttling: a ticket is filed this week; support bumps the
                // quota reactively (in either mode — this is the emergency
                // path).
                weekly[week] += 1;
                quota = week_peak / 0.65;
            } else if mode == ScalingMode::Predictive && history.len() >= 240 {
                // The autoscaler runs weekly on the trailing history.
                let series = TimeSeries::new(0, HOUR, history.clone());
                let now = days(week as u64 * 7);
                let (decision, _) =
                    autoscaler.forecast_and_decide(tenant as u32, now, &series, None, quota, 4);
                match decision {
                    ScalingDecision::ScaleUp {
                        new_tenant_quota, ..
                    } => quota = new_tenant_quota,
                    ScalingDecision::ScaleDown {
                        new_tenant_quota, ..
                    } => quota = new_tenant_quota.max(week_peak * 1.1),
                    ScalingDecision::Hold => {}
                }
            }
            usage *= growth;
        }
    }
    OncallSeries { weekly }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictive_mode_reduces_oncalls() {
        let config = OncallStudyConfig {
            tenants: 60,
            weeks: 16,
            ..Default::default()
        };
        let reactive = run_oncall_study(&config, ScalingMode::Reactive);
        let predictive = run_oncall_study(&config, ScalingMode::Predictive);
        assert!(
            predictive.mean() < reactive.mean() * 0.6,
            "reactive {} vs predictive {}",
            reactive.mean(),
            predictive.mean()
        );
    }

    #[test]
    fn reactive_mode_files_recurring_tickets() {
        let config = OncallStudyConfig {
            tenants: 40,
            weeks: 12,
            ..Default::default()
        };
        let reactive = run_oncall_study(&config, ScalingMode::Reactive);
        assert!(reactive.mean() > 1.0, "mean={}", reactive.mean());
    }

    #[test]
    fn deterministic_under_seed() {
        let config = OncallStudyConfig {
            tenants: 20,
            weeks: 8,
            ..Default::default()
        };
        let a = run_oncall_study(&config, ScalingMode::Predictive);
        let b = run_oncall_study(&config, ScalingMode::Predictive);
        assert_eq!(a, b);
    }
}
