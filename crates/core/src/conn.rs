//! Per-connection RESP state machine for the event-driven front end.
//!
//! A [`Conn`] owns one client socket plus everything the socket's protocol
//! position needs to survive `WouldBlock`: the partial-frame read buffer,
//! parsed-but-unexecuted frames, the bounded write queue, and the session
//! state (tenant, consistency level, LSN fence). The same machine serves
//! both front-end models — the epoll workers drive it with non-blocking
//! sockets, and the legacy thread-per-connection baseline drives it with
//! blocking reads — so pipelining semantics are identical in both.
//!
//! **Pipelining.** One readable event drains the socket, batch-parses every
//! complete frame ([`RespValue::parse_batch`]), executes the batch in wire
//! order, and answers with **one vectored write** covering every reply.
//! Commands are never reordered within a connection: execution stops at the
//! first command that may block (replicated write, `WAIT`, `PSYNC`) and the
//! connection — with its remaining parsed frames — is handed off the event
//! loop as a unit.
//!
//! **Backpressure.** Replies queue in `out`; when the peer reads slowly the
//! queue grows until [`HIGH_WATER`], at which point the connection stops
//! *reading* (its worker keeps serving every other socket) until the queue
//! drains below [`LOW_WATER`]. Writable interest is registered only while
//! output is pending.

use crate::metrics;
use crate::server::{argv_strings, command_label, dispatch, CmdMetricsCache, ConnCtx, ConnState};
use abase_obs::{Span, Stage};
use abase_proto::{Command, ParseCommandError, RespValue};
use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Stop reading from a connection whose un-flushed output exceeds this.
pub(crate) const HIGH_WATER: usize = 1 << 20;
/// Resume reading once the un-flushed output drains below this.
pub(crate) const LOW_WATER: usize = HIGH_WATER / 4;
/// Per-readable-event read budget: bound the bytes one socket can pull in
/// before its worker moves on (level-triggered readiness re-fires for the
/// rest).
const READ_BUDGET: usize = 256 * 1024;

/// What a drive of the state machine asks its owner to do next.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Step {
    /// Stay on the event loop (interest per `wants_read`/`wants_write`).
    Continue,
    /// Drop the connection (EOF, I/O error, or fatal protocol error with the
    /// error reply already flushed).
    Close,
    /// The next command may block (replicated write, fenced `WAIT`): take
    /// the connection off the loop and finish the batch on an offload
    /// thread.
    Offload,
    /// The next command is `PSYNC`: the connection becomes a replica stream
    /// and never returns to the command loop.
    Psync,
}

/// Track per-server open/accepted/evicted counts for `INFO` and the
/// max-clients cap (process-global metric gauges aside — embedded tests run
/// many servers per process, so the cap must not count a neighbor's
/// clients).
#[derive(Debug, Default)]
pub(crate) struct FrontEndStats {
    /// Currently open client connections (incl. offloaded and PSYNC ones).
    pub open: std::sync::atomic::AtomicI64,
    /// Connections accepted since bind.
    pub accepted: std::sync::atomic::AtomicU64,
    /// Connections evicted (idle reap + max-clients refusals).
    pub evicted: std::sync::atomic::AtomicU64,
}

/// Decrements the open-connection accounting exactly once, wherever the
/// connection ends (worker close, offload thread, replica stream, shutdown
/// drop).
#[derive(Debug)]
pub(crate) struct ConnGuard {
    stats: Arc<FrontEndStats>,
    worker_label: &'static str,
}

impl ConnGuard {
    /// Count a connection open under `worker_label` (an interned worker
    /// index, or `"accept"` before sharding).
    pub(crate) fn open(stats: Arc<FrontEndStats>, worker_label: &'static str) -> Self {
        stats.open.fetch_add(1, Ordering::Relaxed);
        stats.accepted.fetch_add(1, Ordering::Relaxed);
        metrics::CONNECTIONS.add(1);
        metrics::CONN_OPEN.with(worker_label).add(1);
        metrics::CONN_ACCEPTED.with(worker_label).inc();
        ConnGuard {
            stats,
            worker_label,
        }
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.stats.open.fetch_sub(1, Ordering::Relaxed);
        metrics::CONNECTIONS.add(-1);
        metrics::CONN_OPEN.with(self.worker_label).add(-1);
    }
}

/// One client connection's complete serving state.
#[derive(Debug)]
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    /// Raw bytes read but not yet parsed (at most a partial frame once a
    /// batch has been drained).
    pub(crate) inbuf: Vec<u8>,
    /// Parsed frames not yet executed (non-empty only across an offload
    /// handoff or when execution stopped at a blocking command).
    pending: VecDeque<RespValue>,
    /// Encoded replies not yet written, flushed with one vectored write.
    out: VecDeque<Vec<u8>>,
    /// Bytes of `out[0]` already written (partial-write resume point).
    out_head_pos: usize,
    /// Total un-flushed bytes across `out` (backpressure accounting).
    out_bytes: usize,
    /// A fatal protocol error parked until the frames before it are served.
    protocol_error: Option<abase_proto::ParseError>,
    /// Session state: tenant, consistency level, session LSN fence.
    pub(crate) state: ConnState,
    /// Per-connection command-metrics cache (see `server.rs`).
    cmd_metrics: CmdMetricsCache,
    /// Backpressured: output crossed [`HIGH_WATER`]; reads stay paused until
    /// the queue drains below [`LOW_WATER`] (hysteresis, not flapping at the
    /// threshold).
    throttled: bool,
    /// Close once `out` drains.
    closing: bool,
    /// Peer closed its read half — or we saw EOF — so stop reading.
    saw_eof: bool,
    /// Last moment bytes arrived (idle-reaper input).
    pub(crate) last_active: Instant,
    /// Index of the event-loop worker this connection is sharded to.
    pub(crate) worker: usize,
    /// Whether the socket currently has a poller registration (owned by the
    /// worker loop; offload handoffs clear it).
    pub(crate) registered: bool,
    /// The `(readable, writable)` interest installed in the poller, so an
    /// unchanged interest costs no `epoll_ctl`.
    pub(crate) installed_interest: (bool, bool),
    /// Open-connection accounting, released on drop.
    pub(crate) guard: ConnGuard,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, worker: usize, guard: ConnGuard) -> Self {
        Conn {
            stream,
            inbuf: Vec::with_capacity(4096),
            pending: VecDeque::new(),
            out: VecDeque::new(),
            out_head_pos: 0,
            out_bytes: 0,
            protocol_error: None,
            state: ConnState::default(),
            cmd_metrics: None,
            throttled: false,
            closing: false,
            saw_eof: false,
            last_active: Instant::now(),
            worker,
            registered: false,
            installed_interest: (false, false),
            guard,
        }
    }

    /// Whether the loop should watch this connection for readability.
    pub(crate) fn wants_read(&self) -> bool {
        !self.closing && !self.saw_eof && !self.throttled
    }

    /// Whether output is pending (register writable interest only then).
    pub(crate) fn wants_write(&self) -> bool {
        !self.out.is_empty()
    }

    /// Drive the machine after a readiness event on a **non-blocking**
    /// socket: flush if writable, read if readable, then parse/execute/flush
    /// the batch.
    pub(crate) fn on_event(&mut self, readable: bool, writable: bool, ctx: &ConnCtx) -> Step {
        if writable {
            match self.flush_nonblocking() {
                Ok(()) => {}
                Err(_) => return Step::Close,
            }
        }
        if readable && self.wants_read() {
            match self.fill_inbuf() {
                Ok(()) => {}
                Err(_) => return Step::Close,
            }
        }
        self.process(ctx)
    }

    /// Read until `WouldBlock`, EOF, backpressure, or the per-event budget.
    fn fill_inbuf(&mut self) -> std::io::Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        let mut taken = 0;
        while taken < READ_BUDGET && self.out_bytes < HIGH_WATER {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.saw_eof = true;
                    break;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    taken += n;
                    self.last_active = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Parse every complete frame, execute the batch in order (stopping at a
    /// command that must leave the loop), queue the replies, and flush them
    /// with one vectored write.
    pub(crate) fn process(&mut self, ctx: &ConnCtx) -> Step {
        if !self.closing {
            // Top up the pending frames from the raw buffer.
            if self.protocol_error.is_none() && !self.inbuf.is_empty() {
                let (batch, status) = RespValue::parse_batch(&self.inbuf);
                self.inbuf.drain(..batch.consumed);
                self.pending.extend(batch.frames);
                if let Err(e) = status {
                    // Report only after the frames before it are served.
                    self.protocol_error = Some(e);
                    self.inbuf.clear();
                }
            }
            let mut batch_commands = 0u64;
            let step = loop {
                let Some(value) = self.pending.front() else {
                    break None;
                };
                let command = Command::from_resp(value);
                if ctx.replication.is_some() {
                    if matches!(command, Ok(Command::PSync { .. })) {
                        break Some(Step::Psync);
                    }
                    if may_block(&command, ctx) {
                        break Some(Step::Offload);
                    }
                }
                // INVARIANT: the loop head peeked `front()` as Some.
                let value = self.pending.pop_front().expect("front checked");
                let reply = self.execute(&value, command, ctx);
                self.push_reply(&reply);
                batch_commands += 1;
            };
            if batch_commands > 0 && abase_obs::enabled() {
                metrics::PIPELINE_BATCH.record(batch_commands);
            }
            match step {
                Some(step) => {
                    // The handoff flushes what the batch produced so far.
                    return step;
                }
                None => {
                    if let Some(e) = self.protocol_error.take() {
                        self.push_reply(&RespValue::Error(format!("ERR protocol: {e}")));
                        self.closing = true;
                    }
                }
            }
        }
        if self.flush_nonblocking().is_err() {
            return Step::Close;
        }
        if self.out.is_empty() && (self.closing || self.saw_eof) {
            return Step::Close;
        }
        Step::Continue
    }

    /// Execute one command against the shared dispatcher, with the same
    /// span/metrics/slowlog instrumentation in both front-end models.
    pub(crate) fn execute(
        &mut self,
        value: &RespValue,
        command: Result<Command, ParseCommandError>,
        ctx: &ConnCtx,
    ) -> RespValue {
        let mut span = Span::begin();
        let label = command_label(value, &command);
        span.enter(Stage::Admission);
        let reply = dispatch(value, command, &mut self.state, &mut span, ctx);
        span.enter(Stage::Respond);
        if abase_obs::enabled() {
            let (count, micros) = match self.cmd_metrics {
                Some((cached, c, h)) if std::ptr::eq(cached, label) => (c, h),
                _ => {
                    let c = metrics::COMMANDS.with(label);
                    let h = metrics::COMMAND_MICROS.with(label);
                    self.cmd_metrics = Some((label, c, h));
                    (c, h)
                }
            };
            count.inc();
            if matches!(reply, RespValue::Error(_)) {
                metrics::COMMAND_ERRORS.inc(label);
            }
            if let Some(report) = span.finish() {
                micros.record(report.total_micros);
                ctx.slowlog.observe(&report, || argv_strings(value));
            }
        }
        reply
    }

    /// Queue one encoded reply for the batch's vectored write.
    pub(crate) fn push_reply(&mut self, reply: &RespValue) {
        let mut buf = Vec::with_capacity(64);
        reply.encode(&mut buf);
        self.out_bytes += buf.len();
        self.out.push_back(buf);
        if self.out_bytes >= HIGH_WATER {
            self.throttled = true;
        }
    }

    /// Write as much queued output as the socket accepts right now — one
    /// `writev` covering the whole batch, repeated only for partial writes.
    fn flush_nonblocking(&mut self) -> std::io::Result<()> {
        while !self.out.is_empty() {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(self.out.len().min(64));
            for (i, buf) in self.out.iter().take(64).enumerate() {
                let from = if i == 0 { self.out_head_pos } else { 0 };
                slices.push(IoSlice::new(&buf[from..]));
            }
            match self.stream.write_vectored(&slices) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.consume_out(n),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Drain every queued reply with blocking writes (offload threads and
    /// the thread-per-connection baseline; the socket must be in blocking
    /// mode).
    pub(crate) fn flush_blocking(&mut self) -> std::io::Result<()> {
        while let Some(front) = self.out.front() {
            let pos = self.out_head_pos;
            self.stream.write_all(&front[pos..])?;
            let n = front.len() - pos;
            self.consume_out(n);
        }
        Ok(())
    }

    /// Account `n` written bytes against the head of the output queue.
    fn consume_out(&mut self, mut n: usize) {
        self.out_bytes -= n;
        if self.out_bytes < LOW_WATER {
            self.throttled = false;
        }
        while n > 0 {
            let head_left = self.out[0].len() - self.out_head_pos;
            if n >= head_left {
                n -= head_left;
                self.out.pop_front();
                self.out_head_pos = 0;
            } else {
                self.out_head_pos += n;
                n = 0;
            }
        }
    }

    /// Un-parsed leftover bytes for a PSYNC handoff: frames the client
    /// pipelined *after* `PSYNC` (re-encoded) plus the raw partial tail —
    /// exactly what [`serve_replica_stream`](abase_replication::socket) wants
    /// as its initial buffer.
    pub(crate) fn take_leftover(&mut self) -> Vec<u8> {
        let mut leftover = Vec::new();
        for frame in self.pending.drain(..) {
            frame.encode(&mut leftover);
        }
        leftover.extend_from_slice(&self.inbuf);
        self.inbuf = Vec::new();
        leftover
    }

    /// Pop the next parsed frame (offload threads execute these in order).
    pub(crate) fn pop_pending(&mut self) -> Option<RespValue> {
        self.pending.pop_front()
    }

    /// Consume the `PSYNC` frame at the head of the pending queue and return
    /// its requested position (the thread-per-connection baseline's handoff;
    /// the caller has classified the head as `PSYNC` already).
    pub(crate) fn psync_position(&mut self) -> Option<(u64, u64)> {
        match self.pop_pending().map(|v| Command::from_resp(&v)) {
            Some(Ok(Command::PSync { position })) => position,
            _ => None,
        }
    }

    /// The baseline counterpart of [`Conn::process`]: parse every complete
    /// frame and execute the whole batch inline — blocking commands block
    /// this connection's own thread, which is the model — then flush with
    /// blocking writes. `PSYNC` still steps out (the caller upgrades the
    /// socket into a replica stream).
    pub(crate) fn process_blocking(&mut self, ctx: &ConnCtx) -> Step {
        if self.protocol_error.is_none() && !self.inbuf.is_empty() {
            let (batch, status) = RespValue::parse_batch(&self.inbuf);
            self.inbuf.drain(..batch.consumed);
            self.pending.extend(batch.frames);
            if let Err(e) = status {
                self.protocol_error = Some(e);
                self.inbuf.clear();
            }
        }
        let mut batch_commands = 0u64;
        let mut psync = false;
        while let Some(value) = self.pending.front() {
            let command = Command::from_resp(value);
            if ctx.replication.is_some() && matches!(command, Ok(Command::PSync { .. })) {
                psync = true;
                break;
            }
            // INVARIANT: the loop head peeked `front()` as Some.
            let value = self.pending.pop_front().expect("front checked");
            let reply = self.execute(&value, command, ctx);
            self.push_reply(&reply);
            batch_commands += 1;
        }
        if batch_commands > 0 && abase_obs::enabled() {
            metrics::PIPELINE_BATCH.record(batch_commands);
        }
        if !psync {
            if let Some(e) = self.protocol_error.take() {
                self.push_reply(&RespValue::Error(format!("ERR protocol: {e}")));
                self.closing = true;
            }
        }
        if self.flush_blocking().is_err() {
            return Step::Close;
        }
        if psync {
            return Step::Psync;
        }
        if self.closing {
            return Step::Close;
        }
        Step::Continue
    }
}

/// Commands that may park the serving thread when a replication plane is
/// attached: replicated writes commit under the group's write concern, and
/// `WAIT` drives follower acks up to its timeout. (`PSYNC` is classified
/// separately — it never comes back.)
fn may_block(command: &Result<Command, ParseCommandError>, ctx: &ConnCtx) -> bool {
    match command {
        Ok(Command::Wait { .. }) => true,
        Ok(c) => c.is_write() && !ctx.read_only,
        Err(_) => false,
    }
}
