//! # abase-core
//!
//! The ABase multi-tenant NoSQL serverless database (paper §3–§4): resource
//! pools of DataNodes hosting hash partitions of many tenants, a proxy plane
//! with active-update caching and limited fan-out hash routing, and a control
//! plane (meta server, autoscaler, rescheduler) — plus the discrete-time
//! cluster simulator that reproduces the paper's evaluation.
//!
//! Module map:
//!
//! * [`types`] — ids and shared request/response types.
//! * [`engine`] — the real data path: RESP [`abase_proto::Command`]s executed
//!   against a [`abase_lavastore::Db`] with tenant/table namespacing and TTLs.
//! * [`node`] — `DataNodeSim`: partition quotas → four dual-layer WFQs →
//!   SA-LRU cache → I/O cost model, driven in virtual-time ticks.
//! * [`proxy`] — the tenant proxy plane: AU-LRU proxy cache, proxy quotas with
//!   meta-server clawback, and limited fan-out hash routing over proxy groups.
//! * [`meta`] — the meta server: tenant traffic monitoring, replica-set
//!   routing, failover planning, and the §3.3 parallel-recovery model.
//! * [`cluster`] — the simulation driver tying workload generators, proxies,
//!   and nodes together; produces the per-minute series behind Figures 5–7.
//!   Also hosts [`cluster::ReplicatedCluster`]: real WAL-shipping replica
//!   groups (via `abase-replication`) placed across DataNodes, with
//!   MetaServer-driven failover and parallel reconstruction.
//! * [`router`] — the consistency-aware `ReadRouter`: `Eventual` reads spread
//!   over caught-up followers, `ReadYourWrites` reads pick a fenced replica,
//!   `Leader` reads pin to the leader — decided from the meta server's
//!   per-replica health/LSN view.
//! * [`migration`] — the live-migration engine: Algorithm-2 `Migration`
//!   plans executed as staged checkpoint copies (throttled by the §3.3
//!   recovery-bandwidth model) + binlog catch-up + epoch-guarded cut-overs,
//!   with one in-flight move per node.
//! * [`oncall`] — the Figure 8b oncall model (reactive vs. predictive scaling).
//! * [`placement`] — the §6.4 single-tenant vs multi-tenant utilization
//!   comparison and the §3.3 robustness arithmetic.
//! * [`server`] — a TCP front end speaking RESP2 over the table engine, so
//!   any Redis client can talk to a node; supports `WAIT`/`REPLCONF` against
//!   an attached replica group.
//! * [`event_loop`] — the epoll worker pool behind [`server`]: sharded
//!   per-connection state machines with real pipelining, a max-clients cap,
//!   an idle-connection reaper, and deterministic shutdown.

#![deny(missing_docs)]

pub mod cluster;
mod conn;
pub mod engine;
pub mod event_loop;
pub mod meta;
pub mod metrics;
pub mod migration;
pub mod node;
pub mod oncall;
pub mod placement;
pub mod proxy;
pub mod router;
pub mod server;
pub mod types;

pub use cluster::{
    ClusterRead, FailoverOutcome, IsolationExperiment, MinutePoint, ReplicatedCluster,
    ReplicatedClusterConfig, TenantSpec,
};
pub use engine::TableEngine;
pub use event_loop::{FrontEndConfig, ShutdownHandle};
pub use meta::{FailoverPlan, MetaServer, RecoveryModel, ReplicaHealth, ReplicaSet};
pub use migration::{
    MigrationConfig, MigrationEngine, MigrationError, MigrationReport, MigrationRequest,
};
pub use node::{DataNodeConfig, DataNodeSim, ReplicaRuSplit};
pub use proxy::{ProxyPlane, ProxyPlaneConfig, ProxyReadSplit};
pub use router::{ReadRouter, ReadRouterConfig, RouteDecision, RouterStats};
pub use server::{ReplInfo, ReplicationControl, RespServer};
pub use types::{ConsistencyLevel, NodeId, PartitionId, ProxyId, TenantId};
