//! Live partition migration: Algorithm-2 plans executed as real data
//! movement (paper §5.3 meets §3.3).
//!
//! The rescheduler emits `Migration` plans; this module is the engine that
//! turns each plan into an actual replica move through the shared staged
//! placement-change path in `abase-replication`:
//!
//! ```text
//! enqueue ──▶ [queued] ──(source & dest idle)──▶ stage:
//!     begin_join → ResyncTicket::copy_throttled (§3.3 Throttle,
//!     copy RU charged to both nodes) → complete_join
//!   ──▶ [catch-up] binlog tailing until lag ≤ cut-over budget
//!   ──▶ cut-over: drain to lag 0, epoch-bumped membership swap
//!       (handover first when the source led), MetaServer routing +
//!       health + read candidates switch together
//!   ──▶ source teardown (directory reclaimed) ──▶ [done]
//! ```
//!
//! The engine itself is pure bookkeeping — queue, per-node in-flight caps,
//! and reports; [`crate::cluster::ReplicatedCluster`] owns the groups, meta
//! server, and nodes, and drives the state machine from its `tick`. At most
//! **one in-flight move per node** (source or destination side): this is
//! what gives the scheduler's `is_migrating` back-pressure real semantics —
//! a node stays busy until the engine's completion (or abort) callback
//! clears it, not until an arbitrary round boundary.

use crate::types::{NodeId, PartitionId};
use std::collections::{HashSet, VecDeque};

/// One planned replica move: take `partition`'s replica off `from`, land it
/// on `to`. The scheduler's `Migration` maps onto this 1:1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRequest {
    /// Partition whose replica moves.
    pub partition: PartitionId,
    /// Node currently hosting the moving replica.
    pub from: NodeId,
    /// Node that will host it after cut-over.
    pub to: NodeId,
}

/// Why a migration could not be accepted or completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationError {
    /// The partition has no replica group.
    UnknownPartition(PartitionId),
    /// The source node does not host a replica of the partition.
    SourceNotMember(NodeId),
    /// The destination already hosts a replica of the partition (two
    /// replicas of one partition must never share a node).
    DestAlreadyMember(NodeId),
    /// The node is dead.
    NodeDead(NodeId),
    /// An identical or conflicting move for this partition is already
    /// queued or in flight.
    AlreadyPending(PartitionId),
}

impl std::fmt::Display for MigrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrationError::UnknownPartition(p) => write!(f, "partition {p} has no replica group"),
            MigrationError::SourceNotMember(n) => {
                write!(f, "source node {n} hosts no replica of the partition")
            }
            MigrationError::DestAlreadyMember(n) => {
                write!(f, "destination node {n} already hosts a replica")
            }
            MigrationError::NodeDead(n) => write!(f, "node {n} is dead"),
            MigrationError::AlreadyPending(p) => {
                write!(f, "partition {p} already has a pending migration")
            }
        }
    }
}

impl std::error::Error for MigrationError {}

/// An accepted migration the engine is executing: its staged checkpoint
/// copy completed and the destination joined the group, whose binlog it is
/// now tailing toward the cut-over budget.
#[derive(Debug, Clone)]
pub struct ActiveMigration {
    /// The move.
    pub req: MigrationRequest,
    /// Engine tick at which the staged copy completed (cut-over is never
    /// attempted in the same tick, so an in-flight move is observable).
    pub joined_at_tick: u64,
    /// Bytes the staged checkpoint copy moved.
    pub bytes_copied: u64,
    /// Wall-clock seconds the (throttled) copy took.
    pub copy_secs: f64,
}

/// A completed migration, for assertions and the ablation bench.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// The move.
    pub req: MigrationRequest,
    /// Bytes the staged checkpoint copy moved.
    pub bytes_copied: u64,
    /// Wall-clock seconds the (throttled) copy took.
    pub copy_secs: f64,
    /// Ticks spent in binlog catch-up between join and cut-over.
    pub catchup_ticks: u64,
    /// Destination LSN lag when cut-over was entered (≤ the configured
    /// budget; drained to 0 before the membership swap).
    pub cutover_entry_lag: u64,
    /// Whether the moving replica led the group (leadership was handed over
    /// as part of the cut-over).
    pub was_leader: bool,
}

/// A migration the engine gave up on (copy failure, node death), with the
/// reason — the source replica is untouched in every abort case.
#[derive(Debug, Clone)]
pub struct AbortedMigration {
    /// The move that was abandoned.
    pub req: MigrationRequest,
    /// Why.
    pub reason: String,
}

/// Engine tuning.
#[derive(Debug, Clone, Copy)]
pub struct MigrationConfig {
    /// Maximum LSN records the destination may trail by to enter cut-over
    /// (the final drain still brings it to 0 before the swap).
    pub cutover_lag_budget: u64,
    /// Safety valve: abort a migration that has not reached the cut-over
    /// budget after this many catch-up ticks (0 = never).
    pub max_catchup_ticks: u64,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        Self {
            cutover_lag_budget: 64,
            max_catchup_ticks: 0,
        }
    }
}

/// The migration engine: queue, per-node in-flight caps, and history. The
/// cluster drives it; benches and tests observe it.
#[derive(Debug, Default)]
pub struct MigrationEngine {
    config: MigrationConfig,
    queue: VecDeque<MigrationRequest>,
    inflight: Vec<ActiveMigration>,
    /// Nodes with an in-flight move (source or destination side). Cleared
    /// per migration by the completion/abort callbacks — never wholesale.
    busy: HashSet<NodeId>,
    completed: Vec<MigrationReport>,
    aborted: Vec<AbortedMigration>,
    tick: u64,
}

impl MigrationEngine {
    /// An engine with the given tuning.
    pub fn new(config: MigrationConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> MigrationConfig {
        self.config
    }

    /// Does `node` have an in-flight move (as source or destination)? This
    /// is the live counterpart of the scheduler's `NodeState::is_migrating`.
    pub fn is_migrating(&self, node: NodeId) -> bool {
        self.busy.contains(&node)
    }

    /// Queued (not yet started) moves, FIFO.
    pub fn queued(&self) -> Vec<MigrationRequest> {
        self.queue.iter().copied().collect()
    }

    /// Moves currently executing.
    pub fn in_flight(&self) -> &[ActiveMigration] {
        &self.inflight
    }

    /// Completed moves, oldest first.
    pub fn completed(&self) -> &[MigrationReport] {
        &self.completed
    }

    /// Abandoned moves, oldest first.
    pub fn aborted(&self) -> &[AbortedMigration] {
        &self.aborted
    }

    /// True when nothing is queued or in flight.
    pub fn idle(&self) -> bool {
        self.queue.is_empty() && self.inflight.is_empty()
    }

    /// Accept a move into the queue. Per-partition exclusivity is enforced
    /// here (one pending move per partition); per-node caps are enforced at
    /// start time.
    pub fn enqueue(&mut self, req: MigrationRequest) -> Result<(), MigrationError> {
        if req.from == req.to {
            return Err(MigrationError::DestAlreadyMember(req.to));
        }
        let pending = self.queue.iter().any(|q| q.partition == req.partition)
            || self
                .inflight
                .iter()
                .any(|m| m.req.partition == req.partition);
        if pending {
            return Err(MigrationError::AlreadyPending(req.partition));
        }
        self.queue.push_back(req);
        Ok(())
    }

    /// Advance the engine clock one tick.
    pub(crate) fn advance_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// The current engine tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Queued moves whose source and destination are both idle, in FIFO
    /// order; marks their nodes busy and removes them from the queue. The
    /// cluster stages each one (copy + join) and reports back with
    /// [`MigrationEngine::note_joined`] or [`MigrationEngine::note_aborted`].
    pub(crate) fn take_startable(&mut self) -> Vec<MigrationRequest> {
        let mut started = Vec::new();
        let mut rest = VecDeque::new();
        while let Some(req) = self.queue.pop_front() {
            if self.busy.contains(&req.from) || self.busy.contains(&req.to) {
                rest.push_back(req);
                continue;
            }
            self.busy.insert(req.from);
            self.busy.insert(req.to);
            started.push(req);
        }
        self.queue = rest;
        started
    }

    /// The staged copy completed and the destination joined the group.
    pub(crate) fn note_joined(&mut self, req: MigrationRequest, bytes_copied: u64, copy_secs: f64) {
        crate::metrics::MIGRATION_COPIED_BYTES.add(bytes_copied);
        crate::metrics::MIGRATION_PHASE_MICROS.record("copy", (copy_secs * 1e6) as u64);
        self.inflight.push(ActiveMigration {
            req,
            joined_at_tick: self.tick,
            bytes_copied,
            copy_secs,
        });
    }

    /// Cut-over completed: free both nodes and record the report.
    pub(crate) fn note_completed(
        &mut self,
        req: MigrationRequest,
        cutover_entry_lag: u64,
        was_leader: bool,
    ) {
        if let Some(pos) = self.inflight.iter().position(|m| m.req == req) {
            let active = self.inflight.remove(pos);
            self.busy.remove(&req.from);
            self.busy.remove(&req.to);
            crate::metrics::MIGRATIONS_COMPLETED.inc();
            self.completed.push(MigrationReport {
                req,
                bytes_copied: active.bytes_copied,
                copy_secs: active.copy_secs,
                catchup_ticks: self.tick.saturating_sub(active.joined_at_tick),
                cutover_entry_lag,
                was_leader,
            });
        }
    }

    /// A queued or in-flight move was abandoned: record why, and free its
    /// nodes only if it actually held them (an in-flight move — a queued one
    /// never acquired the busy flags, and clearing them here would release
    /// nodes a *different* in-flight move still owns).
    pub(crate) fn note_aborted(&mut self, req: MigrationRequest, reason: impl Into<String>) {
        let held_nodes = self.inflight.iter().any(|m| m.req == req);
        self.inflight.retain(|m| m.req != req);
        self.queue.retain(|q| *q != req);
        if held_nodes {
            self.busy.remove(&req.from);
            self.busy.remove(&req.to);
        }
        crate::metrics::MIGRATIONS_ABORTED.inc();
        self.aborted.push(AbortedMigration {
            req,
            reason: reason.into(),
        });
    }

    /// A move taken by [`MigrationEngine::take_startable`] failed before its
    /// destination joined the group: the busy flags it acquired at start are
    /// released (it was never in flight, so `note_aborted` would not).
    pub(crate) fn note_staging_failed(&mut self, req: MigrationRequest, reason: impl Into<String>) {
        self.busy.remove(&req.from);
        self.busy.remove(&req.to);
        crate::metrics::MIGRATIONS_ABORTED.inc();
        self.aborted.push(AbortedMigration {
            req,
            reason: reason.into(),
        });
    }

    /// Every pending (queued or in-flight) move touching `node`, for the
    /// cluster's node-death cancellation sweep.
    pub(crate) fn pending_involving(&self, node: NodeId) -> Vec<(MigrationRequest, bool)> {
        let mut out: Vec<(MigrationRequest, bool)> = self
            .inflight
            .iter()
            .filter(|m| m.req.from == node || m.req.to == node)
            .map(|m| (m.req, true))
            .collect();
        out.extend(
            self.queue
                .iter()
                .filter(|q| q.from == node || q.to == node)
                .map(|q| (*q, false)),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(partition: u64, from: u32, to: u32) -> MigrationRequest {
        MigrationRequest {
            partition,
            from,
            to,
        }
    }

    #[test]
    fn per_node_cap_blocks_a_second_move_until_completion() {
        let mut e = MigrationEngine::default();
        e.enqueue(req(1, 0, 3)).unwrap();
        e.enqueue(req(2, 0, 4)).unwrap(); // shares source node 0
        let started = e.take_startable();
        assert_eq!(started, vec![req(1, 0, 3)]);
        assert!(e.is_migrating(0) && e.is_migrating(3));
        assert!(!e.is_migrating(4));
        e.note_joined(req(1, 0, 3), 1024, 0.1);
        // The second move stays queued while node 0 is busy.
        assert!(e.take_startable().is_empty());
        assert_eq!(e.queued(), vec![req(2, 0, 4)]);
        // Completion — not a round boundary — frees the node.
        e.note_completed(req(1, 0, 3), 0, false);
        assert!(!e.is_migrating(0));
        assert_eq!(e.take_startable(), vec![req(2, 0, 4)]);
        assert_eq!(e.completed().len(), 1);
    }

    #[test]
    fn one_pending_move_per_partition() {
        let mut e = MigrationEngine::default();
        e.enqueue(req(1, 0, 3)).unwrap();
        assert_eq!(
            e.enqueue(req(1, 1, 4)),
            Err(MigrationError::AlreadyPending(1))
        );
        assert_eq!(
            e.enqueue(req(2, 5, 5)),
            Err(MigrationError::DestAlreadyMember(5))
        );
    }

    #[test]
    fn abort_frees_nodes_and_records_the_reason() {
        let mut e = MigrationEngine::default();
        e.enqueue(req(1, 0, 3)).unwrap();
        assert_eq!(e.take_startable().len(), 1);
        e.note_joined(req(1, 0, 3), 64, 0.0);
        e.note_aborted(req(1, 0, 3), "destination died");
        assert!(!e.is_migrating(0) && !e.is_migrating(3));
        assert!(e.idle());
        assert_eq!(e.aborted().len(), 1);
        assert_eq!(e.aborted()[0].reason, "destination died");
    }

    #[test]
    fn aborting_a_queued_move_never_frees_another_moves_nodes() {
        let mut e = MigrationEngine::default();
        e.enqueue(req(1, 0, 3)).unwrap();
        e.enqueue(req(2, 0, 4)).unwrap(); // queued behind busy node 0
        assert_eq!(e.take_startable().len(), 1);
        e.note_joined(req(1, 0, 3), 64, 0.0);
        // Dropping the *queued* move (say its destination died) must not
        // release node 0, which the in-flight move still owns.
        e.note_aborted(req(2, 0, 4), "destination died");
        assert!(e.is_migrating(0), "in-flight move's source was freed");
        assert!(e.is_migrating(3));
        assert!(!e.is_migrating(4));
        assert!(e.take_startable().is_empty());
    }

    #[test]
    fn staging_failure_releases_the_started_moves_nodes() {
        let mut e = MigrationEngine::default();
        e.enqueue(req(1, 0, 3)).unwrap();
        assert_eq!(e.take_startable().len(), 1);
        // The copy failed before the destination ever joined: the busy flags
        // acquired at start must come back.
        e.note_staging_failed(req(1, 0, 3), "staging failed: io");
        assert!(!e.is_migrating(0) && !e.is_migrating(3));
        assert!(e.idle());
        assert_eq!(e.aborted().len(), 1);
    }

    #[test]
    fn pending_involving_finds_queued_and_inflight() {
        let mut e = MigrationEngine::default();
        e.enqueue(req(1, 0, 3)).unwrap();
        e.enqueue(req(2, 0, 4)).unwrap();
        e.take_startable();
        e.note_joined(req(1, 0, 3), 64, 0.0);
        let involving = e.pending_involving(0);
        assert_eq!(involving.len(), 2);
        assert!(involving.contains(&(req(1, 0, 3), true)));
        assert!(involving.contains(&(req(2, 0, 4), false)));
        assert!(e.pending_involving(9).is_empty());
    }
}
