//! Core-layer metric declarations: RESP serving, proxy cache, per-tenant RU
//! split, and migration. Recording sites live in `server.rs`, `proxy.rs`,
//! `migration.rs`, and `cluster.rs`; this module only owns the handles.

use abase_obs::{
    LazyCounter, LazyCounterFamily, LazyGauge, LazyGaugeFamily, LazyHisto, LazyHistoFamily,
};

// --- RESP serving -----------------------------------------------------------

/// Live client connections on the RESP server.
pub static CONNECTIONS: LazyGauge = LazyGauge::new(
    "abase_server_connections",
    "Live client connections on the RESP server",
);

// --- Event-loop front end ---------------------------------------------------

/// Open connections, by event-loop worker (`accept` while still unassigned).
pub static CONN_OPEN: LazyGaugeFamily = LazyGaugeFamily::new(
    "abase_conn_open",
    "worker",
    "Open connections, by event-loop worker",
);

/// Connections accepted, by the event-loop worker they were sharded to.
pub static CONN_ACCEPTED: LazyCounterFamily = LazyCounterFamily::new(
    "abase_conn_accepted_total",
    "worker",
    "Connections accepted, by event-loop worker",
);

/// Connections evicted (idle reaper per worker; `accept` = refused at the
/// max-clients cap).
pub static CONN_EVICTED: LazyCounterFamily = LazyCounterFamily::new(
    "abase_conn_evicted_total",
    "worker",
    "Connections evicted by the idle reaper (per worker) or refused at the max-clients cap (`accept`)",
);

/// Commands executed per drained pipeline batch (one readable event = one
/// batch = one vectored write).
pub static PIPELINE_BATCH: LazyHisto = LazyHisto::new(
    "abase_pipeline_batch_commands",
    "Commands executed per drained pipeline batch",
);

/// Commands served, by command name.
pub static COMMANDS: LazyCounterFamily = LazyCounterFamily::new(
    "abase_server_commands_total",
    "command",
    "Commands served, by command name",
);

/// Commands answered with an error, by command name.
pub static COMMAND_ERRORS: LazyCounterFamily = LazyCounterFamily::new(
    "abase_server_command_errors_total",
    "command",
    "Commands answered with an error, by command name",
);

/// End-to-end command service latency, by command name.
pub static COMMAND_MICROS: LazyHistoFamily = LazyHistoFamily::new(
    "abase_server_command_micros",
    "command",
    "End-to-end command service latency, by command name",
);

/// Read RUs charged, by tenant (table).
pub static TENANT_READ_RU: LazyCounterFamily = LazyCounterFamily::new(
    "abase_tenant_read_ru_total",
    "tenant",
    "Read request units charged, by tenant",
);

/// Write RUs charged, by tenant (table).
pub static TENANT_WRITE_RU: LazyCounterFamily = LazyCounterFamily::new(
    "abase_tenant_write_ru_total",
    "tenant",
    "Write request units charged, by tenant",
);

// --- Proxy plane ------------------------------------------------------------

/// Reads answered from a proxy's AU-LRU cache.
pub static PROXY_CACHE_HITS: LazyCounter = LazyCounter::new(
    "abase_proxy_cache_hits_total",
    "Reads answered from the proxy AU-LRU cache",
);

/// Reads forwarded by proxies to the data plane.
pub static PROXY_FORWARDS: LazyCounter = LazyCounter::new(
    "abase_proxy_forwards_total",
    "Reads forwarded by proxies to the data plane",
);

// --- Migration --------------------------------------------------------------

/// Partition migrations completed through cut-over.
pub static MIGRATIONS_COMPLETED: LazyCounter = LazyCounter::new(
    "abase_migration_completed_total",
    "Partition migrations completed through cut-over",
);

/// Partition migrations aborted (source/destination death, staging failure).
pub static MIGRATIONS_ABORTED: LazyCounter = LazyCounter::new(
    "abase_migration_aborted_total",
    "Partition migrations aborted before cut-over",
);

/// Bytes copied by migration staged checkpoints.
pub static MIGRATION_COPIED_BYTES: LazyCounter = LazyCounter::new(
    "abase_migration_copied_bytes_total",
    "Bytes copied by migration staged checkpoints",
);

/// Migration phase durations, labelled by phase (`copy`, `catch_up`).
pub static MIGRATION_PHASE_MICROS: LazyHistoFamily = LazyHistoFamily::new(
    "abase_migration_phase_micros",
    "phase",
    "Migration phase durations, by phase",
);

/// WAIT fence latency on the serving path (replication-wait stage).
pub static WAIT_MICROS: LazyHisto = LazyHisto::new(
    "abase_server_wait_micros",
    "WAIT replication-fence latency on the serving path",
);
