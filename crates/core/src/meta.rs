//! The meta server: centralized management (paper §3.2) and the recovery /
//! robustness arithmetic of §3.3.
//!
//! In the simulator the meta server owns the tenant→partition→node routing
//! table, monitors per-tenant traffic to drive the asynchronous proxy-quota
//! clawback, and models parallel replica reconstruction after a node failure.

use crate::types::{NodeId, PartitionId, TenantId};
use abase_quota::TenantQuotaMonitor;
use abase_util::clock::SimTime;
use std::collections::HashMap;

/// Routing and control state.
#[derive(Debug)]
pub struct MetaServer {
    /// partition → primary node.
    routing: HashMap<PartitionId, NodeId>,
    /// tenant → its partitions.
    tenant_partitions: HashMap<TenantId, Vec<PartitionId>>,
    /// Traffic monitor backing the proxy boost decision.
    pub monitor: TenantQuotaMonitor,
}

impl MetaServer {
    /// A meta server whose traffic monitor uses the given sliding window.
    pub fn new(monitor_window: SimTime) -> Self {
        Self {
            routing: HashMap::new(),
            tenant_partitions: HashMap::new(),
            monitor: TenantQuotaMonitor::new(monitor_window),
        }
    }

    /// Register a partition on a node.
    pub fn assign_partition(&mut self, tenant: TenantId, partition: PartitionId, node: NodeId) {
        self.routing.insert(partition, node);
        self.tenant_partitions.entry(tenant).or_default().push(partition);
    }

    /// Node currently serving `partition`.
    pub fn route(&self, partition: PartitionId) -> Option<NodeId> {
        self.routing.get(&partition).copied()
    }

    /// Partitions of `tenant`.
    pub fn partitions_of(&self, tenant: TenantId) -> &[PartitionId] {
        self.tenant_partitions
            .get(&tenant)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Move a partition to another node (rescheduling/migration).
    pub fn move_partition(&mut self, partition: PartitionId, to: NodeId) {
        self.routing.insert(partition, to);
    }
}

/// The §3.3 recovery model.
///
/// When a DataNode fails, "the MetaServer coordinates parallel replica
/// reconstruction across operational nodes, thereby effectively utilizing
/// multi-node disk I/O bandwidth". A single-tenant replacement node instead
/// restores every replica through its own disk alone.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryModel {
    /// Bytes of replica data the failed node held.
    pub failed_node_bytes: f64,
    /// Per-node rebuild bandwidth (bytes/second).
    pub per_node_bandwidth: f64,
    /// Surviving nodes able to participate in reconstruction.
    pub surviving_nodes: u32,
}

impl RecoveryModel {
    /// Recovery time when one replacement node must ingest everything.
    pub fn single_node_recovery_secs(&self) -> f64 {
        self.failed_node_bytes / self.per_node_bandwidth
    }

    /// Recovery time with parallel reconstruction across survivors (both the
    /// read and write sides spread across `surviving_nodes` disks).
    pub fn parallel_recovery_secs(&self) -> f64 {
        self.failed_node_bytes / (self.per_node_bandwidth * f64::from(self.surviving_nodes))
    }

    /// §3.3 utilization bound for a single-tenant 3-replica system: a node
    /// failure moves 3/2 of a node's load onto the survivors, so utilization
    /// must stay below 2/3.
    pub fn single_tenant_max_utilization() -> f64 {
        2.0 / 3.0
    }

    /// §3.3 utilization bound for an N-node multi-tenant pool: failure load
    /// spreads as 1/N per survivor, allowing utilization up to `N/(N+1)`.
    pub fn multi_tenant_max_utilization(n_nodes: u32) -> f64 {
        let n = f64::from(n_nodes);
        n / (n + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abase_util::clock::secs;

    #[test]
    fn routing_roundtrip() {
        let mut m = MetaServer::new(secs(1));
        m.assign_partition(1, 100, 5);
        m.assign_partition(1, 101, 6);
        assert_eq!(m.route(100), Some(5));
        assert_eq!(m.route(999), None);
        assert_eq!(m.partitions_of(1), &[100, 101]);
        assert!(m.partitions_of(2).is_empty());
        m.move_partition(100, 9);
        assert_eq!(m.route(100), Some(9));
    }

    #[test]
    fn parallel_recovery_is_n_times_faster() {
        let model = RecoveryModel {
            failed_node_bytes: 1e12,
            per_node_bandwidth: 100e6,
            surviving_nodes: 20,
        };
        let single = model.single_node_recovery_secs();
        let parallel = model.parallel_recovery_secs();
        assert!((single / parallel - 20.0).abs() < 1e-9);
        assert!((single - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_bounds_match_paper() {
        assert!((RecoveryModel::single_tenant_max_utilization() - 2.0 / 3.0).abs() < 1e-12);
        // Large pools sustain near-full utilization.
        assert!(RecoveryModel::multi_tenant_max_utilization(20) > 0.95);
        assert!(
            RecoveryModel::multi_tenant_max_utilization(3)
                > RecoveryModel::single_tenant_max_utilization()
        );
    }
}
