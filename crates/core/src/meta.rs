//! The meta server: centralized management (paper §3.2) and the recovery /
//! robustness arithmetic of §3.3.
//!
//! The meta server owns the tenant→partition→replica-set routing table,
//! monitors per-tenant traffic to drive the asynchronous proxy-quota
//! clawback, and — on a DataNode failure — plans leader promotion (the
//! most-caught-up follower wins) plus **parallel replica reconstruction**:
//! each lost replica is re-seeded from a different surviving node so the
//! copies saturate many disks at once, the behavior [`RecoveryModel`] states
//! in closed form and `abase-replication`'s failover module measures.

use crate::types::{NodeId, PartitionId, TenantId};
use abase_quota::TenantQuotaMonitor;
use abase_util::clock::SimTime;
use std::collections::HashMap;

/// The replicas serving one partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaSet {
    /// Node hosting the leader replica.
    pub leader: NodeId,
    /// Nodes hosting follower replicas.
    pub followers: Vec<NodeId>,
}

impl ReplicaSet {
    /// Leader followed by followers.
    pub fn members(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(1 + self.followers.len());
        out.push(self.leader);
        out.extend_from_slice(&self.followers);
        out
    }

    /// Does `node` host a replica of this set?
    pub fn contains(&self, node: NodeId) -> bool {
        self.leader == node || self.followers.contains(&node)
    }
}

/// Runtime state of one replica as last reported to the meta server — the
/// per-replica health/LSN view the [`crate::router::ReadRouter`] routes
/// follower reads by. Reports arrive from the replica groups (heartbeats in
/// production; the cluster simulator pushes them after every write/tick), so
/// the view may trail the group's authoritative state by one report — which
/// is why the group re-validates fences on `read_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaHealth {
    /// Reachability at last report.
    pub alive: bool,
    /// Applied LSN at last report.
    pub acked_lsn: u64,
}

/// One leader promotion in a failover plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Promotion {
    /// Partition whose leader died.
    pub partition: PartitionId,
    /// Surviving follower (most-caught-up by acked LSN) to promote.
    pub new_leader: NodeId,
}

/// One replica copy in a failover plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconstructionAssignment {
    /// Partition whose replica was lost.
    pub partition: PartitionId,
    /// Surviving group member to copy from.
    pub source: NodeId,
    /// Node that will host the rebuilt replica.
    pub dest: NodeId,
}

/// Everything the meta server decided about one node failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverPlan {
    /// The failed node.
    pub failed: NodeId,
    /// Leader promotions, one per partition the failed node led.
    pub promotions: Vec<Promotion>,
    /// Replica copies, sources spread across surviving nodes.
    pub reconstructions: Vec<ReconstructionAssignment>,
}

impl FailoverPlan {
    /// Distinct source nodes — the reconstruction parallelism degree.
    pub fn distinct_sources(&self) -> usize {
        let mut nodes: Vec<NodeId> = self.reconstructions.iter().map(|r| r.source).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }
}

/// Routing and control state.
#[derive(Debug)]
pub struct MetaServer {
    /// partition → primary (leader) node.
    routing: HashMap<PartitionId, NodeId>,
    /// partition → full replica set (absent for unreplicated partitions).
    replica_sets: HashMap<PartitionId, ReplicaSet>,
    /// tenant → its partitions.
    tenant_partitions: HashMap<TenantId, Vec<PartitionId>>,
    /// (partition, node) → last reported replica health/LSN.
    replica_health: HashMap<(PartitionId, NodeId), ReplicaHealth>,
    /// Traffic monitor backing the proxy boost decision.
    pub monitor: TenantQuotaMonitor,
}

impl MetaServer {
    /// A meta server whose traffic monitor uses the given sliding window.
    pub fn new(monitor_window: SimTime) -> Self {
        Self {
            routing: HashMap::new(),
            replica_sets: HashMap::new(),
            tenant_partitions: HashMap::new(),
            replica_health: HashMap::new(),
            monitor: TenantQuotaMonitor::new(monitor_window),
        }
    }

    /// Register a partition on a node.
    pub fn assign_partition(&mut self, tenant: TenantId, partition: PartitionId, node: NodeId) {
        self.routing.insert(partition, node);
        self.tenant_partitions
            .entry(tenant)
            .or_default()
            .push(partition);
    }

    /// Register a replicated partition: writes route to `set.leader`, and the
    /// full membership is retained for failover planning.
    pub fn assign_replica_group(
        &mut self,
        tenant: TenantId,
        partition: PartitionId,
        set: ReplicaSet,
    ) {
        self.assign_partition(tenant, partition, set.leader);
        self.replica_sets.insert(partition, set);
    }

    /// Node currently serving `partition`.
    pub fn route(&self, partition: PartitionId) -> Option<NodeId> {
        self.routing.get(&partition).copied()
    }

    /// Full replica membership of `partition`, when replicated.
    pub fn replica_set(&self, partition: PartitionId) -> Option<&ReplicaSet> {
        self.replica_sets.get(&partition)
    }

    /// Partitions with a replica (leader or follower) on `node`, ascending.
    pub fn partitions_on_node(&self, node: NodeId) -> Vec<PartitionId> {
        let mut out: Vec<PartitionId> = self
            .replica_sets
            .iter()
            .filter(|(_, set)| set.contains(node))
            .map(|(&p, _)| p)
            .collect();
        out.sort_unstable();
        out
    }

    /// Partitions of `tenant`.
    pub fn partitions_of(&self, tenant: TenantId) -> &[PartitionId] {
        self.tenant_partitions
            .get(&tenant)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Move a partition's routing to another node (the instant routing flip;
    /// live migrations go through [`MetaServer::begin_migration`] /
    /// [`MetaServer::complete_migration`] instead). The departed node's
    /// replica-health entry moves with the routing — `read_candidates` must
    /// never offer a replica the flip just routed away from — and a tracked
    /// replica set follows the flip.
    pub fn move_partition(&mut self, partition: PartitionId, to: NodeId) {
        let from = self.routing.insert(partition, to);
        let Some(from) = from.filter(|&f| f != to) else {
            return;
        };
        // Purge the source's health; the destination keeps its own report if
        // it was already a member, otherwise it inherits the departed one
        // (the flip asserts the data is there now).
        if let Some(health) = self.replica_health.remove(&(partition, from)) {
            self.replica_health.entry((partition, to)).or_insert(health);
        }
        if let Some(set) = self.replica_sets.get_mut(&partition) {
            if set.leader == from {
                set.leader = to;
            }
            for f in &mut set.followers {
                if *f == from {
                    *f = to;
                }
            }
            // `to` may have been a member already: it must appear exactly
            // once, and never both as leader and follower.
            let leader = set.leader;
            let mut seen = Vec::with_capacity(set.followers.len());
            set.followers.retain(|&n| {
                let keep = n != leader && !seen.contains(&n);
                seen.push(n);
                keep
            });
        }
    }

    /// Start a live migration: the destination joins the partition's replica
    /// set as a staging follower, so health reports for it land in the
    /// routing view (read routing still gates it on reported lag/fences
    /// until it catches up).
    pub fn begin_migration(&mut self, partition: PartitionId, dest: NodeId) {
        if let Some(set) = self.replica_sets.get_mut(&partition) {
            if !set.contains(dest) {
                set.followers.push(dest);
            }
        }
    }

    /// Atomic cut-over of a live migration: the source leaves the replica
    /// set (taking the leadership slot with it when it led), routing follows
    /// the set's leader, the source's replica-health entry is purged — so
    /// `read_candidates` can never again offer the departed replica — and
    /// the destination's health is re-seeded at its applied LSN.
    pub fn complete_migration(
        &mut self,
        partition: PartitionId,
        from: NodeId,
        to: NodeId,
        dest_lsn: u64,
    ) {
        if let Some(set) = self.replica_sets.get_mut(&partition) {
            if set.leader == from {
                set.leader = to;
                set.followers.retain(|&n| n != to && n != from);
            } else {
                set.followers.retain(|&n| n != from);
                if !set.contains(to) {
                    set.followers.push(to);
                }
            }
            self.routing.insert(partition, set.leader);
        } else {
            self.routing.insert(partition, to);
        }
        self.replica_health.remove(&(partition, from));
        self.replica_health.insert(
            (partition, to),
            ReplicaHealth {
                alive: true,
                acked_lsn: dest_lsn,
            },
        );
    }

    /// Abort a live migration: the staging destination leaves the replica
    /// set and its health entry is purged (the source never moved).
    pub fn abort_migration(&mut self, partition: PartitionId, dest: NodeId) {
        if let Some(set) = self.replica_sets.get_mut(&partition) {
            if set.leader != dest {
                set.followers.retain(|&n| n != dest);
            }
        }
        self.replica_health.remove(&(partition, dest));
    }

    /// Record a replica's reported health/LSN (the group heartbeat path).
    pub fn report_replica_health(
        &mut self,
        partition: PartitionId,
        node: NodeId,
        alive: bool,
        acked_lsn: u64,
    ) {
        self.replica_health
            .insert((partition, node), ReplicaHealth { alive, acked_lsn });
    }

    /// The last reported health of `node`'s replica of `partition`.
    pub fn replica_health(&self, partition: PartitionId, node: NodeId) -> Option<ReplicaHealth> {
        self.replica_health.get(&(partition, node)).copied()
    }

    /// Records `node`'s replica trails the leader by, per the latest reports
    /// (`None` when either side is unreported).
    pub fn replica_lag(&self, partition: PartitionId, node: NodeId) -> Option<u64> {
        let leader = self.routing.get(&partition)?;
        let leader_lsn = self.replica_health(partition, *leader)?.acked_lsn;
        let node_lsn = self.replica_health(partition, node)?.acked_lsn;
        Some(leader_lsn.saturating_sub(node_lsn))
    }

    /// Nodes able to serve a read of `partition` under a fence of `min_lsn`:
    /// the leader (always a candidate while routed), then every follower
    /// reported alive with an applied LSN at or above the fence. Order:
    /// leader first, followers in replica-set order.
    pub fn read_candidates(&self, partition: PartitionId, min_lsn: Option<u64>) -> Vec<NodeId> {
        let Some(set) = self.replica_sets.get(&partition) else {
            return self.route(partition).into_iter().collect();
        };
        let mut out = vec![set.leader];
        for &f in &set.followers {
            let Some(health) = self.replica_health(partition, f) else {
                continue; // never reported: not a read candidate yet
            };
            if health.alive && min_lsn.is_none_or(|lsn| health.acked_lsn >= lsn) {
                out.push(f);
            }
        }
        out
    }

    /// Plan recovery from the failure of `failed` and update the routing
    /// tables to match the plan (§3.3).
    ///
    /// For every affected partition the plan contains a leader promotion when
    /// the failed node led it — the surviving follower with the highest
    /// `acked_lsn(partition, node)` wins, ties broken deterministically toward
    /// the lowest node id — and one reconstruction assignment re-seeding the
    /// lost replica on a spare node drawn from `available_nodes`. A follower
    /// reporting `None` (dead, or carrying unreconciled divergent history —
    /// see `ReplicaGroup::promotable_lsn`) is never promoted: its raw LSN may
    /// count records the group's acked history already replaced. Copy
    /// *sources* rotate across each group's survivors and *destinations*
    /// balance across the spares, so the recovery I/O spreads over as many
    /// disks as the cluster can offer (the multi-tenant advantage
    /// [`RecoveryModel::multi_tenant_max_utilization`] prices).
    pub fn plan_node_failure(
        &mut self,
        failed: NodeId,
        acked_lsn: impl Fn(PartitionId, NodeId) -> Option<u64>,
        available_nodes: &[NodeId],
    ) -> FailoverPlan {
        // The dead node's replicas must drop out of read routing immediately.
        self.replica_health.retain(|&(_, node), _| node != failed);
        let mut affected: Vec<PartitionId> = self
            .replica_sets
            .iter()
            .filter(|(_, set)| set.contains(failed))
            .map(|(&p, _)| p)
            .collect();
        affected.sort_unstable();
        let mut promotions = Vec::new();
        let mut reconstructions = Vec::new();
        let mut source_load: HashMap<NodeId, usize> = HashMap::new();
        let mut dest_load: HashMap<NodeId, usize> = HashMap::new();
        for &partition in &affected {
            // INVARIANT: `affected` was collected from this map's keys above.
            let set = self.replica_sets.get_mut(&partition).expect("affected");
            // 1. Promote if the dead node led this partition.
            if set.leader == failed {
                let winner = set
                    .followers
                    .iter()
                    .copied()
                    .filter(|&n| n != failed)
                    .filter_map(|n| acked_lsn(partition, n).map(|lsn| (n, lsn)))
                    .max_by_key(|&(n, lsn)| (lsn, std::cmp::Reverse(n)))
                    .map(|(n, _)| n);
                if let Some(new_leader) = winner {
                    set.followers.retain(|&n| n != new_leader);
                    set.leader = new_leader;
                    promotions.push(Promotion {
                        partition,
                        new_leader,
                    });
                    self.routing.insert(partition, new_leader);
                }
            }
            // The dead member leaves the set (its slot is re-seeded below).
            set.followers.retain(|&n| n != failed);
            // 2. Re-seed the lost replica: source rotates across survivors,
            //    destination balances across spare nodes outside the group.
            let survivors: Vec<NodeId> =
                set.members().into_iter().filter(|&n| n != failed).collect();
            let Some(&source) = survivors
                .iter()
                .min_by_key(|&&n| (source_load.get(&n).copied().unwrap_or(0), n))
            else {
                continue; // no survivor: data loss, nothing to plan
            };
            let dest = available_nodes
                .iter()
                .copied()
                .filter(|&n| n != failed && !set.contains(n))
                .min_by_key(|&n| (dest_load.get(&n).copied().unwrap_or(0), n));
            let Some(dest) = dest else { continue };
            *source_load.entry(source).or_default() += 1;
            *dest_load.entry(dest).or_default() += 1;
            set.followers.push(dest);
            reconstructions.push(ReconstructionAssignment {
                partition,
                source,
                dest,
            });
        }
        FailoverPlan {
            failed,
            promotions,
            reconstructions,
        }
    }
}

/// The §3.3 recovery model.
///
/// When a DataNode fails, "the MetaServer coordinates parallel replica
/// reconstruction across operational nodes, thereby effectively utilizing
/// multi-node disk I/O bandwidth". A single-tenant replacement node instead
/// restores every replica through its own disk alone.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryModel {
    /// Bytes of replica data the failed node held.
    pub failed_node_bytes: f64,
    /// Per-node rebuild bandwidth (bytes/second).
    pub per_node_bandwidth: f64,
    /// Surviving nodes able to participate in reconstruction.
    pub surviving_nodes: u32,
}

impl RecoveryModel {
    /// Recovery time when one replacement node must ingest everything.
    pub fn single_node_recovery_secs(&self) -> f64 {
        self.failed_node_bytes / self.per_node_bandwidth
    }

    /// Recovery time with parallel reconstruction across survivors (both the
    /// read and write sides spread across `surviving_nodes` disks).
    pub fn parallel_recovery_secs(&self) -> f64 {
        self.failed_node_bytes / (self.per_node_bandwidth * f64::from(self.surviving_nodes))
    }

    /// §3.3 utilization bound for a single-tenant 3-replica system: a node
    /// failure moves 3/2 of a node's load onto the survivors, so utilization
    /// must stay below 2/3.
    pub fn single_tenant_max_utilization() -> f64 {
        2.0 / 3.0
    }

    /// §3.3 utilization bound for an N-node multi-tenant pool: failure load
    /// spreads as 1/N per survivor, allowing utilization up to `N/(N+1)`.
    pub fn multi_tenant_max_utilization(n_nodes: u32) -> f64 {
        let n = f64::from(n_nodes);
        n / (n + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abase_util::clock::secs;

    #[test]
    fn routing_roundtrip() {
        let mut m = MetaServer::new(secs(1));
        m.assign_partition(1, 100, 5);
        m.assign_partition(1, 101, 6);
        assert_eq!(m.route(100), Some(5));
        assert_eq!(m.route(999), None);
        assert_eq!(m.partitions_of(1), &[100, 101]);
        assert!(m.partitions_of(2).is_empty());
        m.move_partition(100, 9);
        assert_eq!(m.route(100), Some(9));
    }

    #[test]
    fn replica_group_routing() {
        let mut m = MetaServer::new(secs(1));
        m.assign_replica_group(
            1,
            100,
            ReplicaSet {
                leader: 5,
                followers: vec![6, 7],
            },
        );
        assert_eq!(m.route(100), Some(5));
        assert_eq!(m.replica_set(100).unwrap().members(), vec![5, 6, 7]);
        assert_eq!(m.partitions_on_node(6), vec![100]);
        assert!(m.partitions_on_node(9).is_empty());
    }

    #[test]
    fn failover_promotes_most_caught_up_and_spreads_sources() {
        let mut m = MetaServer::new(secs(1));
        // Node 0 leads partitions 1..=3; each group spans three of nodes 0-3.
        m.assign_replica_group(
            1,
            1,
            ReplicaSet {
                leader: 0,
                followers: vec![1, 2],
            },
        );
        m.assign_replica_group(
            1,
            2,
            ReplicaSet {
                leader: 0,
                followers: vec![2, 3],
            },
        );
        m.assign_replica_group(
            1,
            3,
            ReplicaSet {
                leader: 0,
                followers: vec![3, 1],
            },
        );
        // Follower LSNs: per partition, the higher node id is further ahead.
        let acked = |partition: u64, node: u32| Some(partition * 100 + u64::from(node));
        let plan = m.plan_node_failure(0, acked, &[1, 2, 3, 4]);
        assert_eq!(plan.failed, 0);
        assert_eq!(plan.promotions.len(), 3);
        // Most-caught-up follower (highest acked LSN) wins each promotion.
        assert_eq!(
            plan.promotions[0],
            Promotion {
                partition: 1,
                new_leader: 2
            }
        );
        assert_eq!(
            plan.promotions[1],
            Promotion {
                partition: 2,
                new_leader: 3
            }
        );
        assert_eq!(
            plan.promotions[2],
            Promotion {
                partition: 3,
                new_leader: 3
            }
        );
        // Every lost replica is re-seeded, from more than one source disk.
        assert_eq!(plan.reconstructions.len(), 3);
        assert!(
            plan.distinct_sources() >= 2,
            "sources must spread: {plan:?}"
        );
        // Routing follows the promotions, and the dead node left every set.
        assert_eq!(m.route(1), Some(2));
        assert_eq!(m.route(2), Some(3));
        for p in 1..=3 {
            let set = m.replica_set(p).unwrap();
            assert!(!set.contains(0), "node 0 still in set of {p}: {set:?}");
            assert_eq!(set.members().len(), 3, "set of {p} not refilled");
        }
    }

    #[test]
    fn move_partition_purges_source_health_and_follows_the_set() {
        let mut m = MetaServer::new(secs(1));
        m.assign_replica_group(
            1,
            100,
            ReplicaSet {
                leader: 5,
                followers: vec![6, 7],
            },
        );
        for n in [5u32, 6, 7] {
            m.report_replica_health(100, n, true, 40);
        }
        m.move_partition(100, 9);
        assert_eq!(m.route(100), Some(9));
        // The departed leader's health entry moved with the flip: candidates
        // never offer node 5 again, and node 9 inherits the report.
        assert!(m.replica_health(100, 5).is_none());
        assert_eq!(
            m.replica_health(100, 9),
            Some(ReplicaHealth {
                alive: true,
                acked_lsn: 40
            })
        );
        let candidates = m.read_candidates(100, None);
        assert!(
            !candidates.contains(&5),
            "departed replica offered: {candidates:?}"
        );
        assert_eq!(m.replica_set(100).unwrap().leader, 9);
    }

    #[test]
    fn move_partition_to_an_existing_follower_never_duplicates_it() {
        let mut m = MetaServer::new(secs(1));
        m.assign_replica_group(
            1,
            100,
            ReplicaSet {
                leader: 5,
                followers: vec![6, 7],
            },
        );
        m.report_replica_health(100, 5, true, 40);
        m.report_replica_health(100, 6, true, 12);
        // Flip onto follower 6: it becomes the leader, appears exactly once,
        // and keeps its *own* health report (it has not applied LSN 40).
        m.move_partition(100, 6);
        let set = m.replica_set(100).unwrap();
        assert_eq!(set.leader, 6);
        assert_eq!(set.members(), vec![6, 7]);
        assert_eq!(
            m.replica_health(100, 6),
            Some(ReplicaHealth {
                alive: true,
                acked_lsn: 12
            }),
            "follower's own report clobbered by the departed leader's"
        );
        assert!(m.replica_health(100, 5).is_none());
    }

    #[test]
    fn migration_cutover_swaps_membership_health_and_routing() {
        let mut m = MetaServer::new(secs(1));
        m.assign_replica_group(
            1,
            7,
            ReplicaSet {
                leader: 0,
                followers: vec![1, 2],
            },
        );
        for n in [0u32, 1, 2] {
            m.report_replica_health(7, n, true, 10);
        }
        // Stage node 3, report it catching up, then cut over follower 2 → 3.
        m.begin_migration(7, 3);
        assert!(m.replica_set(7).unwrap().contains(3));
        m.report_replica_health(7, 3, true, 10);
        m.complete_migration(7, 2, 3, 10);
        let set = m.replica_set(7).unwrap();
        assert!(!set.contains(2), "source lingers in the set: {set:?}");
        assert!(set.contains(3));
        assert_eq!(set.members().len(), 3);
        assert!(m.replica_health(7, 2).is_none(), "stale source health");
        assert!(!m.read_candidates(7, None).contains(&2));
        assert_eq!(m.route(7), Some(0), "leader must not move");
        // Leader migration: routing follows the destination.
        m.begin_migration(7, 4);
        m.report_replica_health(7, 4, true, 10);
        m.complete_migration(7, 0, 4, 10);
        assert_eq!(m.route(7), Some(4));
        assert!(m.replica_health(7, 0).is_none());
        assert_eq!(m.replica_set(7).unwrap().members().len(), 3);
    }

    #[test]
    fn migration_abort_removes_the_staging_destination() {
        let mut m = MetaServer::new(secs(1));
        m.assign_replica_group(
            1,
            7,
            ReplicaSet {
                leader: 0,
                followers: vec![1, 2],
            },
        );
        m.begin_migration(7, 3);
        m.report_replica_health(7, 3, true, 5);
        m.abort_migration(7, 3);
        assert!(!m.replica_set(7).unwrap().contains(3));
        assert!(m.replica_health(7, 3).is_none());
    }

    #[test]
    fn failover_never_promotes_a_gapped_replica() {
        let mut m = MetaServer::new(secs(1));
        m.assign_replica_group(
            1,
            5,
            ReplicaSet {
                leader: 0,
                followers: vec![1, 2],
            },
        );
        // Node 1 reports the higher LSN but is gapped/divergent (None):
        // node 2 must win despite being behind.
        let plan = m.plan_node_failure(0, |_, n| if n == 1 { None } else { Some(3) }, &[1, 2, 3]);
        assert_eq!(plan.promotions.len(), 1);
        assert_eq!(plan.promotions[0].new_leader, 2);
    }

    #[test]
    fn failover_with_no_spare_still_promotes() {
        let mut m = MetaServer::new(secs(1));
        m.assign_replica_group(
            1,
            9,
            ReplicaSet {
                leader: 0,
                followers: vec![1, 2],
            },
        );
        let plan = m.plan_node_failure(0, |_, n| Some(u64::from(n)), &[1, 2]);
        assert_eq!(plan.promotions.len(), 1);
        assert_eq!(plan.promotions[0].new_leader, 2);
        // No node outside the group: nothing to re-seed onto.
        assert!(plan.reconstructions.is_empty());
        assert_eq!(m.replica_set(9).unwrap().members().len(), 2);
    }

    #[test]
    fn parallel_recovery_is_n_times_faster() {
        let model = RecoveryModel {
            failed_node_bytes: 1e12,
            per_node_bandwidth: 100e6,
            surviving_nodes: 20,
        };
        let single = model.single_node_recovery_secs();
        let parallel = model.parallel_recovery_secs();
        assert!((single / parallel - 20.0).abs() < 1e-9);
        assert!((single - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_bounds_match_paper() {
        assert!((RecoveryModel::single_tenant_max_utilization() - 2.0 / 3.0).abs() < 1e-12);
        // Large pools sustain near-full utilization.
        assert!(RecoveryModel::multi_tenant_max_utilization(20) > 0.95);
        assert!(
            RecoveryModel::multi_tenant_max_utilization(3)
                > RecoveryModel::single_tenant_max_utilization()
        );
    }
}
