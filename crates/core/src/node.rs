//! The simulated DataNode: the cache-aware isolation pipeline of Figure 2.
//!
//! ```text
//! submit() ──▶ partition quota (reject > 3×quota; rejection burns CPU)
//!                   │ admitted
//!                   ▼
//!            four dual-layer WFQs (class by read/write × small/large)
//! tick() ──▶ CPU-WFQ drain (RU budget − rejection overhead)
//!                   │ per request: SA-LRU cache probe
//!            hit ───┴──▶ complete (CPU+memory cost only)
//!            miss ──────▶ I/O-WFQ (IOPS cost) ──▶ complete + cache fill
//! ```
//!
//! The rejection-cost model implements the paper's Figure 6 observation: "the
//! DataNode expended considerable resources rejecting Tenant 1's excessive
//! requests, which severely disrupted the processing of Tenant 2's legitimate
//! requests" — every rejected request debits the next tick's CPU budget.

use crate::types::{Disposition, NodeId, PartitionId, ServedFrom, SimRequest, TenantId};
use abase_cache::SaLruCache;
use abase_quota::ru::ReadOutcome;
use abase_quota::{PartitionQuota, QuotaDecision, RuEstimator};
use abase_replication::Role;
use abase_util::clock::SimTime;
use abase_wfq::{NodeScheduler, NodeSchedulerConfig, WfqItem};
use std::collections::HashMap;

/// DataNode tuning.
#[derive(Debug, Clone)]
pub struct DataNodeConfig {
    /// CPU capacity in RU per second.
    pub cpu_ru_per_sec: f64,
    /// CPU (RU) burned per request rejected at the request queue.
    pub rejection_cost_ru: f64,
    /// SA-LRU cache size in bytes.
    pub cache_bytes: usize,
    /// Replication factor (multiplies write RU, §4.1).
    pub replicas: u32,
    /// Service latency floor (dispatch + memory path).
    pub base_service_micros: SimTime,
    /// Additional latency for a storage (disk) read.
    pub io_service_micros: SimTime,
    /// Per-tenant CPU queue depth cap — the bounded "request queue" requests
    /// are filtered into (§4.2).
    pub max_queue_per_tenant: usize,
    /// WFQ configuration.
    pub scheduler: NodeSchedulerConfig,
}

impl Default for DataNodeConfig {
    fn default() -> Self {
        Self {
            cpu_ru_per_sec: 10_000.0,
            rejection_cost_ru: 0.2,
            cache_bytes: 64 << 20,
            replicas: 3,
            base_service_micros: 300,
            io_service_micros: 2_000,
            max_queue_per_tenant: 20_000,
            scheduler: NodeSchedulerConfig::default(),
        }
    }
}

#[derive(Debug)]
struct PartitionState {
    tenant: TenantId,
    quota: PartitionQuota,
    ru: RuEstimator,
}

/// Per-tenant counters accumulated between metric snapshots.
#[derive(Debug, Clone, Copy, Default)]
pub struct TenantTickStats {
    /// Requests completed successfully.
    pub success: u64,
    /// Requests rejected at the node (quota or queue overflow).
    pub rejected: u64,
    /// Node-cache hits among completed reads.
    pub cache_hits: u64,
    /// Completed reads (hit + miss).
    pub reads_completed: u64,
    /// Sum of completion latencies (µs) for mean computation.
    pub latency_sum: f64,
    /// Max completion latency (µs).
    pub latency_max: f64,
    /// RU actually charged.
    pub ru_charged: f64,
    /// The read share of `ru_charged`.
    pub read_ru_charged: f64,
    /// The write share of `ru_charged`.
    pub write_ru_charged: f64,
}

/// Split read/write RU accumulated against one hosted replica — the
/// per-replica load the read router spreads, Algorithm 2's loss function
/// weighs, and the autoscaler's `LoadVector` aggregates. Kept separately
/// from the tenant tick stats because it survives snapshots: routing and
/// rebalancing reason about replicas, not tenants.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReplicaRuSplit {
    /// RU charged for reads served by this replica (leader or follower).
    pub read_ru: f64,
    /// RU charged for writes applied by this replica.
    pub write_ru: f64,
}

impl ReplicaRuSplit {
    /// Combined RU.
    pub fn total(&self) -> f64 {
        self.read_ru + self.write_ru
    }
}

/// The simulated DataNode.
#[derive(Debug)]
pub struct DataNodeSim {
    /// Node id.
    pub id: NodeId,
    config: DataNodeConfig,
    scheduler: NodeScheduler<SimRequest>,
    cache: SaLruCache<u64, usize>,
    partitions: HashMap<PartitionId, PartitionState>,
    /// Replicas this node hosts (partition → role), maintained by the
    /// replicated-cluster placement so the §3.3 failure math has real counts.
    hosted_replicas: HashMap<PartitionId, Role>,
    /// Split read/write RU charged per hosted replica: the simulated request
    /// pipeline and the routed-read path both feed it.
    replica_ru: HashMap<PartitionId, ReplicaRuSplit>,
    /// RU owed to rejection processing, debited from the next tick's budget.
    rejection_overhead_ru: f64,
    /// RU spent streaming/ingesting migration and reconstruction copies.
    migration_copy_ru: f64,
    stats: HashMap<TenantId, TenantTickStats>,
}

impl DataNodeSim {
    /// A node with the given configuration.
    pub fn new(id: NodeId, config: DataNodeConfig) -> Self {
        let cache = SaLruCache::new(config.cache_bytes);
        let scheduler = NodeScheduler::new(config.scheduler.clone());
        Self {
            id,
            config,
            scheduler,
            cache,
            partitions: HashMap::new(),
            hosted_replicas: HashMap::new(),
            replica_ru: HashMap::new(),
            rejection_overhead_ru: 0.0,
            migration_copy_ru: 0.0,
            stats: HashMap::new(),
        }
    }

    /// Record that this node hosts a replica of `partition` in `role`
    /// (placement bookkeeping for the replication plane).
    pub fn host_replica(&mut self, partition: PartitionId, role: Role) {
        self.hosted_replicas.insert(partition, role);
    }

    /// Remove the hosted-replica record for `partition` (its accumulated RU
    /// ledger leaves with it — the load moves to wherever the replica went).
    pub fn drop_replica(&mut self, partition: PartitionId) {
        self.hosted_replicas.remove(&partition);
        self.replica_ru.remove(&partition);
    }

    /// Charge read RU against this node's replica of `partition` — the
    /// routed-read path (proxy → router → follower) lands here, so follower
    /// reads are visible to the same accounting the rebalancer reads.
    pub fn record_replica_read(&mut self, partition: PartitionId, ru: f64) {
        self.replica_ru.entry(partition).or_default().read_ru += ru;
    }

    /// Charge write RU against this node's replica of `partition` (each
    /// replica of a group pays the write once — §4.1's write amplification).
    pub fn record_replica_write(&mut self, partition: PartitionId, ru: f64) {
        self.replica_ru.entry(partition).or_default().write_ru += ru;
    }

    /// Charge the outbound side of a migration/reconstruction checkpoint
    /// copy: the source node streams the bytes off its disk, so the cost
    /// lands as read RU against its replica of `partition` — which is how
    /// copy traffic becomes visible to Algorithm 2's loss function.
    pub fn record_copy_out(&mut self, partition: PartitionId, ru: f64) {
        self.replica_ru.entry(partition).or_default().read_ru += ru;
        self.migration_copy_ru += ru;
    }

    /// Charge the inbound side of a migration/reconstruction checkpoint
    /// copy: the destination node ingests the bytes, so the cost lands as
    /// write RU against its (new) replica of `partition`.
    pub fn record_copy_in(&mut self, partition: PartitionId, ru: f64) {
        self.replica_ru.entry(partition).or_default().write_ru += ru;
        self.migration_copy_ru += ru;
    }

    /// Total RU this node has spent on migration/reconstruction copy traffic
    /// (both directions) — the share of the §3.3 bandwidth model that data
    /// movement, rather than tenant traffic, consumed.
    pub fn migration_copy_ru(&self) -> f64 {
        self.migration_copy_ru
    }

    /// Remove and return the RU ledger accumulated against this node's
    /// replica of `partition`. A migration's cut-over moves the ledger with
    /// the replica — the load history follows the data to the destination,
    /// so the moved replica never looks freshly cold to Algorithm 2.
    pub fn take_replica_ru(&mut self, partition: PartitionId) -> ReplicaRuSplit {
        self.replica_ru.remove(&partition).unwrap_or_default()
    }

    /// Fold a migrated replica's RU ledger into this node's entry for
    /// `partition` (the receiving side of [`DataNodeSim::take_replica_ru`]).
    pub fn absorb_replica_ru(&mut self, partition: PartitionId, split: ReplicaRuSplit) {
        let entry = self.replica_ru.entry(partition).or_default();
        entry.read_ru += split.read_ru;
        entry.write_ru += split.write_ru;
    }

    /// The split read/write RU charged against this node's replica of
    /// `partition` so far (zero when nothing was charged).
    pub fn replica_ru_split(&self, partition: PartitionId) -> ReplicaRuSplit {
        self.replica_ru.get(&partition).copied().unwrap_or_default()
    }

    /// Every hosted replica's split RU, ascending by partition.
    pub fn replica_ru_splits(&self) -> Vec<(PartitionId, ReplicaRuSplit)> {
        let mut out: Vec<_> = self.replica_ru.iter().map(|(&p, &s)| (p, s)).collect();
        out.sort_unstable_by_key(|&(p, _)| p);
        out
    }

    /// This node's role for `partition`, if it hosts a replica.
    pub fn replica_role(&self, partition: PartitionId) -> Option<Role> {
        self.hosted_replicas.get(&partition).copied()
    }

    /// Number of replicas hosted (leaders + followers) — the placement load
    /// the meta server balances.
    pub fn hosted_replica_count(&self) -> usize {
        self.hosted_replicas.len()
    }

    /// Number of leader replicas hosted (leaders carry the write path).
    pub fn hosted_leader_count(&self) -> usize {
        self.hosted_replicas
            .values()
            .filter(|&&r| r == Role::Leader)
            .count()
    }

    /// Host a partition with the given RU/s quota.
    pub fn add_partition(
        &mut self,
        partition: PartitionId,
        tenant: TenantId,
        quota_ru: f64,
        now: SimTime,
    ) {
        self.partitions.insert(
            partition,
            PartitionState {
                tenant,
                quota: PartitionQuota::new(quota_ru, now),
                ru: RuEstimator::default(),
            },
        );
    }

    /// Enable/disable partition quota enforcement (Figure 7 phases).
    pub fn set_partition_quota_enabled(&mut self, partition: PartitionId, enabled: bool) {
        if let Some(p) = self.partitions.get_mut(&partition) {
            p.quota.set_enabled(enabled);
        }
    }

    /// Update a partition's quota (autoscaling applies here).
    pub fn set_partition_quota(&mut self, partition: PartitionId, quota_ru: f64, now: SimTime) {
        if let Some(p) = self.partitions.get_mut(&partition) {
            p.quota.set_partition_quota(quota_ru, now);
        }
    }

    /// The partition's current estimated read RU (what admission charges).
    pub fn estimated_read_ru(&self, partition: PartitionId) -> f64 {
        self.partitions
            .get(&partition)
            .map(|p| p.ru.estimate_read_ru())
            .unwrap_or(1.0)
    }

    /// Total CPU-layer queue depth.
    pub fn queue_depth(&self) -> usize {
        self.scheduler.cpu_depth() + self.scheduler.io_depth()
    }

    /// Node-cache statistics.
    pub fn cache_stats(&self) -> &abase_cache::CacheStats {
        self.cache.stats()
    }

    /// Submit a request at `now`. Rejections are immediate; admissions queue.
    pub fn submit(&mut self, req: SimRequest, now: SimTime) -> Option<Disposition> {
        let Some(part) = self.partitions.get_mut(&req.partition) else {
            // Unknown partition: treat as node rejection.
            self.note_rejection(req.tenant);
            return Some(Disposition::RejectedAtNode);
        };
        let tenant = part.tenant;
        let est_ru = if req.is_write {
            part.ru.write_ru(req.value_bytes, self.config.replicas)
        } else {
            part.ru.estimate_read_ru()
        };
        if part.quota.admit(now, est_ru) == QuotaDecision::Reject {
            self.note_rejection(tenant);
            return Some(Disposition::RejectedAtNode);
        }
        // Bounded request queue: overflow is also a (costly) rejection.
        let class = self.scheduler.classify(req.is_write, req.value_bytes);
        let depth = self.tenant_cpu_depth(tenant);
        if depth >= self.config.max_queue_per_tenant {
            self.note_rejection(tenant);
            return Some(Disposition::RejectedAtNode);
        }
        let weight = self.partition_weight(req.partition);
        self.scheduler.push_cpu(
            class,
            WfqItem {
                tenant,
                cost: est_ru,
                weight,
                payload: req,
            },
        );
        None
    }

    fn tenant_cpu_depth(&self, tenant: TenantId) -> usize {
        self.scheduler.cpu_tenant_depth(tenant)
    }

    fn note_rejection(&mut self, tenant: TenantId) {
        self.rejection_overhead_ru += self.config.rejection_cost_ru;
        self.stats.entry(tenant).or_default().rejected += 1;
    }

    /// `wPartition`: this partition's share of the node's total quota.
    fn partition_weight(&self, partition: PartitionId) -> f64 {
        let total: f64 = self
            .partitions
            .values()
            .map(|p| p.quota.partition_quota())
            .sum();
        let own = self
            .partitions
            .get(&partition)
            .map(|p| p.quota.partition_quota())
            .unwrap_or(1.0);
        if total <= 0.0 {
            1.0
        } else {
            (own / total).clamp(1e-6, 1.0)
        }
    }

    /// Advance one tick of `tick_len` ending at `now + tick_len`; returns the
    /// requests completed during the tick.
    pub fn tick(&mut self, now: SimTime, tick_len: SimTime) -> Vec<(SimRequest, Disposition)> {
        let tick_secs = tick_len as f64 / 1_000_000.0;
        let gross_budget = self.config.cpu_ru_per_sec * tick_secs;
        // Rejection processing consumes CPU first (Figure 6's mechanism).
        // The work happens within the tick the rejections arrived in — a
        // saturated entry queue sheds load at line rate rather than accruing
        // an unbounded debt — so the overhead resets every tick.
        let overhead = self.rejection_overhead_ru.min(gross_budget);
        self.rejection_overhead_ru = 0.0;
        let budget = gross_budget - overhead;
        // Phase 1: decide what completes this tick.
        let mut done: Vec<(SimRequest, ServedFrom, f64)> = Vec::new();
        for (_class, item) in self.scheduler.drain_cpu_tick(budget) {
            let req = item.payload;
            if req.is_write {
                // Writes land in WAL + memtable: no read I/O. Cache the value
                // so subsequent reads hit ("frequent access to recently-
                // updated data", §1 challenge 1).
                self.cache.insert(req.key, req.value_bytes, req.value_bytes);
                done.push((req, ServedFrom::NodeCache, item.cost));
            } else if self.cache.get(&req.key).is_some() {
                let part = self
                    .partitions
                    .get_mut(&req.partition)
                    // INVARIANT: requests are only admitted for partitions
                    // registered on this node.
                    .expect("partition exists");
                part.ru
                    .record_read(req.value_bytes, ReadOutcome::NodeCacheHit);
                let charged = part
                    .ru
                    .charge_read(req.value_bytes, ReadOutcome::NodeCacheHit);
                done.push((req, ServedFrom::NodeCache, charged));
            } else {
                // Miss: descend to the I/O layer (Rule 1: IOPS cost).
                let io_cost = 1.0 + (req.value_bytes as f64 / (64.0 * 1024.0)).floor();
                let class = self.scheduler.classify(false, req.value_bytes);
                self.scheduler.push_io(
                    class,
                    WfqItem {
                        tenant: item.tenant,
                        cost: io_cost,
                        weight: item.weight,
                        payload: req,
                    },
                );
            }
        }
        for (_class, item) in self.scheduler.drain_io_tick() {
            let req = item.payload;
            let part = self
                .partitions
                .get_mut(&req.partition)
                // INVARIANT: requests are only admitted for partitions
                // registered on this node.
                .expect("partition exists");
            part.ru.record_read(req.value_bytes, ReadOutcome::Miss);
            let charged = part.ru.charge_read(req.value_bytes, ReadOutcome::Miss);
            self.cache.insert(req.key, req.value_bytes, req.value_bytes);
            done.push((req, ServedFrom::Storage, charged));
        }
        // Phase 2: assign completion instants spread across the tick (work is
        // served continuously, not at tick boundaries) and account stats.
        let n = done.len() as u64;
        let mut completions = Vec::with_capacity(done.len());
        for (idx, (req, served_from, ru)) in done.into_iter().enumerate() {
            let completion_at = now + (tick_len * (idx as u64 + 1)) / (n + 1);
            // A request served within its arrival tick experiences only the
            // service time (sub-tick queueing is below the model's
            // resolution); requests carried across ticks accrue real
            // queueing delay.
            let queueing = if req.issued_at >= now {
                0
            } else {
                completion_at.saturating_sub(req.issued_at)
            };
            let mut latency = queueing + self.config.base_service_micros;
            if served_from == ServedFrom::Storage {
                latency += self.config.io_service_micros;
            }
            let split = self.replica_ru.entry(req.partition).or_default();
            let stats = self.stats.entry(req.tenant).or_default();
            stats.success += 1;
            stats.ru_charged += ru;
            if req.is_write {
                stats.write_ru_charged += ru;
                split.write_ru += ru;
            } else {
                stats.read_ru_charged += ru;
                split.read_ru += ru;
            }
            stats.latency_sum += latency as f64;
            stats.latency_max = stats.latency_max.max(latency as f64);
            if !req.is_write {
                stats.reads_completed += 1;
                if served_from == ServedFrom::NodeCache {
                    stats.cache_hits += 1;
                }
            }
            completions.push((
                req,
                Disposition::Success {
                    latency,
                    served_from,
                },
            ));
        }
        completions
    }

    /// Drain and reset the per-tenant counters accumulated since last call.
    pub fn take_stats(&mut self) -> HashMap<TenantId, TenantTickStats> {
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abase_util::clock::ms;

    fn request(
        tenant: TenantId,
        partition: PartitionId,
        key: u64,
        is_write: bool,
        t: SimTime,
    ) -> SimRequest {
        SimRequest {
            tenant,
            partition,
            key,
            is_write,
            value_bytes: 1024,
            issued_at: t,
            proxy: None,
        }
    }

    fn node() -> DataNodeSim {
        let mut n = DataNodeSim::new(1, DataNodeConfig::default());
        n.add_partition(10, 1, 3000.0, 0);
        n.add_partition(20, 2, 3000.0, 0);
        n
    }

    #[test]
    fn write_then_read_hits_cache() {
        let mut n = node();
        assert!(n.submit(request(1, 10, 7, true, 0), 0).is_none());
        let done = n.tick(0, ms(100));
        assert_eq!(done.len(), 1);
        assert!(done[0].1.is_success());
        // Read of the same key: node cache hit (no I/O layer).
        n.submit(request(1, 10, 7, false, ms(100)), ms(100));
        let done = n.tick(ms(100), ms(100));
        assert_eq!(done.len(), 1);
        match done[0].1 {
            Disposition::Success { served_from, .. } => {
                assert_eq!(served_from, ServedFrom::NodeCache)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cold_read_goes_through_io_layer() {
        let mut n = node();
        n.submit(request(1, 10, 99, false, 0), 0);
        let done = n.tick(0, ms(100));
        assert_eq!(done.len(), 1);
        match done[0].1 {
            Disposition::Success {
                served_from,
                latency,
            } => {
                assert_eq!(served_from, ServedFrom::Storage);
                // Latency includes the I/O service time.
                assert!(latency >= 2_000);
            }
            other => panic!("{other:?}"),
        }
        // Second read of the same key is now cached.
        n.submit(request(1, 10, 99, false, ms(100)), ms(100));
        let done = n.tick(ms(100), ms(100));
        match done[0].1 {
            Disposition::Success { served_from, .. } => {
                assert_eq!(served_from, ServedFrom::NodeCache)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn partition_quota_rejects_excess() {
        let mut n = node();
        // Partition 10 quota = 3000 RU/s → 3× cap = 9000 RU burst.
        // 1 KB reads estimate at 1 RU (prior). Submit 20k requests at t=0.
        let mut rejected = 0;
        for i in 0..20_000 {
            if n.submit(request(1, 10, i, false, 0), 0).is_some() {
                rejected += 1;
            }
        }
        assert!(rejected > 5_000, "rejected={rejected}");
        let stats = n.take_stats();
        assert_eq!(stats[&1].rejected, rejected);
    }

    #[test]
    fn rejections_burn_next_tick_budget() {
        let mut n = DataNodeSim::new(
            1,
            DataNodeConfig {
                cpu_ru_per_sec: 1000.0,
                rejection_cost_ru: 1.0,
                ..Default::default()
            },
        );
        n.add_partition(10, 1, 100.0, 0);
        n.add_partition(20, 2, 100.0, 0);
        // Tenant 1 floods: ~300 admitted (3× quota burst) then rejections.
        for i in 0..2_000 {
            n.submit(request(1, 10, i, false, 0), 0);
        }
        // Tenant 2 submits a modest load.
        for i in 0..50 {
            n.submit(request(2, 20, 10_000 + i, false, 0), 0);
        }
        // Budget for 100 ms tick = 100 RU; rejection overhead is ~1700 RU →
        // several ticks produce nothing at all.
        let done = n.tick(0, ms(100));
        assert!(
            done.is_empty(),
            "rejection overhead should stall the node, got {} completions",
            done.len()
        );
    }

    #[test]
    fn disabled_partition_quota_admits_everything() {
        let mut n = node();
        n.set_partition_quota_enabled(10, false);
        let mut rejected = 0;
        for i in 0..20_000 {
            if n.submit(request(1, 10, i, false, 0), 0).is_some() {
                rejected += 1;
            }
        }
        assert_eq!(rejected, 0);
        assert!(n.queue_depth() >= 19_000);
    }

    #[test]
    fn queue_cap_bounds_memory() {
        let mut n = DataNodeSim::new(
            1,
            DataNodeConfig {
                max_queue_per_tenant: 1_000,
                ..Default::default()
            },
        );
        n.add_partition(10, 1, 1e9, 0); // effectively no quota
        let mut rejected = 0;
        for i in 0..10_000 {
            if n.submit(request(1, 10, i, false, 0), 0).is_some() {
                rejected += 1;
            }
        }
        assert!(n.queue_depth() <= 1_001);
        assert!(rejected >= 8_999);
    }

    #[test]
    fn fair_sharing_between_tenants_under_load() {
        let mut n = DataNodeSim::new(
            1,
            DataNodeConfig {
                cpu_ru_per_sec: 1_000.0,
                ..Default::default()
            },
        );
        n.add_partition(10, 1, 500.0, 0);
        n.add_partition(20, 2, 500.0, 0);
        // Equal quotas, both flood within their 3× burst: 1500 admitted each.
        for i in 0..1_500 {
            n.submit(request(1, 10, i, false, 0), 0);
            n.submit(request(2, 20, 100_000 + i, false, 0), 0);
        }
        let mut success = [0u64; 2];
        let mut t = 0;
        for _ in 0..10 {
            for (req, disp) in n.tick(t, ms(100)) {
                if disp.is_success() {
                    success[(req.tenant - 1) as usize] += 1;
                }
            }
            t += ms(100);
        }
        let total = success[0] + success[1];
        assert!(total > 0);
        let share = success[0] as f64 / total as f64;
        assert!((share - 0.5).abs() < 0.15, "share={share}");
    }

    #[test]
    fn replica_ru_splits_reads_from_writes() {
        let mut n = node();
        n.submit(request(1, 10, 1, true, 0), 0);
        n.submit(request(1, 10, 2, false, 0), 0);
        n.tick(0, ms(100));
        let split = n.replica_ru_split(10);
        assert!(split.write_ru > 0.0, "write RU not charged: {split:?}");
        assert!(split.read_ru > 0.0, "read RU not charged: {split:?}");
        let s = n.take_stats();
        assert!(
            (s[&1].read_ru_charged + s[&1].write_ru_charged - s[&1].ru_charged).abs() < 1e-9,
            "split does not sum to total"
        );
        // Routed follower reads land in the same ledger the rebalancer reads.
        n.record_replica_read(10, 2.5);
        assert!(n.replica_ru_split(10).read_ru >= split.read_ru + 2.5);
        assert_eq!(n.replica_ru_splits().len(), 1);
        n.drop_replica(10);
        assert_eq!(n.replica_ru_split(10), ReplicaRuSplit::default());
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut n = node();
        n.submit(request(1, 10, 1, true, 0), 0);
        n.tick(0, ms(100));
        let s = n.take_stats();
        assert_eq!(s[&1].success, 1);
        assert!(n.take_stats().is_empty());
    }
}
