//! Consistency-aware read routing: the single layer that owns the
//! read-consistency decision end to end.
//!
//! The paper's geo-distributed tenants let `Eventual` and `ReadYourWrites`
//! reads land on follower replicas while only `Leader` reads pay for leader
//! locality. The [`ReadRouter`] makes that a *routing-tier* decision, in the
//! FoundationDB-Record-Layer tradition of separating stateless routing from
//! stateful storage:
//!
//! * `Leader` — route to the partition's leader, always.
//! * `Eventual` — spread over followers whose **reported** LSN lag is within
//!   [`ReadRouterConfig::max_eventual_lag`], round-robin; fall back to the
//!   leader when no follower is caught up enough.
//! * `ReadYourWrites(lsn)` — route to a follower whose reported LSN has
//!   reached the session's fence; fall back to the leader (which, as the
//!   write's origin, always satisfies it).
//!
//! The router decides from the [`MetaServer`]'s per-replica health/LSN
//! reports, which may trail the group by one heartbeat — so the replica group
//! re-validates every fence on `read_at` and the caller re-routes to the
//! leader on [`abase_replication::Error::StaleReplica`] /
//! [`abase_replication::Error::ReplicaUnavailable`]. Stale routing costs a
//! retry, never a stale read.

use crate::meta::MetaServer;
use crate::types::{NodeId, PartitionId};
use abase_replication::ReadConsistency;
use std::collections::HashMap;

/// Router tuning.
#[derive(Debug, Clone, Copy)]
pub struct ReadRouterConfig {
    /// Maximum reported LSN lag (in records) a follower may trail by and
    /// still take `Eventual` reads. Beyond it the replica is considered too
    /// stale to be useful and reads concentrate on fresher copies.
    pub max_eventual_lag: u64,
}

impl Default for ReadRouterConfig {
    fn default() -> Self {
        Self {
            max_eventual_lag: 512,
        }
    }
}

/// Where one read should go, and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Node whose replica should serve the read.
    pub node: NodeId,
    /// True when the chosen replica is the partition's leader.
    pub is_leader: bool,
    /// The chosen replica's reported LSN lag at decision time (0 for the
    /// leader). The *observed* lag at read time is stamped by the group.
    pub reported_lag: u64,
}

/// Routing counters: how many reads went where.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Reads routed to the leader because the consistency level required it.
    pub leader_reads: u64,
    /// Reads routed to a follower replica.
    pub follower_reads: u64,
    /// Reads that wanted a follower but fell back to the leader (no follower
    /// healthy/caught-up enough, or a fence re-route after a stale decision).
    pub leader_fallbacks: u64,
}

impl RouterStats {
    /// Share of non-leader-consistency reads actually served by followers.
    pub fn follower_share(&self) -> f64 {
        let spreadable = self.follower_reads + self.leader_fallbacks;
        if spreadable == 0 {
            0.0
        } else {
            self.follower_reads as f64 / spreadable as f64
        }
    }
}

/// Per-partition rotation state: a logical clock and each follower's
/// last-served tick.
#[derive(Debug, Default)]
struct Rotation {
    clock: u64,
    last_served: HashMap<NodeId, u64>,
}

/// The replica-aware read router.
#[derive(Debug, Default)]
pub struct ReadRouter {
    config: ReadRouterConfig,
    /// Per-partition rotation: each spread read goes to the
    /// least-recently-served candidate. Unlike a `cursor % len` round-robin,
    /// this stays balanced when the candidate set shrinks, grows, or
    /// interleaves with differently filtered sets — e.g. RYW reads whose
    /// fence admits one follower, interleaved 1:1 with Eventual reads over
    /// two, used to advance the cursor so every Eventual read hit the same
    /// node; least-recently-served sends them to whichever follower the
    /// fenced traffic is *not* loading.
    rotations: HashMap<PartitionId, Rotation>,
    stats: RouterStats,
}

impl ReadRouter {
    /// A router with the given tuning.
    pub fn new(config: ReadRouterConfig) -> Self {
        Self {
            config,
            rotations: HashMap::new(),
            stats: RouterStats::default(),
        }
    }

    /// Routing counters accumulated so far.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Record that a follower decision had to be re-routed to the leader
    /// (fence failure or replica death discovered at the group). Keeps the
    /// follower/fallback attribution correct when the caller retries.
    pub fn note_fallback(&mut self) {
        self.stats.follower_reads = self.stats.follower_reads.saturating_sub(1);
        self.stats.leader_fallbacks += 1;
    }

    /// Decide which node serves a read of `partition` at `consistency`,
    /// from the meta server's replica-set + health view. `None` when the
    /// partition is unknown.
    pub fn route(
        &mut self,
        meta: &MetaServer,
        partition: PartitionId,
        consistency: ReadConsistency,
    ) -> Option<RouteDecision> {
        let leader = meta.route(partition)?;
        let leader_decision = |stats: &mut RouterStats, fallback: bool| {
            if fallback {
                stats.leader_fallbacks += 1;
            } else {
                stats.leader_reads += 1;
            }
            RouteDecision {
                node: leader,
                is_leader: true,
                reported_lag: 0,
            }
        };
        let min_lsn = match consistency {
            ReadConsistency::Leader => {
                return Some(leader_decision(&mut self.stats, false));
            }
            ReadConsistency::Eventual => None,
            ReadConsistency::ReadYourWrites(lsn) => Some(lsn),
        };
        // Follower candidates: alive, fenced (RYW) or within the staleness
        // budget (Eventual). `read_candidates` lists the leader first.
        let candidates: Vec<NodeId> = meta
            .read_candidates(partition, min_lsn)
            .into_iter()
            .filter(|&n| n != leader)
            .filter(|&n| {
                min_lsn.is_some()
                    || meta
                        .replica_lag(partition, n)
                        .is_some_and(|lag| lag <= self.config.max_eventual_lag)
            })
            .collect();
        if candidates.is_empty() {
            return Some(leader_decision(&mut self.stats, true));
        }
        // Least-recently-served rotation: independent of candidate-set size,
        // so a set that shrank (or interleaves with differently fenced sets)
        // still spreads load evenly instead of skewing onto one follower.
        let rotation = self.rotations.entry(partition).or_default();
        rotation.clock += 1;
        let node = *candidates
            .iter()
            .min_by_key(|n| rotation.last_served.get(n).copied().unwrap_or(0))
            // INVARIANT: the empty-candidates case returned `None` above.
            .expect("candidates checked non-empty above");
        rotation.last_served.insert(node, rotation.clock);
        self.stats.follower_reads += 1;
        Some(RouteDecision {
            node,
            is_leader: false,
            reported_lag: meta.replica_lag(partition, node).unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::ReplicaSet;
    use abase_util::clock::secs;

    fn meta_with_group() -> MetaServer {
        let mut m = MetaServer::new(secs(1));
        m.assign_replica_group(
            1,
            7,
            ReplicaSet {
                leader: 0,
                followers: vec![1, 2],
            },
        );
        m.report_replica_health(7, 0, true, 100);
        m.report_replica_health(7, 1, true, 100);
        m.report_replica_health(7, 2, true, 100);
        m
    }

    #[test]
    fn leader_consistency_always_routes_to_leader() {
        let meta = meta_with_group();
        let mut router = ReadRouter::default();
        for _ in 0..5 {
            let d = router.route(&meta, 7, ReadConsistency::Leader).unwrap();
            assert_eq!(d.node, 0);
            assert!(d.is_leader);
        }
        assert_eq!(router.stats().leader_reads, 5);
        assert_eq!(router.stats().follower_reads, 0);
    }

    #[test]
    fn eventual_spreads_over_caught_up_followers() {
        let meta = meta_with_group();
        let mut router = ReadRouter::default();
        let mut served = std::collections::HashSet::new();
        for _ in 0..4 {
            let d = router.route(&meta, 7, ReadConsistency::Eventual).unwrap();
            assert!(!d.is_leader, "eventual read went to the leader");
            served.insert(d.node);
        }
        assert_eq!(served, [1, 2].into_iter().collect());
        assert_eq!(router.stats().follower_reads, 4);
    }

    #[test]
    fn eventual_skips_laggy_and_dead_followers() {
        let mut meta = meta_with_group();
        // Follower 2 is dead; follower 1 starts caught up, then falls behind.
        meta.report_replica_health(7, 1, true, 100); // caught up
        meta.report_replica_health(7, 2, false, 100);
        let mut router = ReadRouter::new(ReadRouterConfig {
            max_eventual_lag: 10,
        });
        let d = router.route(&meta, 7, ReadConsistency::Eventual).unwrap();
        assert_eq!(d.node, 1);
        meta.report_replica_health(7, 1, true, 5);
        let d = router.route(&meta, 7, ReadConsistency::Eventual).unwrap();
        assert!(d.is_leader, "laggy follower should be skipped");
        assert_eq!(router.stats().leader_fallbacks, 1);
    }

    #[test]
    fn ryw_routes_to_fenced_follower_or_leader() {
        let mut meta = meta_with_group();
        meta.report_replica_health(7, 1, true, 50); // behind the fence
        meta.report_replica_health(7, 2, true, 120); // past the fence
        let mut router = ReadRouter::default();
        for _ in 0..3 {
            let d = router
                .route(&meta, 7, ReadConsistency::ReadYourWrites(100))
                .unwrap();
            assert_eq!(d.node, 2, "only follower 2 satisfies the fence");
        }
        // Fence beyond every follower: the leader takes it.
        let d = router
            .route(&meta, 7, ReadConsistency::ReadYourWrites(500))
            .unwrap();
        assert!(d.is_leader);
    }

    #[test]
    fn unreplicated_partitions_route_to_their_single_node() {
        let mut meta = MetaServer::new(secs(1));
        meta.assign_partition(1, 9, 4);
        let mut router = ReadRouter::default();
        let d = router.route(&meta, 9, ReadConsistency::Eventual).unwrap();
        assert_eq!(d.node, 4);
        assert!(router.route(&meta, 999, ReadConsistency::Leader).is_none());
    }

    #[test]
    fn rotation_survives_shrinking_candidate_sets() {
        // Follower 1 is fully caught up; follower 2 trails a little, so a
        // RYW fence at 100 shrinks the candidate set to {1} while Eventual
        // still sees {1, 2}. With the old `cursor % len` arithmetic the
        // interleaved RYW reads advanced the shared cursor by one each,
        // locking the Eventual reads onto a single parity — one follower
        // took *all* the spread traffic. Least-recently-served must balance
        // the combined load across both followers.
        let mut meta = meta_with_group();
        meta.report_replica_health(7, 1, true, 100);
        meta.report_replica_health(7, 2, true, 60);
        let mut router = ReadRouter::default();
        let mut served: std::collections::HashMap<NodeId, u32> = std::collections::HashMap::new();
        for _ in 0..8 {
            let d = router
                .route(&meta, 7, ReadConsistency::ReadYourWrites(100))
                .unwrap();
            assert_eq!(d.node, 1, "only follower 1 satisfies the fence");
            *served.entry(d.node).or_default() += 1;
            let d = router.route(&meta, 7, ReadConsistency::Eventual).unwrap();
            assert!(!d.is_leader);
            *served.entry(d.node).or_default() += 1;
        }
        let n1 = served.get(&1).copied().unwrap_or(0);
        let n2 = served.get(&2).copied().unwrap_or(0);
        assert_eq!(n1 + n2, 16);
        assert!(
            n1.abs_diff(n2) <= 1,
            "spread traffic skewed onto one follower: {served:?}"
        );
        // A candidate dying mid-rotation (the set shrinks, then grows back)
        // must not wedge the rotation either.
        meta.report_replica_health(7, 2, false, 60);
        for _ in 0..3 {
            let d = router.route(&meta, 7, ReadConsistency::Eventual).unwrap();
            assert_eq!(d.node, 1);
        }
        meta.report_replica_health(7, 2, true, 60);
        let mut revived = std::collections::HashSet::new();
        for _ in 0..4 {
            revived.insert(
                router
                    .route(&meta, 7, ReadConsistency::Eventual)
                    .unwrap()
                    .node,
            );
        }
        assert_eq!(
            revived,
            [1, 2].into_iter().collect(),
            "rotation never recovered follower 2"
        );
    }

    #[test]
    fn fallback_note_reattributes_the_read() {
        let meta = meta_with_group();
        let mut router = ReadRouter::default();
        router.route(&meta, 7, ReadConsistency::Eventual).unwrap();
        assert_eq!(router.stats().follower_reads, 1);
        router.note_fallback();
        assert_eq!(router.stats().follower_reads, 0);
        assert_eq!(router.stats().leader_fallbacks, 1);
    }
}
