//! The discrete-time cluster simulation driver.
//!
//! Ties together workload generators (per-tenant traffic shapes and key
//! streams), the proxy plane, and a DataNode, advancing virtual time in fixed
//! ticks and emitting per-minute metric points — the series plotted in
//! Figures 5, 6, and 7.

use crate::meta::{MetaServer, ReplicaSet};
use crate::migration::{MigrationConfig, MigrationEngine, MigrationError, MigrationRequest};
use crate::node::{DataNodeConfig, DataNodeSim};
use crate::proxy::{ProxyDecision, ProxyPlane, ProxyPlaneConfig};
use crate::router::{ReadRouter, ReadRouterConfig, RouterStats};
use crate::types::{Disposition, NodeId, PartitionId, ServedFrom, SimRequest, TenantId};
use abase_lavastore::DbConfig;
use abase_quota::ru::ReadOutcome;
use abase_quota::{RuEstimator, TenantQuotaMonitor};
use abase_replication::{
    reconstruct_parallel, Error as ReplError, GroupConfig, Lsn, ReadConsistency,
    ReconstructionReport, ReconstructionTask, ReplicaGroup, Role, Throttle, WriteConcern,
};
use abase_util::clock::{mins, SimTime};
use abase_util::LatencyHistogram;
use abase_workload::{KeyspaceConfig, RequestGen, TrafficShape};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Latency charged to a proxy-cache hit (never reaches a data node).
const PROXY_HIT_LATENCY: SimTime = 150;

/// Everything needed to drive one tenant in an experiment.
#[derive(Debug)]
pub struct TenantSpec {
    /// Tenant id.
    pub id: TenantId,
    /// Tenant quota in RU/s (the proxy plane divides it across proxies).
    pub tenant_quota_ru: f64,
    /// The tenant's (single) partition in the experiment node.
    pub partition: PartitionId,
    /// Partition quota in RU/s.
    pub partition_quota_ru: f64,
    /// Traffic intensity over time.
    pub shape: TrafficShape,
    /// Key popularity / sizes / read mix.
    pub keyspace: KeyspaceConfig,
    /// Proxy plane settings.
    pub proxy: ProxyPlaneConfig,
}

/// One tenant's metrics for one minute of virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct MinutePoint {
    /// Minute index from experiment start.
    pub minute: u64,
    /// Tenant.
    pub tenant: TenantId,
    /// Successful requests per second.
    pub success_qps: f64,
    /// Rejected requests per second (proxy + node).
    pub error_qps: f64,
    /// Mean success latency in milliseconds.
    pub mean_latency_ms: f64,
    /// P99 success latency in milliseconds.
    pub p99_latency_ms: f64,
    /// Combined cache hit ratio over reads (proxy hits + node-cache hits).
    pub cache_hit_ratio: f64,
    /// Share of reads answered by the proxy cache alone.
    pub proxy_hit_ratio: f64,
}

#[derive(Debug)]
struct MinuteAcc {
    success: u64,
    errors: u64,
    reads: u64,
    proxy_hits: u64,
    node_hits: u64,
    latency: LatencyHistogram,
    latency_sum: f64,
}

impl MinuteAcc {
    fn new() -> Self {
        Self {
            success: 0,
            errors: 0,
            reads: 0,
            proxy_hits: 0,
            node_hits: 0,
            latency: LatencyHistogram::for_latency_micros(),
            latency_sum: 0.0,
        }
    }

    fn reset(&mut self) {
        self.success = 0;
        self.errors = 0;
        self.reads = 0;
        self.proxy_hits = 0;
        self.node_hits = 0;
        self.latency.clear();
        self.latency_sum = 0.0;
    }

    fn point(&self, minute: u64, tenant: TenantId, secs: f64) -> MinutePoint {
        let mean_us = if self.success == 0 {
            0.0
        } else {
            self.latency_sum / self.success as f64
        };
        MinutePoint {
            minute,
            tenant,
            success_qps: self.success as f64 / secs,
            error_qps: self.errors as f64 / secs,
            mean_latency_ms: mean_us / 1000.0,
            p99_latency_ms: self.latency.quantile(0.99).unwrap_or(0.0) / 1000.0,
            cache_hit_ratio: if self.reads == 0 {
                0.0
            } else {
                (self.proxy_hits + self.node_hits) as f64 / self.reads as f64
            },
            proxy_hit_ratio: if self.reads == 0 {
                0.0
            } else {
                self.proxy_hits as f64 / self.reads as f64
            },
        }
    }
}

struct TenantRuntime {
    shape: TrafficShape,
    gen: RequestGen,
    plane: ProxyPlane,
    partition: PartitionId,
    carry: f64,
    acc: MinuteAcc,
}

/// A single-node, multi-tenant isolation experiment (Figures 6–7) — also the
/// engine behind the dynamism panels of Figure 5.
pub struct IsolationExperiment {
    node: DataNodeSim,
    tenants: HashMap<TenantId, TenantRuntime>,
    order: Vec<TenantId>,
    monitor: TenantQuotaMonitor,
    clock: SimTime,
    tick_len: SimTime,
    /// Virtual seconds per reported "minute" — figures compress time so a
    /// 45-minute paper timeline replays in a few virtual minutes while keeping
    /// the original minute labels.
    minute_secs: u64,
}

impl IsolationExperiment {
    /// Build an experiment over `node` and `specs`, with 100 ms ticks.
    pub fn new(mut node: DataNodeSim, specs: Vec<TenantSpec>, seed: u64) -> Self {
        let mut tenants = HashMap::new();
        let mut order = Vec::new();
        let mut monitor = TenantQuotaMonitor::new(mins(1));
        for (i, spec) in specs.into_iter().enumerate() {
            node.add_partition(spec.partition, spec.id, spec.partition_quota_ru, 0);
            monitor.set_tenant_quota(spec.id, spec.tenant_quota_ru);
            let plane = ProxyPlane::new(
                spec.id,
                ProxyPlaneConfig {
                    tenant_quota_ru: spec.tenant_quota_ru,
                    ..spec.proxy
                },
                0,
                seed ^ (i as u64).wrapping_mul(0x9E37_79B9),
            );
            order.push(spec.id);
            tenants.insert(
                spec.id,
                TenantRuntime {
                    shape: spec.shape,
                    gen: RequestGen::new(spec.keyspace, seed.wrapping_add(i as u64)),
                    plane,
                    partition: spec.partition,
                    carry: 0.0,
                    acc: MinuteAcc::new(),
                },
            );
        }
        Self {
            node,
            tenants,
            order,
            monitor,
            clock: 0,
            tick_len: 100_000, // 100 ms
            minute_secs: 60,
        }
    }

    /// Compress each reported minute to `secs` virtual seconds (default 60).
    pub fn set_minute_secs(&mut self, secs: u64) {
        assert!(secs > 0);
        self.minute_secs = secs;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Mutable access to the node (phase toggles: partition quota on/off).
    pub fn node_mut(&mut self) -> &mut DataNodeSim {
        &mut self.node
    }

    /// Mutable access to a tenant's proxy plane (quota/cache toggles).
    pub fn plane_mut(&mut self, tenant: TenantId) -> &mut ProxyPlane {
        // INVARIANT: tenants are registered at construction and never removed.
        &mut self.tenants.get_mut(&tenant).expect("known tenant").plane
    }

    /// Mutable access to a tenant's request generator (skew/window shifts).
    pub fn gen_mut(&mut self, tenant: TenantId) -> &mut RequestGen {
        // INVARIANT: tenants are registered at construction and never removed.
        &mut self.tenants.get_mut(&tenant).expect("known tenant").gen
    }

    /// Replace a tenant's traffic shape (for multi-phase scenarios).
    pub fn set_shape(&mut self, tenant: TenantId, shape: TrafficShape) {
        // INVARIANT: tenants are registered at construction and never removed.
        self.tenants.get_mut(&tenant).expect("known tenant").shape = shape;
    }

    /// Advance `n` minutes; returns one [`MinutePoint`] per tenant per minute.
    pub fn run_minutes(&mut self, n: u64) -> Vec<MinutePoint> {
        let mut out = Vec::new();
        let minute_len = self.minute_secs * 1_000_000;
        for _ in 0..n {
            let minute_index = self.clock / minute_len;
            let minute_end = (minute_index + 1) * minute_len;
            while self.clock < minute_end {
                self.run_tick();
            }
            self.end_of_minute(minute_index, &mut out);
        }
        out
    }

    fn run_tick(&mut self) {
        let now = self.clock;
        let tick_len = self.tick_len;
        // 1. Generate and route this tick's requests, tenant by tenant.
        for &tenant in &self.order {
            // INVARIANT: `order` only holds tenants present in `tenants`.
            let rt = self.tenants.get_mut(&tenant).expect("known tenant");
            let want = rt.shape.requests_in_tick(now, tick_len) + rt.carry;
            let count = want.floor() as u64;
            rt.carry = want - count as f64;
            for j in 0..count {
                // Arrivals spread uniformly across the tick.
                let issued_at = now + (j * tick_len) / count.max(1);
                let spec = rt.gen.next_request();
                let key = (u64::from(tenant) << 40) ^ spec.key_rank as u64;
                if !spec.is_write {
                    rt.acc.reads += 1;
                }
                let est_ru = rt.plane.estimate_ru(spec.is_write);
                match rt.plane.submit(key, spec.is_write, now) {
                    ProxyDecision::CacheHit { .. } => {
                        // Served at the proxy: no quota, no node traffic.
                        rt.acc.success += 1;
                        rt.acc.proxy_hits += 1;
                        rt.acc.latency.record(PROXY_HIT_LATENCY as f64);
                        rt.acc.latency_sum += PROXY_HIT_LATENCY as f64;
                    }
                    ProxyDecision::Rejected { .. } => {
                        rt.acc.errors += 1;
                    }
                    ProxyDecision::Forward { proxy } => {
                        self.monitor.record_traffic(tenant, now, est_ru);
                        let req = SimRequest {
                            tenant,
                            partition: rt.partition,
                            key,
                            is_write: spec.is_write,
                            value_bytes: spec.value_bytes,
                            issued_at,
                            proxy: Some(proxy),
                        };
                        if let Some(Disposition::RejectedAtNode) = self.node.submit(req, issued_at)
                        {
                            rt.acc.errors += 1;
                        }
                    }
                }
            }
        }
        // 2. Node advances one tick; completions feed proxy caches + metrics.
        for (req, disp) in self.node.tick(now, tick_len) {
            // INVARIANT: every request was generated for a registered tenant.
            let rt = self.tenants.get_mut(&req.tenant).expect("known tenant");
            if let Disposition::Success {
                latency,
                served_from,
            } = disp
            {
                rt.acc.success += 1;
                rt.acc.latency.record(latency as f64);
                rt.acc.latency_sum += latency as f64;
                if !req.is_write {
                    if served_from == ServedFrom::NodeCache {
                        rt.acc.node_hits += 1;
                    }
                    if let Some(proxy) = req.proxy {
                        rt.plane.on_read_complete(
                            proxy,
                            req.key,
                            req.value_bytes,
                            served_from == ServedFrom::NodeCache,
                            now,
                        );
                    }
                }
            }
        }
        self.clock += tick_len;
    }

    fn end_of_minute(&mut self, minute: u64, out: &mut Vec<MinutePoint>) {
        let now = self.clock;
        // Control-plane actions: boost clawback and active cache refresh.
        for &tenant in &self.order {
            let allowed = self.monitor.boost_allowed(tenant, now);
            // INVARIANT: `order` only holds tenants present in `tenants`.
            let rt = self.tenants.get_mut(&tenant).expect("known tenant");
            rt.plane.set_boost(allowed, now);
            for (proxy, key) in rt.plane.refresh_candidates(now) {
                // The refresh re-read is an internal request; the simulator
                // grants it the keyspace's typical size.
                let size = 1024;
                rt.plane.complete_refresh(proxy, key, size, now);
            }
            out.push(rt.acc.point(minute, tenant, self.minute_secs as f64));
            rt.acc.reset();
        }
        // Clear any residual node stats so they do not leak across minutes.
        self.node.take_stats();
    }
}

// ---------------------------------------------------------------------------
// Replicated cluster: real replica groups placed across DataNodes.
// ---------------------------------------------------------------------------

/// Configuration for a [`ReplicatedCluster`].
#[derive(Debug, Clone, Copy)]
pub struct ReplicatedClusterConfig {
    /// Replicas per partition (the paper's deployments use 3).
    pub replication_factor: usize,
    /// Write concern for every group.
    pub write_concern: WriteConcern,
    /// Storage engine configuration for every replica.
    pub db: DbConfig,
    /// Modeled per-node disk bandwidth for reconstruction (None = disk speed).
    pub recovery_bandwidth: Option<f64>,
    /// Commit retry budget per group (see `GroupConfig::wait_timeout`).
    pub wait_timeout: std::time::Duration,
    /// Read-router tuning (staleness budget for `Eventual` follower reads).
    pub router: ReadRouterConfig,
    /// Live-migration engine tuning (cut-over lag budget, catch-up cap).
    /// Migration copies are throttled by `recovery_bandwidth` — data
    /// movement and failover re-seeding charge the same §3.3 disk model.
    pub migration: MigrationConfig,
}

impl Default for ReplicatedClusterConfig {
    fn default() -> Self {
        Self {
            replication_factor: 3,
            write_concern: WriteConcern::Quorum,
            db: DbConfig::default(),
            recovery_bandwidth: None,
            wait_timeout: std::time::Duration::from_millis(100),
            router: ReadRouterConfig::default(),
            migration: MigrationConfig::default(),
        }
    }
}

/// What [`ReplicatedCluster::kill_node`] did, for assertions and reports.
#[derive(Debug)]
pub struct FailoverOutcome {
    /// The meta server's decisions (promotions + copy assignments).
    pub plan: crate::meta::FailoverPlan,
    /// Measured parallel-reconstruction run, when replicas were re-seeded.
    pub reconstruction: Option<ReconstructionReport>,
}

/// A multi-node cluster where every partition is served by a real
/// WAL-shipping [`ReplicaGroup`], placed and failed over by the
/// [`MetaServer`] — the live counterpart of the closed-form §3.3 model.
pub struct ReplicatedCluster {
    base_dir: PathBuf,
    config: ReplicatedClusterConfig,
    meta: MetaServer,
    nodes: HashMap<NodeId, DataNodeSim>,
    node_ids: Vec<NodeId>,
    dead_nodes: std::collections::HashSet<NodeId>,
    groups: HashMap<PartitionId, ReplicaGroup>,
    /// The consistency-aware read router (tentpole): every cluster read goes
    /// through it, so `Eventual` reads spread over caught-up followers and
    /// fenced reads pick a replica that holds the session's write.
    router: ReadRouter,
    /// The live-migration engine: scheduler plans become staged checkpoint
    /// copies + binlog catch-up + epoch-guarded cut-overs, drained by `tick`.
    migrations: MigrationEngine,
    /// RU pricing for the per-replica split ledger.
    ru: RuEstimator,
    /// Registry snapshot taken at construction — the baseline
    /// [`ReplicatedCluster::metrics_delta`] subtracts, so one process can
    /// run many clusters and still ask "what did *this* one do".
    obs_baseline: abase_obs::Snapshot,
    /// Registry snapshot refreshed by each [`ReplicatedCluster::tick`].
    obs_last: abase_obs::Snapshot,
}

/// One routed cluster read, with serving provenance.
#[derive(Debug, Clone)]
pub struct ClusterRead {
    /// The storage read.
    pub result: abase_lavastore::ReadResult,
    /// Node whose replica served it.
    pub node: NodeId,
    /// Whether the serving replica led its group at read time.
    pub is_leader: bool,
    /// LSN records the serving replica trailed the leader by at read time —
    /// the observed staleness of this read.
    pub lag: Lsn,
}

impl ReplicatedCluster {
    /// A cluster of `n_nodes` empty DataNodes rooted at `base_dir`.
    pub fn new(base_dir: impl AsRef<Path>, n_nodes: u32, config: ReplicatedClusterConfig) -> Self {
        assert!(
            (config.replication_factor as u32) <= n_nodes,
            "replication factor exceeds node count"
        );
        let node_ids: Vec<NodeId> = (0..n_nodes).collect();
        let nodes = node_ids
            .iter()
            .map(|&id| (id, DataNodeSim::new(id, DataNodeConfig::default())))
            .collect();
        Self {
            base_dir: base_dir.as_ref().to_path_buf(),
            config,
            meta: MetaServer::new(mins(1)),
            nodes,
            node_ids,
            dead_nodes: std::collections::HashSet::new(),
            groups: HashMap::new(),
            router: ReadRouter::new(config.router),
            migrations: MigrationEngine::new(config.migration),
            ru: RuEstimator::default(),
            obs_baseline: abase_obs::snapshot(),
            obs_last: abase_obs::Snapshot::default(),
        }
    }

    /// The registry snapshot captured by the last [`ReplicatedCluster::tick`]
    /// (empty before the first tick).
    pub fn metrics(&self) -> &abase_obs::Snapshot {
        &self.obs_last
    }

    /// Monotone-counter growth since this cluster was constructed. Counters
    /// are process-global, so the delta over-counts when other clusters run
    /// concurrently — `≥` assertions stay safe, equalities do not.
    pub fn metrics_delta(&self) -> abase_obs::Snapshot {
        abase_obs::snapshot().delta(&self.obs_baseline)
    }

    /// Nodes currently alive, ascending.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        self.node_ids
            .iter()
            .copied()
            .filter(|n| !self.dead_nodes.contains(n))
            .collect()
    }

    /// The meta server (routing tables, failover planning).
    pub fn meta(&self) -> &MetaServer {
        &self.meta
    }

    /// Mutable meta-server access (routing experiments, ablation baselines).
    pub fn meta_mut(&mut self) -> &mut MetaServer {
        &mut self.meta
    }

    /// The live-migration engine's state (queue, in-flight, history).
    pub fn migrations(&self) -> &MigrationEngine {
        &self.migrations
    }

    /// Does `node` have an in-flight replica move (source or destination)?
    /// The scheduler's `NodeState::is_migrating` should mirror this.
    pub fn is_node_migrating(&self, node: NodeId) -> bool {
        self.migrations.is_migrating(node)
    }

    /// The rescheduler's view of this cluster, built from the per-replica
    /// split RU ledgers: one `NodeState` per node (capacity sized to the
    /// observed peak node load × `capacity_headroom`, so utilizations land
    /// in the regime where Algorithm 2's S_L/S_M/S_H division is
    /// meaningful), one `ReplicaLoad` per hosted replica, `is_migrating`
    /// mirrored from the engine (dead nodes are marked migrating so no plan
    /// targets them). Replica ids encode `(partition << 32) | node`; an
    /// Algorithm-2 `Migration` over this view maps back onto the cluster
    /// via [`ReplicatedCluster::migration_request_from_plan`].
    pub fn scheduler_pool_view(&self, capacity_headroom: f64) -> abase_scheduler::PoolState {
        let peak = self
            .nodes
            .values()
            .map(|n| {
                n.replica_ru_splits()
                    .iter()
                    .map(|(_, s)| s.total())
                    .sum::<f64>()
            })
            .fold(0.0f64, f64::max);
        let capacity = peak * capacity_headroom + 1.0;
        let nodes = self
            .node_ids
            .iter()
            .map(|&id| {
                let mut state = abase_scheduler::NodeState::new(id, capacity, 1e9);
                state.is_migrating =
                    self.migrations.is_migrating(id) || self.dead_nodes.contains(&id);
                if let Some(node) = self.nodes.get(&id) {
                    for (partition, split) in node.replica_ru_splits() {
                        state.add_replica(abase_scheduler::ReplicaLoad::split(
                            (partition << 32) | u64::from(id),
                            1,
                            partition,
                            abase_scheduler::LoadVector::flat(split.read_ru),
                            abase_scheduler::LoadVector::flat(split.write_ru),
                            1.0,
                        ));
                    }
                }
                state
            })
            .collect();
        abase_scheduler::PoolState::new(nodes)
    }

    /// Decode an Algorithm-2 plan over a [`ReplicatedCluster::scheduler_pool_view`]
    /// back into the engine's request shape.
    pub fn migration_request_from_plan(m: &abase_scheduler::Migration) -> MigrationRequest {
        MigrationRequest {
            partition: m.replica_id >> 32,
            from: m.from_node,
            to: m.to_node,
        }
    }

    /// A node's placement bookkeeping.
    pub fn node(&self, id: NodeId) -> Option<&DataNodeSim> {
        self.nodes.get(&id)
    }

    /// The replica group serving `partition`.
    pub fn group(&self, partition: PartitionId) -> Option<&ReplicaGroup> {
        self.groups.get(&partition)
    }

    /// Mutable access to a partition's group (tests, WAIT wiring).
    pub fn group_mut(&mut self, partition: PartitionId) -> Option<&mut ReplicaGroup> {
        self.groups.get_mut(&partition)
    }

    /// Create a replicated partition, placing its replicas on the
    /// least-loaded nodes (leaders additionally balance across nodes so the
    /// write path spreads).
    pub fn create_partition(
        &mut self,
        tenant: TenantId,
        partition: PartitionId,
    ) -> abase_replication::Result<()> {
        // Least-loaded placement over *live* nodes by hosted replica count,
        // ties by id.
        let mut candidates: Vec<NodeId> = self.live_nodes();
        assert!(
            candidates.len() >= self.config.replication_factor,
            "not enough live nodes to place a {}-replica group",
            self.config.replication_factor
        );
        candidates.sort_by_key(|id| (self.nodes[id].hosted_replica_count(), *id));
        let mut chosen: Vec<NodeId> = candidates
            .into_iter()
            .take(self.config.replication_factor)
            .collect();
        // Leader = the chosen node with the fewest leaders.
        chosen.sort_by_key(|id| (self.nodes[id].hosted_leader_count(), *id));
        let group = ReplicaGroup::bootstrap(
            partition,
            &self.base_dir,
            &chosen,
            GroupConfig {
                write_concern: self.config.write_concern,
                db: self.config.db,
                wait_timeout: self.config.wait_timeout,
            },
        )?;
        self.meta.assign_replica_group(
            tenant,
            partition,
            ReplicaSet {
                leader: chosen[0],
                followers: chosen[1..].to_vec(),
            },
        );
        for (i, id) in chosen.iter().enumerate() {
            let role = if i == 0 { Role::Leader } else { Role::Follower };
            self.nodes
                .get_mut(id)
                // INVARIANT: `chosen` was drawn from `self.nodes` keys above.
                .expect("placed on known node")
                .host_replica(partition, role);
        }
        self.groups.insert(partition, group);
        self.sync_replica_state(partition);
        Ok(())
    }

    /// Write through the partition's leader under the group write concern.
    /// Every live member's replica is charged the write RU (§4.1's write
    /// amplification shows up per replica, not once at the leader).
    pub fn write(
        &mut self,
        partition: PartitionId,
        key: &[u8],
        value: &[u8],
        now: SimTime,
    ) -> abase_replication::Result<Lsn> {
        let group = self
            .groups
            .get_mut(&partition)
            .ok_or(abase_replication::Error::NoLeader)?;
        let lsn = group.put(key, value, None, now)?;
        let write_ru = self.ru.write_ru(key.len() + value.len(), 1);
        // Dead members never applied the write; their ledgers stay flat.
        let live: Vec<NodeId> = group
            .members()
            .into_iter()
            .filter(|&m| group.is_alive(m))
            .collect();
        for member in live {
            if let Some(node) = self.nodes.get_mut(&member) {
                node.record_replica_write(partition, write_ru);
            }
        }
        self.sync_replica_state(partition);
        Ok(lsn)
    }

    /// Read from the partition at the requested consistency level, through
    /// the read router (see [`ReplicatedCluster::read_routed`]).
    pub fn read(
        &mut self,
        partition: PartitionId,
        key: &[u8],
        consistency: ReadConsistency,
        now: SimTime,
    ) -> abase_replication::Result<abase_lavastore::ReadResult> {
        self.read_routed(partition, key, consistency, now)
            .map(|r| r.result)
    }

    /// Read from the partition through the consistency-aware router: the
    /// router picks a node from the MetaServer's replica health/LSN view,
    /// the group re-validates the choice (fence + liveness) and serves, and
    /// the read RU is charged to the serving node's replica ledger. A stale
    /// routing decision (replica died or fell behind since its last health
    /// report) re-routes to the leader instead of surfacing an error or a
    /// stale value.
    pub fn read_routed(
        &mut self,
        partition: PartitionId,
        key: &[u8],
        consistency: ReadConsistency,
        now: SimTime,
    ) -> abase_replication::Result<ClusterRead> {
        self.sync_replica_state(partition);
        let decision = self
            .router
            .route(&self.meta, partition, consistency)
            .ok_or(ReplError::NoLeader)?;
        let fence = match consistency {
            ReadConsistency::ReadYourWrites(lsn) => Some(lsn),
            ReadConsistency::Eventual | ReadConsistency::Leader => None,
        };
        let group = self.groups.get(&partition).ok_or(ReplError::NoLeader)?;
        let (routed, is_leader) = match group.read_at(decision.node, key, fence, now) {
            Ok(r) => (r, decision.is_leader),
            // UnknownReplica covers a routing view that still names a
            // migrated-away source: the cut-over removed the member between
            // the router's decision and the group's check.
            Err(ReplError::StaleReplica { .. })
            | Err(ReplError::ReplicaUnavailable(_))
            | Err(ReplError::UnknownReplica(_))
                if !decision.is_leader =>
            {
                // The router's health view trailed reality; the leader holds
                // every acked write, so it can always take the read.
                self.router.note_fallback();
                let leader = group.leader().ok_or(ReplError::NoLeader)?;
                (group.read_at(leader, key, fence, now)?, true)
            }
            Err(e) => return Err(e),
        };
        let bytes = routed.result.value.as_ref().map(|v| v.len()).unwrap_or(0);
        let outcome = if routed.result.from_memtable {
            ReadOutcome::NodeCacheHit
        } else {
            ReadOutcome::Miss
        };
        let read_ru = self.ru.charge_read(bytes, outcome);
        if let Some(node) = self.nodes.get_mut(&routed.replica) {
            node.record_replica_read(partition, read_ru);
        }
        Ok(ClusterRead {
            node: routed.replica,
            is_leader,
            lag: routed.lag,
            result: routed.result,
        })
    }

    /// The read router's counters (leader vs follower vs fallback).
    pub fn router_stats(&self) -> RouterStats {
        self.router.stats()
    }

    /// Push a group's authoritative replica state into the MetaServer's
    /// health view — the simulator's stand-in for the production heartbeat.
    fn sync_replica_state(&mut self, partition: PartitionId) {
        let Some(group) = self.groups.get(&partition) else {
            return;
        };
        // A replica awaiting a full resync reports dead for routing: its
        // history may be divergent, so no read may land on it.
        let readable = group.readable_replicas(None);
        for replica in group.status().replicas {
            let serving = replica.alive && readable.contains(&replica.id);
            self.meta
                .report_replica_health(partition, replica.id, serving, replica.acked_lsn);
        }
    }

    /// Ship pending log on every group (the per-tick replication pump that
    /// drains `Async` writes to followers), drain the migration queue one
    /// step, then refresh the meta server's replica health view.
    pub fn tick(&mut self) -> abase_replication::Result<()> {
        for group in self.groups.values_mut() {
            group.tick()?;
        }
        self.step_migrations();
        let partitions: Vec<PartitionId> = self.groups.keys().copied().collect();
        for partition in partitions {
            self.sync_replica_state(partition);
        }
        // Observability hook: each tick republishes the registry view, so
        // anything driving the cluster can read a fresh snapshot without
        // knowing about the registry itself.
        if abase_obs::enabled() {
            self.obs_last = abase_obs::snapshot();
        }
        Ok(())
    }

    /// Accept a live migration of `partition`'s replica off `from` onto
    /// `to`. Validated against the current placement; executed by subsequent
    /// [`ReplicatedCluster::tick`]s (staged copy → binlog catch-up →
    /// epoch-guarded cut-over → source teardown), at most one in-flight move
    /// per node.
    pub fn enqueue_migration(
        &mut self,
        partition: PartitionId,
        from: NodeId,
        to: NodeId,
    ) -> Result<(), MigrationError> {
        let group = self
            .groups
            .get(&partition)
            .ok_or(MigrationError::UnknownPartition(partition))?;
        if !group.members().contains(&from) {
            return Err(MigrationError::SourceNotMember(from));
        }
        if group.members().contains(&to) {
            return Err(MigrationError::DestAlreadyMember(to));
        }
        for node in [from, to] {
            if self.dead_nodes.contains(&node) || !self.nodes.contains_key(&node) {
                return Err(MigrationError::NodeDead(node));
            }
        }
        self.migrations.enqueue(MigrationRequest {
            partition,
            from,
            to,
        })
    }

    /// One engine step: progress in-flight moves toward cut-over, then start
    /// queued moves whose nodes are idle. A move started this tick never
    /// cuts over before the next tick, so `is_migrating` back-pressure is
    /// observable for at least one full tick.
    fn step_migrations(&mut self) {
        self.migrations.advance_tick();
        self.progress_inflight_migrations();
        self.start_queued_migrations();
    }

    /// Stage every startable queued move: epoch-guarded join via the shared
    /// resync ticket machinery, checkpoint copy throttled by the §3.3
    /// recovery-bandwidth model, copy RU charged to both ends.
    fn start_queued_migrations(&mut self) {
        let throttle = self.config.recovery_bandwidth.map(Throttle::new);
        for req in self.migrations.take_startable() {
            match self.stage_migration(req, throttle.as_ref()) {
                Ok((bytes, secs)) => {
                    self.migrations.note_joined(req, bytes, secs);
                    // The destination is a group member from here on: meta's
                    // set and the node registry learn about it immediately so
                    // health reports and failover planning see it.
                    self.meta.begin_migration(req.partition, req.to);
                    if let Some(node) = self.nodes.get_mut(&req.to) {
                        node.host_replica(req.partition, Role::Follower);
                    }
                    let copy_ru = self.ru.write_ru(bytes as usize, 1);
                    if let Some(node) = self.nodes.get_mut(&req.from) {
                        node.record_copy_out(req.partition, copy_ru);
                    }
                    if let Some(node) = self.nodes.get_mut(&req.to) {
                        node.record_copy_in(req.partition, copy_ru);
                    }
                    self.sync_replica_state(req.partition);
                }
                Err(e) => {
                    // Copy or join failed before the destination became a
                    // member: the source replica is untouched, the staging
                    // tree is cleaned by the ticket, and the busy flags the
                    // start acquired are released.
                    self.migrations
                        .note_staging_failed(req, format!("staging failed: {e}"));
                }
            }
        }
    }

    /// The staged copy for one move: `begin_join` → throttled checkpoint
    /// stream → `complete_join`. Returns (bytes copied, wall-clock seconds).
    fn stage_migration(
        &mut self,
        req: MigrationRequest,
        throttle: Option<&Throttle>,
    ) -> abase_replication::Result<(u64, f64)> {
        let base_dir = self.base_dir.clone();
        let group = self
            .groups
            .get_mut(&req.partition)
            .ok_or(ReplError::NoLeader)?;
        let ticket = group.begin_join(req.to, &base_dir)?;
        let t0 = std::time::Instant::now();
        let info = ticket.copy_throttled(throttle)?;
        let secs = t0.elapsed().as_secs_f64();
        group.complete_join(ticket, info)?;
        // No fallible work after the join: an error here would leave the
        // destination installed in the group while the caller's abort path
        // assumes membership never changed. Catch-up starts with the next
        // tick's pump (`progress_inflight_migrations`), whose failures run
        // the full staged-destination teardown.
        Ok((info.bytes_copied, secs))
    }

    /// Advance every in-flight move: pump the destination, and once its lag
    /// is within the cut-over budget (and it has been in flight for at least
    /// one tick), drain to lag 0 and cut over atomically.
    fn progress_inflight_migrations(&mut self) {
        let now_tick = self.migrations.tick();
        let inflight: Vec<crate::migration::ActiveMigration> = self.migrations.in_flight().to_vec();
        // The engine's copy of the tuning is authoritative (the cluster
        // config only seeds it at construction).
        let budget = self.migrations.config().cutover_lag_budget;
        let max_catchup = self.migrations.config().max_catchup_ticks;
        for m in inflight {
            let req = m.req;
            let Some(group) = self.groups.get_mut(&req.partition) else {
                self.migrations.note_aborted(req, "partition dropped");
                continue;
            };
            if let Err(e) = group.pump_follower(req.to) {
                self.migrations
                    .note_aborted(req, format!("catch-up pump failed: {e}"));
                self.abort_staged_destination(req);
                continue;
            }
            let lag = match group.replica_lag(req.to) {
                Ok(lag) => lag,
                Err(e) => {
                    self.migrations
                        .note_aborted(req, format!("lag unobservable: {e}"));
                    self.abort_staged_destination(req);
                    continue;
                }
            };
            // Never cut over in the joining tick: back-pressure must be
            // observable, and the destination gets one pump cycle to settle.
            if now_tick <= m.joined_at_tick {
                continue;
            }
            if lag > budget {
                if max_catchup > 0 && now_tick.saturating_sub(m.joined_at_tick) > max_catchup {
                    self.migrations
                        .note_aborted(req, format!("catch-up stuck at lag {lag}"));
                    self.abort_staged_destination(req);
                }
                continue;
            }
            match self.cut_over(req, m.bytes_copied) {
                Ok(was_leader) => self.migrations.note_completed(req, lag, was_leader),
                Err(e) => {
                    self.migrations
                        .note_aborted(req, format!("cut-over failed: {e}"));
                    self.abort_staged_destination(req);
                }
            }
        }
    }

    /// The atomic cut-over: drain the destination to lag 0, hand leadership
    /// over if the source led, retire the source member (epoch bump), and
    /// switch the MetaServer's routing + replica set + health view together.
    /// Returns whether the moving replica led the group.
    fn cut_over(
        &mut self,
        req: MigrationRequest,
        bytes_copied: u64,
    ) -> abase_replication::Result<bool> {
        let group = self
            .groups
            .get_mut(&req.partition)
            .ok_or(ReplError::NoLeader)?;
        let was_leader = group.leader() == Some(req.from);
        if was_leader {
            // handover drains `to` to the leader's exact LSN before any role
            // changes; a failure leaves every role as it was.
            group.handover(req.to)?;
        } else {
            // Final drain for a follower move: the same bounded drain the
            // leadership handover uses internally.
            group.drain_to_leader(req.to)?;
        }
        let source_dir = group.remove_member(req.from)?;
        let dest_lsn = group.acked_lsn(req.to)?;
        // The registry role comes from the group's *current* leadership, not
        // from `was_leader`: an unrelated failover during catch-up may have
        // promoted the (most-caught-up) staged destination already.
        let dest_role = if group.leader() == Some(req.to) {
            Role::Leader
        } else {
            Role::Follower
        };
        // Source teardown: the bytes moved; reclaim the disk. The replica's
        // RU ledger moves with it — deleting it would make the (hot) replica
        // look freshly cold at the destination and invite a second move —
        // but the copy-out RU this migration charged the source stays out of
        // the transfer: the destination already paid its own copy-in, and
        // carrying both sides would bias Algorithm 2 against the new home.
        std::fs::remove_dir_all(&source_dir).ok();
        self.meta
            .complete_migration(req.partition, req.from, req.to, dest_lsn);
        let copy_ru = self.ru.write_ru(bytes_copied as usize, 1);
        let ledger = self
            .nodes
            .get_mut(&req.from)
            .map(|node| {
                let mut ledger = node.take_replica_ru(req.partition);
                ledger.read_ru = (ledger.read_ru - copy_ru).max(0.0);
                node.drop_replica(req.partition);
                ledger
            })
            .unwrap_or_default();
        if let Some(node) = self.nodes.get_mut(&req.to) {
            node.host_replica(req.partition, dest_role);
            node.absorb_replica_ru(req.partition, ledger);
        }
        self.sync_replica_state(req.partition);
        Ok(was_leader)
    }

    /// Tear a staged (joined but not cut-over) destination back out of the
    /// group and the meta view after an abort — the source replica still
    /// serves, so the move simply never happened. Exception: if an unrelated
    /// failover already *promoted* the staged destination (it was the
    /// most-caught-up candidate), the group depends on it — the migration is
    /// abandoned as a migration but the destination stays a full member with
    /// its leader role intact.
    fn abort_staged_destination(&mut self, req: MigrationRequest) {
        if let Some(group) = self.groups.get_mut(&req.partition) {
            if group.leader() == Some(req.to) {
                self.sync_replica_state(req.partition);
                return;
            }
            if group.members().contains(&req.to) {
                if let Ok(dir) = group.remove_member(req.to) {
                    std::fs::remove_dir_all(dir).ok();
                }
            }
        }
        self.meta.abort_migration(req.partition, req.to);
        if let Some(node) = self.nodes.get_mut(&req.to) {
            node.drop_replica(req.partition);
        }
        self.sync_replica_state(req.partition);
    }

    /// Kill a DataNode: fail its replicas, let the meta server plan
    /// promotions and reconstruction, execute the promotions, and re-seed the
    /// lost replicas **in parallel** from the planned sources.
    pub fn kill_node(&mut self, failed: NodeId) -> abase_replication::Result<FailoverOutcome> {
        self.dead_nodes.insert(failed);
        // 0. Cancel every pending migration touching the dead node. An
        //    in-flight move's staged destination is torn back out of the
        //    group (the source replica — or, if the source died, the normal
        //    failover re-seed below — keeps the partition at full strength),
        //    so the failure plan runs against the original membership.
        for (req, joined) in self.migrations.pending_involving(failed) {
            let side = if req.to == failed {
                "destination died"
            } else {
                "source died"
            };
            self.migrations.note_aborted(req, side);
            if joined {
                self.abort_staged_destination(req);
            }
        }
        // 1. The node's replicas become unreachable.
        for group in self.groups.values_mut() {
            if group.members().contains(&failed) {
                group.fail_replica(failed)?;
            }
        }
        if let Some(node) = self.nodes.get_mut(&failed) {
            for partition in self.meta.partitions_on_node(failed) {
                node.drop_replica(partition);
            }
        }
        // 2. The meta server plans from real acked LSNs, re-seeding only
        //    onto nodes that are still alive.
        let alive: Vec<NodeId> = self.live_nodes();
        let groups = &self.groups;
        let plan = self.meta.plan_node_failure(
            failed,
            // `promotable_lsn` is None for dead or divergent replicas, so the
            // plan can never elect a follower whose LSN counts unacked
            // history (the group's own `promote` applies the same filter).
            |partition, node| groups.get(&partition).and_then(|g| g.promotable_lsn(node)),
            &alive,
        );
        // 3. Execute promotions (the group elects by the same max-LSN rule).
        for promotion in &plan.promotions {
            let group = self
                .groups
                .get_mut(&promotion.partition)
                // INVARIANT: the plan was built from this map's entries.
                .expect("planned partition exists");
            let elected = group.promote()?;
            debug_assert_eq!(elected, promotion.new_leader, "plan/group disagree");
            if let Some(node) = self.nodes.get_mut(&elected) {
                node.host_replica(promotion.partition, Role::Leader);
            }
        }
        // 4. Parallel reconstruction from the planned sources.
        let mut tasks = Vec::with_capacity(plan.reconstructions.len());
        for assignment in &plan.reconstructions {
            let group = &self.groups[&assignment.partition];
            tasks.push(ReconstructionTask {
                partition: assignment.partition,
                source: group.db(assignment.source)?,
                source_node: assignment.source,
                dest_dir: abase_replication::group::replica_dir(
                    &self.base_dir,
                    assignment.partition,
                    assignment.dest,
                ),
            });
        }
        let reconstruction = if tasks.is_empty() {
            None
        } else {
            Some(reconstruct_parallel(tasks, self.config.recovery_bandwidth)?)
        };
        // Re-seed copies consume the same disks migrations do: charge the
        // copy RU to both ends of every reconstruction (per-task bytes
        // approximated as an even share of the run), so a pool view built
        // after a failover sees the recovery traffic in the loss function.
        if let Some(rec) = &reconstruction {
            let per_task = rec.bytes_copied / rec.replicas.max(1) as u64;
            let copy_ru = self.ru.write_ru(per_task as usize, 1);
            for assignment in &plan.reconstructions {
                if let Some(node) = self.nodes.get_mut(&assignment.source) {
                    node.record_copy_out(assignment.partition, copy_ru);
                }
                if let Some(node) = self.nodes.get_mut(&assignment.dest) {
                    node.record_copy_in(assignment.partition, copy_ru);
                }
            }
        }
        // 5. Rebuilt replicas join their groups and start tailing.
        for assignment in &plan.reconstructions {
            let dir = abase_replication::group::replica_dir(
                &self.base_dir,
                assignment.partition,
                assignment.dest,
            );
            let group = self
                .groups
                .get_mut(&assignment.partition)
                // INVARIANT: the plan was built from this map's entries.
                .expect("planned partition exists");
            group.adopt_replica(failed, assignment.dest, dir)?;
            if let Some(node) = self.nodes.get_mut(&assignment.dest) {
                node.host_replica(assignment.partition, Role::Follower);
            }
        }
        // 6. Every partition's routing view reflects the new world before
        //    the next read is routed.
        let partitions: Vec<PartitionId> = self.groups.keys().copied().collect();
        for partition in partitions {
            self.sync_replica_state(partition);
        }
        Ok(FailoverOutcome {
            plan,
            reconstruction,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DataNodeConfig;
    use abase_util::clock::mins;
    use abase_util::TestDir;

    fn spec(id: TenantId, qps: f64) -> TenantSpec {
        TenantSpec {
            id,
            tenant_quota_ru: 2_000.0,
            partition: u64::from(id) * 100,
            partition_quota_ru: 1_000.0,
            shape: TrafficShape::Steady(qps),
            keyspace: KeyspaceConfig {
                n_keys: 5_000,
                zipf_s: 0.99,
                read_ratio: 0.9,
                ..Default::default()
            },
            proxy: ProxyPlaneConfig {
                n_proxies: 4,
                n_groups: 2,
                ..Default::default()
            },
        }
    }

    #[test]
    fn steady_load_completes_with_low_latency() {
        let node = DataNodeSim::new(1, DataNodeConfig::default());
        let mut exp = IsolationExperiment::new(node, vec![spec(1, 500.0), spec(2, 500.0)], 7);
        let points = exp.run_minutes(3);
        assert_eq!(points.len(), 6); // 2 tenants × 3 minutes
        for p in &points[2..] {
            assert!(
                (p.success_qps - 500.0).abs() < 50.0,
                "minute {} tenant {} qps {}",
                p.minute,
                p.tenant,
                p.success_qps
            );
            assert!(p.error_qps < 5.0, "errors {}", p.error_qps);
            assert!(p.p99_latency_ms < 50.0, "p99 {}", p.p99_latency_ms);
        }
    }

    #[test]
    fn cache_hit_ratio_climbs_on_zipf_reads() {
        let node = DataNodeSim::new(1, DataNodeConfig::default());
        let mut exp = IsolationExperiment::new(node, vec![spec(1, 500.0)], 3);
        let points = exp.run_minutes(4);
        let last = points.last().unwrap();
        assert!(
            last.cache_hit_ratio > 0.5,
            "hit ratio {} after warmup",
            last.cache_hit_ratio
        );
    }

    #[test]
    fn burst_without_proxy_quota_starves_the_neighbour() {
        // Figure 6's first phase in miniature.
        let node = DataNodeSim::new(
            1,
            DataNodeConfig {
                cpu_ru_per_sec: 2_000.0,
                rejection_cost_ru: 0.5,
                ..Default::default()
            },
        );
        let mut t1 = spec(1, 200.0);
        t1.proxy.quota_enabled = false; // proxy not intercepting
        t1.proxy.cache_enabled = false;
        t1.keyspace.read_ratio = 1.0;
        let mut t2 = spec(2, 200.0);
        t2.proxy.cache_enabled = false;
        let mut exp = IsolationExperiment::new(node, vec![t1, t2], 11);
        let warm = exp.run_minutes(2);
        let t2_before: f64 = warm
            .iter()
            .filter(|p| p.tenant == 2 && p.minute == 1)
            .map(|p| p.success_qps)
            .sum();
        // Tenant 1 bursts to 20k QPS — far over its quota.
        exp.set_shape(1, TrafficShape::Steady(20_000.0));
        let burst = exp.run_minutes(3);
        let t2_during: f64 = burst
            .iter()
            .filter(|p| p.tenant == 2 && p.minute == 4)
            .map(|p| p.success_qps)
            .sum();
        assert!(
            t2_during < t2_before * 0.5,
            "tenant 2 unaffected: {t2_before} -> {t2_during}"
        );
    }

    #[test]
    fn proxy_quota_shields_the_neighbour_from_bursts() {
        // Figure 6's second phase: same burst, but the proxy intercepts.
        let node = DataNodeSim::new(
            1,
            DataNodeConfig {
                cpu_ru_per_sec: 2_000.0,
                rejection_cost_ru: 0.5,
                ..Default::default()
            },
        );
        let mut t1 = spec(1, 200.0);
        t1.proxy.cache_enabled = false;
        t1.keyspace.read_ratio = 1.0;
        t1.tenant_quota_ru = 800.0; // proxy caps tenant 1 below node capacity
        let mut t2 = spec(2, 200.0);
        t2.proxy.cache_enabled = false;
        let mut exp = IsolationExperiment::new(node, vec![t1, t2], 11);
        exp.run_minutes(2);
        exp.set_shape(1, TrafficShape::Steady(20_000.0));
        let burst = exp.run_minutes(3);
        let t2_during: f64 = burst
            .iter()
            .filter(|p| p.tenant == 2 && p.minute == 4)
            .map(|p| p.success_qps)
            .sum();
        assert!(
            t2_during > 150.0,
            "tenant 2 starved despite proxy quota: {t2_during}"
        );
    }

    #[test]
    fn minute_points_are_emitted_in_order() {
        let node = DataNodeSim::new(1, DataNodeConfig::default());
        let mut exp = IsolationExperiment::new(node, vec![spec(1, 100.0)], 5);
        let points = exp.run_minutes(2);
        assert_eq!(points[0].minute, 0);
        assert_eq!(points[1].minute, 1);
        assert_eq!(exp.now(), mins(2));
    }

    fn small_cluster(tag: &str) -> (TestDir, ReplicatedCluster) {
        let dir = TestDir::new(tag);
        let cluster = ReplicatedCluster::new(
            dir.path(),
            4,
            ReplicatedClusterConfig {
                replication_factor: 3,
                write_concern: WriteConcern::Quorum,
                db: DbConfig::small_for_tests(),
                recovery_bandwidth: None,
                ..Default::default()
            },
        );
        (dir, cluster)
    }

    #[test]
    fn placement_spreads_replicas_and_leaders() {
        let (_d, mut cluster) = small_cluster("placement");
        for p in 0..4u64 {
            cluster.create_partition(1, p).unwrap();
        }
        // 4 partitions × 3 replicas over 4 nodes → 3 replicas per node.
        for n in 0..4u32 {
            assert_eq!(
                cluster.node(n).unwrap().hosted_replica_count(),
                3,
                "node {n}"
            );
        }
        // Leaders spread: no node leads more than... 4 leaders over 4 nodes.
        for n in 0..4u32 {
            assert!(
                cluster.node(n).unwrap().hosted_leader_count() <= 2,
                "node {n}"
            );
        }
        // Meta routing agrees with group leadership.
        for p in 0..4u64 {
            assert_eq!(cluster.meta().route(p), cluster.group(p).unwrap().leader());
        }
    }

    #[test]
    fn eventual_reads_are_served_by_followers_with_split_accounting() {
        let (_d, mut cluster) = small_cluster("routed-reads");
        cluster.create_partition(1, 0).unwrap();
        for i in 0..10 {
            cluster
                .write(0, format!("k{i}").as_bytes(), b"v", 0)
                .unwrap();
        }
        cluster.tick().unwrap(); // all followers converge
        let mut served = std::collections::HashSet::new();
        for i in 0..12 {
            let key = format!("k{}", i % 10);
            let r = cluster
                .read_routed(0, key.as_bytes(), ReadConsistency::Eventual, 0)
                .unwrap();
            assert!(r.result.value.is_some());
            assert_eq!(r.lag, 0, "converged follower reported lag");
            assert!(!r.is_leader, "eventual read went to the leader");
            served.insert(r.node);
        }
        // Both followers took reads, and their replica ledgers show it.
        assert_eq!(served.len(), 2, "reads did not spread: {served:?}");
        let leader = cluster.meta().route(0).unwrap();
        for node in served {
            assert_ne!(node, leader);
            let split = cluster.node(node).unwrap().replica_ru_split(0);
            assert!(split.read_ru > 0.0, "follower read RU not charged");
            assert!(split.write_ru > 0.0, "replica write RU not charged");
        }
        // The leader carried the writes but none of these reads.
        let leader_split = cluster.node(leader).unwrap().replica_ru_split(0);
        assert!(leader_split.write_ru > 0.0);
        assert_eq!(leader_split.read_ru, 0.0);
        assert_eq!(cluster.router_stats().follower_reads, 12);
    }

    #[test]
    fn ryw_reads_fence_on_the_session_lsn() {
        let (_d, mut cluster) = small_cluster("routed-ryw");
        cluster.create_partition(1, 0).unwrap();
        // Quorum write: one follower has it, one may lag.
        let lsn = cluster.write(0, b"k", b"v1", 0).unwrap();
        for _ in 0..6 {
            let r = cluster
                .read_routed(0, b"k", ReadConsistency::ReadYourWrites(lsn), 0)
                .unwrap();
            assert_eq!(
                r.result.value.as_deref(),
                Some(&b"v1"[..]),
                "fenced read missed the session's write (served by node {})",
                r.node
            );
        }
    }

    #[test]
    fn live_migration_moves_a_follower_replica() {
        let (_d, mut cluster) = small_cluster("migrate-follower");
        cluster.create_partition(1, 0).unwrap();
        for i in 0..20 {
            cluster
                .write(0, format!("k{i}").as_bytes(), b"v", 0)
                .unwrap();
        }
        let set = cluster.meta().replica_set(0).unwrap().clone();
        let from = set.followers[0];
        let to = (0..4u32).find(|n| !set.contains(*n)).unwrap();
        cluster.enqueue_migration(0, from, to).unwrap();
        // Tick 1 stages (copy + join); tick 2 cuts over.
        cluster.tick().unwrap();
        assert!(cluster.is_node_migrating(from));
        assert!(cluster.is_node_migrating(to));
        cluster.tick().unwrap();
        assert!(cluster.migrations().idle());
        assert_eq!(cluster.migrations().completed().len(), 1);
        let report = &cluster.migrations().completed()[0];
        assert!(report.bytes_copied > 0);
        assert!(!report.was_leader);
        // Placement switched everywhere together: meta set, group members,
        // node registries, health view.
        let set = cluster.meta().replica_set(0).unwrap();
        assert!(!set.contains(from));
        assert!(set.contains(to));
        assert_eq!(
            cluster.group(0).unwrap().members().len(),
            3,
            "group not back to full strength"
        );
        assert!(!cluster.group(0).unwrap().members().contains(&from));
        assert!(cluster.node(from).unwrap().replica_role(0).is_none());
        assert_eq!(
            cluster.node(to).unwrap().replica_role(0),
            Some(Role::Follower)
        );
        assert!(!cluster.meta().read_candidates(0, None).contains(&from));
        // The moved bytes are really at the destination, and copy RU was
        // charged to both ends.
        let db = cluster.group(0).unwrap().db(to).unwrap();
        for i in 0..20 {
            assert!(db
                .get(format!("k{i}").as_bytes(), 0)
                .unwrap()
                .value
                .is_some());
        }
        assert!(cluster.node(from).unwrap().migration_copy_ru() > 0.0);
        assert!(cluster.node(to).unwrap().migration_copy_ru() > 0.0);
        // Writes and reads keep flowing against the new placement.
        cluster.write(0, b"post-move", b"w", 0).unwrap();
        let r = cluster
            .read(0, b"post-move", ReadConsistency::Leader, 0)
            .unwrap();
        assert!(r.value.is_some());
    }

    #[test]
    fn live_migration_of_a_leader_hands_over_leadership() {
        let (_d, mut cluster) = small_cluster("migrate-leader");
        cluster.create_partition(1, 0).unwrap();
        for i in 0..10 {
            cluster
                .write(0, format!("k{i}").as_bytes(), b"v", 0)
                .unwrap();
        }
        let set = cluster.meta().replica_set(0).unwrap().clone();
        let from = set.leader;
        let to = (0..4u32).find(|n| !set.contains(*n)).unwrap();
        cluster.enqueue_migration(0, from, to).unwrap();
        cluster.tick().unwrap();
        cluster.tick().unwrap();
        assert_eq!(cluster.migrations().completed().len(), 1);
        assert!(cluster.migrations().completed()[0].was_leader);
        assert_eq!(cluster.meta().route(0), Some(to));
        assert_eq!(cluster.group(0).unwrap().leader(), Some(to));
        assert_eq!(
            cluster.node(to).unwrap().replica_role(0),
            Some(Role::Leader)
        );
        // No acked write lost across the handover, and writes continue.
        for i in 0..10 {
            let r = cluster
                .read(0, format!("k{i}").as_bytes(), ReadConsistency::Leader, 0)
                .unwrap();
            assert!(r.value.is_some(), "k{i} lost across leader migration");
        }
        cluster.write(0, b"after", b"w", 0).unwrap();
    }

    #[test]
    fn cluster_failover_preserves_quorum_writes() {
        let (_d, mut cluster) = small_cluster("failover");
        for p in 0..3u64 {
            cluster.create_partition(1, p).unwrap();
        }
        let mut lsns = Vec::new();
        for p in 0..3u64 {
            for i in 0..20 {
                let lsn = cluster
                    .write(p, format!("p{p}-k{i}").as_bytes(), b"v", 0)
                    .unwrap();
                lsns.push((p, i, lsn));
            }
        }
        // Kill the node leading partition 0.
        let victim = cluster.meta().route(0).unwrap();
        let outcome = cluster.kill_node(victim).unwrap();
        assert!(!outcome.plan.promotions.is_empty());
        // Every partition still serves every acked write.
        for p in 0..3u64 {
            for i in 0..20 {
                let key = format!("p{p}-k{i}");
                let r = cluster
                    .read(p, key.as_bytes(), ReadConsistency::Leader, 0)
                    .unwrap();
                assert!(r.value.is_some(), "acked write lost: {key}");
            }
        }
        // The dead node is out of every routing entry and every set is full
        // strength again.
        for p in 0..3u64 {
            let set = cluster.meta().replica_set(p).unwrap();
            assert!(!set.contains(victim));
            assert_eq!(set.members().len(), 3);
            // And writes keep flowing.
            cluster.write(p, b"after-failover", b"v", 0).unwrap();
        }
    }
}
