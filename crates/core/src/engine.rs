//! The real data path: RESP commands against LavaStore.
//!
//! Each DataNode runs a [`TableEngine`] that executes [`Command`]s for many
//! tenants against one [`Db`], namespacing keys as
//! `t<tenant>:<user key>` for strings and `h<tenant>:<key>:<field>` for hash
//! fields. Hash commands map onto prefix scans, which is exactly how the
//! paper's `HGetAll` decomposes into `HLen` + scan (§4.1).

use abase_lavastore::{Db, DbConfig, ReadResult};
use abase_proto::{Command, RespValue};
use abase_util::clock::SimTime;
use abase_util::lockrank::{rank, RankedRwLock};
use bytes::Bytes;
use std::sync::Arc;

use crate::types::TenantId;

/// Outcome of executing one command.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// The RESP reply to send to the client.
    pub reply: RespValue,
    /// Block I/Os performed by the storage engine.
    pub io_ops: u32,
    /// Bytes returned to the client (the "actual size" RU charging uses).
    pub bytes_returned: usize,
    /// True when the engine served the read without touching SSTs.
    pub from_memtable: bool,
}

/// A multi-tenant table engine over one LavaStore instance.
///
/// The store is held behind an [`Arc`] so a replication plane can share it:
/// a replica-group leader executes commands through the engine while the
/// group ships the same store's WAL to followers, and a follower's engine
/// serves reads over the store the group keeps in sync. The handle is
/// swappable ([`TableEngine::swap_db`]) because a socket follower's full
/// resync replaces its store wholesale while the RESP server keeps serving.
pub struct TableEngine {
    db: RankedRwLock<Arc<Db>>,
}

impl std::fmt::Debug for TableEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableEngine")
            .field("dir", &self.db().dir())
            .finish()
    }
}

impl TableEngine {
    /// Open an engine rooted at `dir`.
    pub fn open(
        dir: impl AsRef<std::path::Path>,
        config: DbConfig,
    ) -> abase_lavastore::Result<Self> {
        Ok(Self {
            db: RankedRwLock::new(rank::ENGINE_DB, Arc::new(Db::open(dir, config)?)),
        })
    }

    /// An engine over an existing (typically replicated) store.
    pub fn from_db(db: Arc<Db>) -> Self {
        Self {
            db: RankedRwLock::new(rank::ENGINE_DB, db),
        }
    }

    /// The current store handle (flush/compaction control, direct reads).
    pub fn db(&self) -> Arc<Db> {
        Arc::clone(&self.db.read())
    }

    /// A shareable handle to the store, for wiring into a replica group.
    pub fn shared_db(&self) -> Arc<Db> {
        self.db()
    }

    /// Replace the underlying store. Commands already executing finish
    /// against the handle they cloned; new commands see the replacement —
    /// exactly the semantics a follower needs when a full resync swaps its
    /// data directory for a fresh leader checkpoint.
    pub fn swap_db(&self, db: Arc<Db>) {
        *self.db.write() = db;
    }

    /// The storage-level key a tenant's string key namespaces to — exposed so
    /// the server's routed read path can issue the same read against a
    /// follower replica's store.
    pub fn storage_string_key(tenant: TenantId, key: &[u8]) -> Vec<u8> {
        Self::string_key(tenant, key)
    }

    fn string_key(tenant: TenantId, key: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(key.len() + 12);
        out.extend_from_slice(format!("t{tenant}:").as_bytes());
        out.extend_from_slice(key);
        out
    }

    fn hash_prefix(tenant: TenantId, key: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(key.len() + 12);
        out.extend_from_slice(format!("h{tenant}:").as_bytes());
        out.extend_from_slice(key);
        out.push(b':');
        out
    }

    fn hash_field_key(tenant: TenantId, key: &[u8], field: &[u8]) -> Vec<u8> {
        let mut out = Self::hash_prefix(tenant, key);
        out.extend_from_slice(field);
        out
    }

    /// Execute `cmd` on behalf of `tenant` at virtual time `now`.
    pub fn execute(
        &self,
        tenant: TenantId,
        cmd: &Command,
        now: SimTime,
    ) -> abase_lavastore::Result<ExecOutcome> {
        let db = self.db();
        match cmd {
            Command::Ping => Ok(ExecOutcome {
                reply: RespValue::Simple("PONG".into()),
                io_ops: 0,
                bytes_returned: 4,
                from_memtable: true,
            }),
            // Replication control commands are answered by the server's
            // replication handle when one is attached; a bare engine has no
            // replicas, so WAIT reports zero acks and REPLCONF is accepted.
            Command::Wait { .. } => Ok(ExecOutcome {
                reply: RespValue::Integer(0),
                io_ops: 0,
                bytes_returned: 8,
                from_memtable: true,
            }),
            Command::ReplConf { .. } => Ok(ExecOutcome {
                reply: RespValue::ok(),
                io_ops: 0,
                bytes_returned: 2,
                from_memtable: true,
            }),
            // PSYNC only makes sense on a connection the server switched
            // into replica-streaming mode; reaching the engine means no
            // replication plane is attached here.
            Command::PSync { .. } => Ok(ExecOutcome {
                reply: RespValue::Error("ERR PSYNC requires a replication-enabled leader".into()),
                io_ops: 0,
                bytes_returned: 0,
                from_memtable: true,
            }),
            // Consistency is per-connection state owned by the server's read
            // routing; a bare engine acknowledges and stays leader-local.
            Command::Consistency { .. } => Ok(ExecOutcome {
                reply: RespValue::ok(),
                io_ops: 0,
                bytes_returned: 2,
                from_memtable: true,
            }),
            // Observability commands are answered by the server front end
            // (which owns the registry snapshot and per-server slowlog);
            // a bare engine has nothing to report.
            Command::Info { .. } | Command::Slowlog { .. } | Command::Metrics => Ok(ExecOutcome {
                reply: RespValue::Error(
                    "ERR observability commands are served by the RESP front end".into(),
                ),
                io_ops: 0,
                bytes_returned: 0,
                from_memtable: true,
            }),
            Command::Get { key } => {
                let r = db.get(&Self::string_key(tenant, key), now)?;
                Ok(Self::bulk_outcome(r))
            }
            Command::Set {
                key,
                value,
                ttl_secs,
            } => {
                let expires = ttl_secs.map(|s| now + s * 1_000_000);
                db.put(&Self::string_key(tenant, key), value, expires, now)?;
                Ok(ExecOutcome {
                    reply: RespValue::ok(),
                    io_ops: 0,
                    bytes_returned: 2,
                    from_memtable: true,
                })
            }
            Command::Del { keys } => {
                let mut removed = 0i64;
                let mut io = 0u32;
                for key in keys {
                    let sk = Self::string_key(tenant, key);
                    let r = db.get(&sk, now)?;
                    io += r.io_ops;
                    if r.value.is_some() {
                        db.delete(&sk, now)?;
                        removed += 1;
                    }
                }
                Ok(ExecOutcome {
                    reply: RespValue::Integer(removed),
                    io_ops: io,
                    bytes_returned: 8,
                    from_memtable: false,
                })
            }
            Command::Exists { key } => {
                let r = db.get(&Self::string_key(tenant, key), now)?;
                Ok(ExecOutcome {
                    reply: RespValue::Integer(i64::from(r.value.is_some())),
                    io_ops: r.io_ops,
                    bytes_returned: 8,
                    from_memtable: r.from_memtable,
                })
            }
            Command::Expire { key, secs } => {
                let sk = Self::string_key(tenant, key);
                let r = db.get(&sk, now)?;
                match r.value {
                    None => Ok(ExecOutcome {
                        reply: RespValue::Integer(0),
                        io_ops: r.io_ops,
                        bytes_returned: 8,
                        from_memtable: r.from_memtable,
                    }),
                    Some(value) => {
                        db.put(&sk, &value, Some(now + secs * 1_000_000), now)?;
                        Ok(ExecOutcome {
                            reply: RespValue::Integer(1),
                            io_ops: r.io_ops,
                            bytes_returned: 8,
                            from_memtable: r.from_memtable,
                        })
                    }
                }
            }
            Command::HSet { key, pairs } => {
                for (field, value) in pairs {
                    db.put(&Self::hash_field_key(tenant, key, field), value, None, now)?;
                }
                Ok(ExecOutcome {
                    reply: RespValue::Integer(pairs.len() as i64),
                    io_ops: 0,
                    bytes_returned: 8,
                    from_memtable: true,
                })
            }
            Command::HGet { key, field } => {
                let r = db.get(&Self::hash_field_key(tenant, key, field), now)?;
                Ok(Self::bulk_outcome(r))
            }
            Command::HDel { key, fields } => {
                let mut removed = 0i64;
                let mut io = 0u32;
                for field in fields {
                    let fk = Self::hash_field_key(tenant, key, field);
                    let r = db.get(&fk, now)?;
                    io += r.io_ops;
                    if r.value.is_some() {
                        db.delete(&fk, now)?;
                        removed += 1;
                    }
                }
                Ok(ExecOutcome {
                    reply: RespValue::Integer(removed),
                    io_ops: io,
                    bytes_returned: 8,
                    from_memtable: false,
                })
            }
            Command::HLen { key } => {
                let (pairs, io) = db.scan_prefix(&Self::hash_prefix(tenant, key), now)?;
                Ok(ExecOutcome {
                    reply: RespValue::Integer(pairs.len() as i64),
                    io_ops: io,
                    bytes_returned: 8,
                    from_memtable: false,
                })
            }
            Command::HGetAll { key } => {
                let prefix = Self::hash_prefix(tenant, key);
                let (pairs, io) = db.scan_prefix(&prefix, now)?;
                let mut items = Vec::with_capacity(pairs.len() * 2);
                let mut bytes = 0usize;
                for (k, v) in pairs {
                    let field = Bytes::copy_from_slice(&k[prefix.len()..]);
                    bytes += field.len() + v.len();
                    items.push(RespValue::Bulk(Some(field)));
                    items.push(RespValue::Bulk(Some(v)));
                }
                Ok(ExecOutcome {
                    reply: RespValue::array(items),
                    io_ops: io,
                    bytes_returned: bytes,
                    from_memtable: false,
                })
            }
        }
    }

    fn bulk_outcome(r: ReadResult) -> ExecOutcome {
        let bytes_returned = r.value.as_ref().map(Bytes::len).unwrap_or(0);
        ExecOutcome {
            reply: RespValue::Bulk(r.value),
            io_ops: r.io_ops,
            bytes_returned,
            from_memtable: r.from_memtable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abase_util::TestDir;

    fn engine(tag: &str) -> (TestDir, TableEngine) {
        let dir = TestDir::new(tag);
        let e = TableEngine::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        (dir, e)
    }

    fn set(key: &str, value: &str, ttl: Option<u64>) -> Command {
        Command::Set {
            key: Bytes::copy_from_slice(key.as_bytes()),
            value: Bytes::copy_from_slice(value.as_bytes()),
            ttl_secs: ttl,
        }
    }

    fn get(key: &str) -> Command {
        Command::Get {
            key: Bytes::copy_from_slice(key.as_bytes()),
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let (_d, e) = engine("setget");
        e.execute(1, &set("k", "v", None), 0).unwrap();
        let out = e.execute(1, &get("k"), 0).unwrap();
        assert_eq!(out.reply, RespValue::bulk("v"));
        assert_eq!(out.bytes_returned, 1);
    }

    #[test]
    fn tenants_are_namespaced() {
        let (_d, e) = engine("ns");
        e.execute(1, &set("k", "tenant1", None), 0).unwrap();
        e.execute(2, &set("k", "tenant2", None), 0).unwrap();
        assert_eq!(
            e.execute(1, &get("k"), 0).unwrap().reply,
            RespValue::bulk("tenant1")
        );
        assert_eq!(
            e.execute(2, &get("k"), 0).unwrap().reply,
            RespValue::bulk("tenant2")
        );
    }

    #[test]
    fn ttl_expires_via_virtual_time() {
        let (_d, e) = engine("ttl");
        e.execute(1, &set("k", "v", Some(30)), 0).unwrap();
        assert_eq!(
            e.execute(1, &get("k"), 29_999_999).unwrap().reply,
            RespValue::bulk("v")
        );
        assert_eq!(
            e.execute(1, &get("k"), 30_000_001).unwrap().reply,
            RespValue::Bulk(None)
        );
    }

    #[test]
    fn expire_command_rearms_ttl() {
        let (_d, e) = engine("expire");
        e.execute(1, &set("k", "v", None), 0).unwrap();
        let out = e
            .execute(
                1,
                &Command::Expire {
                    key: "k".into(),
                    secs: 10,
                },
                0,
            )
            .unwrap();
        assert_eq!(out.reply, RespValue::Integer(1));
        assert_eq!(
            e.execute(1, &get("k"), 11_000_000).unwrap().reply,
            RespValue::Bulk(None)
        );
        // EXPIRE on a missing key returns 0.
        let out = e
            .execute(
                1,
                &Command::Expire {
                    key: "nope".into(),
                    secs: 10,
                },
                0,
            )
            .unwrap();
        assert_eq!(out.reply, RespValue::Integer(0));
    }

    #[test]
    fn del_and_exists() {
        let (_d, e) = engine("del");
        e.execute(1, &set("a", "1", None), 0).unwrap();
        e.execute(1, &set("b", "2", None), 0).unwrap();
        let out = e
            .execute(
                1,
                &Command::Del {
                    keys: vec!["a".into(), "b".into(), "missing".into()],
                },
                0,
            )
            .unwrap();
        assert_eq!(out.reply, RespValue::Integer(2));
        let out = e
            .execute(1, &Command::Exists { key: "a".into() }, 0)
            .unwrap();
        assert_eq!(out.reply, RespValue::Integer(0));
    }

    #[test]
    fn hash_commands_roundtrip() {
        let (_d, e) = engine("hash");
        e.execute(
            1,
            &Command::HSet {
                key: "h".into(),
                pairs: vec![
                    ("f1".into(), "v1".into()),
                    ("f2".into(), "v2".into()),
                    ("f3".into(), "v3".into()),
                ],
            },
            0,
        )
        .unwrap();
        let out = e.execute(1, &Command::HLen { key: "h".into() }, 0).unwrap();
        assert_eq!(out.reply, RespValue::Integer(3));
        let out = e
            .execute(
                1,
                &Command::HGet {
                    key: "h".into(),
                    field: "f2".into(),
                },
                0,
            )
            .unwrap();
        assert_eq!(out.reply, RespValue::bulk("v2"));
        let out = e
            .execute(1, &Command::HGetAll { key: "h".into() }, 0)
            .unwrap();
        match out.reply {
            RespValue::Array(Some(items)) => assert_eq!(items.len(), 6),
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(out.bytes_returned, 3 * 4); // 3 × (2-byte field + 2-byte value)
        let out = e
            .execute(
                1,
                &Command::HDel {
                    key: "h".into(),
                    fields: vec!["f1".into(), "f3".into()],
                },
                0,
            )
            .unwrap();
        assert_eq!(out.reply, RespValue::Integer(2));
        let out = e.execute(1, &Command::HLen { key: "h".into() }, 0).unwrap();
        assert_eq!(out.reply, RespValue::Integer(1));
    }

    #[test]
    fn hgetall_isolated_between_hash_keys_and_tenants() {
        let (_d, e) = engine("hiso");
        e.execute(
            1,
            &Command::HSet {
                key: "h1".into(),
                pairs: vec![("f".into(), "t1h1".into())],
            },
            0,
        )
        .unwrap();
        e.execute(
            1,
            &Command::HSet {
                key: "h2".into(),
                pairs: vec![("f".into(), "t1h2".into())],
            },
            0,
        )
        .unwrap();
        e.execute(
            2,
            &Command::HSet {
                key: "h1".into(),
                pairs: vec![("f".into(), "t2h1".into())],
            },
            0,
        )
        .unwrap();
        let out = e
            .execute(1, &Command::HGetAll { key: "h1".into() }, 0)
            .unwrap();
        match out.reply {
            RespValue::Array(Some(items)) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[1], RespValue::bulk("t1h1"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn io_ops_reported_after_flush() {
        let (_d, e) = engine("io");
        e.execute(1, &set("k", "v", None), 0).unwrap();
        e.db().flush().unwrap();
        let out = e.execute(1, &get("k"), 0).unwrap();
        assert!(out.io_ops >= 1, "SST read must report I/O");
        assert!(!out.from_memtable);
    }

    #[test]
    fn ping_is_free() {
        let (_d, e) = engine("ping");
        let out = e.execute(9, &Command::Ping, 0).unwrap();
        assert_eq!(out.reply, RespValue::Simple("PONG".into()));
        assert_eq!(out.io_ops, 0);
    }
}
