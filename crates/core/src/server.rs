//! A TCP server speaking RESP2 over the table engine.
//!
//! This is the network front end a single DataNode exposes: clients connect
//! with any Redis client, issue the supported command subset, and are
//! namespaced by a tenant id chosen at connect time via `AUTH <tenant>`
//! (tenant 0 until authenticated). Connections are served by a small pool of
//! epoll event-loop workers (see [`crate::event_loop`]) with real pipelining
//! — one readable event drains every complete frame, executes the batch in
//! wire order, and answers with one vectored write — so 10k mostly-idle
//! clients cost registered fds, not OS threads. The legacy
//! thread-per-connection model survives behind
//! [`FrontEndConfig::thread_per_conn`] as the measurable baseline.
//!
//! When the node's engine fronts a replica-group leader, attach the group via
//! [`RespServer::with_replication`]: every RESP write is committed under the
//! group's write concern before `+OK` reaches the client (an unsatisfiable
//! concern turns the reply into an error), and clients wanting an explicit
//! fence issue Redis-style `WAIT numreplicas timeout-ms` — the server blocks
//! until that many followers acked the connection's latest LSN. `REPLCONF`
//! handshake chatter is accepted for client compatibility.
//!
//! Connections also carry a **read-consistency level** (`CONSISTENCY
//! eventual|readyourwrites|leader`, default `leader`): with a replication
//! plane attached, `eventual` GETs are served by follower replicas and
//! `readyourwrites` GETs by any replica that has applied the connection's
//! last acked write LSN (the session fence the server tracks per write) —
//! only `leader` reads pin to the leader replica.

use crate::conn::FrontEndStats;
use crate::engine::TableEngine;
use crate::event_loop::{self, FrontEndConfig, Shutdown, ShutdownHandle};
use crate::metrics;
use crate::types::ConsistencyLevel;
use abase_obs::{SlowLog, Span, Stage, Timer};
use abase_proto::{Command, RespValue, SlowlogSub};
use abase_replication::{
    socket, ReadConsistency, RemoteFollowerState, ReplicaGroup, ReplicaSource,
};
use abase_util::lockrank::RankedMutex;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The cap substituted when a client sends `WAIT n 0` ("no limit"): the
/// server never parks a connection forever on a dead follower, it parks it
/// for at most this long and replies with the acks reached.
pub const WAIT_UNBOUNDED_CAP: Duration = Duration::from_secs(30);

/// Replication identity as reported by `INFO replication` — built by the
/// attached replication plane on a leader, or by a provider closure a
/// follower-mode server installs via [`RespServer::with_repl_info`] (the
/// follower's pump loop owns the link state the server cannot see).
#[derive(Debug, Clone)]
pub struct ReplInfo {
    /// `leader`, `follower`, or `none`.
    pub role: &'static str,
    /// Highest LSN durably applied locally (leader: the log head; follower:
    /// what the replication stream has applied).
    pub last_lsn: u64,
    /// The leader's address, from a follower's point of view.
    pub leader_addr: Option<String>,
    /// Replication-link status: `up`, `down`, or `n/a` (no link to keep).
    pub link_status: &'static str,
    /// Leader side: `(replica id, acked LSN, connected)` per known follower.
    pub followers: Vec<(u32, u64, bool)>,
}

impl Default for ReplInfo {
    fn default() -> Self {
        Self {
            role: "none",
            last_lsn: 0,
            leader_addr: None,
            link_status: "n/a",
            followers: Vec::new(),
        }
    }
}

/// What `WAIT` needs from a replication plane. Implemented for a locked
/// [`ReplicaGroup`]; custom planes (tests, future geo-replication) can
/// implement it too.
pub trait ReplicationControl: Send + Sync {
    /// The leader's current LSN (what a `WAIT` fences on), or `None` when
    /// the group has no live leader — the caller must surface that rather
    /// than fence on a made-up LSN.
    fn last_lsn(&self) -> Option<u64>;
    /// Ship the log until `numreplicas` followers ack `lsn` or `timeout`
    /// passes; returns how many followers have acked.
    fn wait_for(&self, lsn: u64, numreplicas: usize, timeout: Duration) -> Result<usize, String>;
    /// Enforce the group's write concern for everything the leader has
    /// written so far (called after each RESP write, before the client sees
    /// its reply). Returns the LSN the commit fenced on — a single
    /// lock-coherent bound covering the caller's write, which the connection
    /// adopts as its `readyourwrites` session fence (it may include
    /// concurrent writers' later LSNs: a higher fence is always safe, just
    /// conservative for follower routing). Errors when the concern cannot
    /// be met.
    fn commit_written(&self) -> Result<u64, String>;
    /// Serve a consistency-routed read of a storage-level key: `Eventual`
    /// round-robins over caught-up replicas, `ReadYourWrites(lsn)` over
    /// replicas at/above the fence, `Leader` pins to the leader. Returns the
    /// value (if any) and the serving replica's LSN lag at read time.
    fn read_routed(
        &self,
        key: &[u8],
        consistency: ReadConsistency,
        now: u64,
    ) -> Result<(Option<Vec<u8>>, u64), String>;

    /// Followers (local and remote) whose durably applied LSN reaches `lsn`
    /// — the non-blocking half of `WAIT`. Unlike [`ReplicationControl::
    /// wait_for`], this must answer even with no live leader: a session with
    /// no fence to enforce is owed a count, not a refusal.
    fn acked_followers(&self, lsn: u64) -> usize {
        let _ = lsn;
        0
    }

    /// The leader-side source a `PSYNC` replica connection streams from.
    /// `None` when this node does not lead a replica group (followers and
    /// unreplicated nodes refuse PSYNC).
    fn replica_source(&self) -> Option<ReplicaSource> {
        None
    }

    /// Register (or re-register after a reconnect) a remote follower; its
    /// shared ack state feeds the same accounting `WAIT` reads. The second
    /// element is the registration generation the connection passes to
    /// [`RemoteFollowerState::disconnect`] at teardown.
    fn register_remote(&self, id: u32) -> Result<(Arc<RemoteFollowerState>, u64), String> {
        Err(format!(
            "this replication plane does not accept remote followers (replica {id})"
        ))
    }

    /// What `INFO replication` reports for this plane. The default describes
    /// a leader with no per-follower detail; planes that know more override.
    fn repl_info(&self) -> ReplInfo {
        ReplInfo {
            role: "leader",
            last_lsn: self.last_lsn().unwrap_or(0),
            ..ReplInfo::default()
        }
    }
}

impl ReplicationControl for RankedMutex<ReplicaGroup> {
    fn last_lsn(&self) -> Option<u64> {
        self.lock().leader_db().ok().map(|db| db.last_seq())
    }

    fn wait_for(&self, lsn: u64, numreplicas: usize, timeout: Duration) -> Result<usize, String> {
        let deadline = Instant::now() + timeout;
        drive_followers(self, lsn, numreplicas, deadline)
    }

    fn acked_followers(&self, lsn: u64) -> usize {
        self.lock().followers_acked(lsn)
    }

    fn replica_source(&self) -> Option<ReplicaSource> {
        let group = self.lock();
        let leader = group.leader()?;
        Some(ReplicaSource {
            db: group.leader_db().ok()?,
            wal_dir: group.replica_dir(leader).ok()?,
        })
    }

    fn register_remote(&self, id: u32) -> Result<(Arc<RemoteFollowerState>, u64), String> {
        self.lock()
            .register_remote_follower(id)
            .map_err(|e| e.to_string())
    }

    fn repl_info(&self) -> ReplInfo {
        let group = self.lock();
        let leader = group.leader();
        let mut followers: Vec<(u32, u64, bool)> = group
            .members()
            .into_iter()
            .filter(|&id| Some(id) != leader)
            .map(|id| (id, group.acked_lsn(id).unwrap_or(0), group.is_alive(id)))
            .collect();
        for (id, lsn, connected) in group.remote_followers() {
            followers.push((id, lsn, connected));
        }
        ReplInfo {
            role: "leader",
            last_lsn: group.leader_db().map(|db| db.last_seq()).unwrap_or(0),
            leader_addr: None,
            link_status: "n/a",
            followers,
        }
    }

    fn read_routed(
        &self,
        key: &[u8],
        consistency: ReadConsistency,
        now: u64,
    ) -> Result<(Option<Vec<u8>>, u64), String> {
        let routed = self
            .lock()
            .read_routed(key, consistency, now)
            .map_err(|e| e.to_string())?;
        Ok((routed.result.value.map(|v| v.to_vec()), routed.lag))
    }

    fn commit_written(&self) -> Result<u64, String> {
        // One lock acquisition covers both reading the fence LSN and the
        // concern arithmetic, so a concurrent writer cannot slide the fence.
        let (lsn, need, timeout) = {
            let group = self.lock();
            let lsn = group.leader_db().map_err(|e| e.to_string())?.last_seq();
            if group.write_concern() == abase_replication::WriteConcern::Async {
                return Ok(lsn);
            }
            (lsn, group.commit_need(), group.config().wait_timeout)
        };
        // The leader itself always counts toward the concern.
        let follower_need = need.saturating_sub(1);
        let acked = drive_followers(self, lsn, follower_need, Instant::now() + timeout)?;
        if acked >= follower_need {
            Ok(lsn)
        } else {
            Err(format!(
                "write concern unsatisfied: {}/{} acks",
                acked + 1,
                need
            ))
        }
    }
}

/// Pump a locked group until `numreplicas` followers ack `lsn` or `deadline`
/// passes, returning the follower-ack count reached. Only bounded work runs
/// under the lock: when a follower needs a full resync, the checkpoint copy
/// streams with the group *unlocked*, so other connections' `WAIT`/commit on
/// other keys proceed during the transfer.
fn drive_followers(
    group: &RankedMutex<ReplicaGroup>,
    lsn: u64,
    numreplicas: usize,
    deadline: Instant,
) -> Result<usize, String> {
    loop {
        let status = { group.lock().advance(lsn) }.map_err(|e| e.to_string())?;
        if status.followers_acked >= numreplicas {
            return Ok(status.followers_acked);
        }
        if let Some(&id) = status.needs_resync.first() {
            let ticket = { group.lock().begin_resync(id) }.map_err(|e| e.to_string())?;
            // The long copy happens without the lock.
            let info = ticket.copy().map_err(|e| e.to_string())?;
            match group.lock().complete_resync(ticket, info) {
                Ok(()) => {}
                // Leadership moved mid-copy: loop and retry from the top.
                Err(abase_replication::Error::ResyncSuperseded) => {}
                Err(e) => return Err(e.to_string()),
            }
            continue;
        }
        if Instant::now() >= deadline {
            return Ok(status.followers_acked);
        }
        // This runs on an offload thread, never an event-loop worker, and
        // the replication plane has no wakeup primitive to wait on yet.
        #[allow(clippy::disallowed_methods)]
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// A running RESP server.
pub struct RespServer {
    engine: Arc<TableEngine>,
    listener: TcpListener,
    shutdown: Arc<Shutdown>,
    /// Serving model, worker count, max-clients cap, idle timeout.
    front_end: FrontEndConfig,
    /// Per-server connection accounting (`INFO`, the max-clients cap).
    stats: Arc<FrontEndStats>,
    /// Virtual time source: servers outside the simulator tick this from wall
    /// time; tests drive it manually.
    clock_micros: Arc<AtomicU64>,
    /// Replication plane behind `WAIT`, when this node leads a replica group.
    replication: Option<Arc<dyn ReplicationControl>>,
    /// Refuse client writes (a follower replica's server: its store is
    /// written exclusively by the replication stream).
    read_only: bool,
    /// This server's SLOWLOG ring (per instance, not process-global: embedded
    /// tests run many servers in one process).
    slowlog: Arc<SlowLog>,
    /// `INFO replication` provider overriding the plane's own view — used by
    /// follower-mode servers whose link state lives in the pump loop.
    repl_info: Option<Arc<dyn Fn() -> ReplInfo + Send + Sync>>,
    /// When the server was bound (`INFO server` uptime).
    started: Instant,
}

impl RespServer {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"`) over an engine.
    pub fn bind(engine: Arc<TableEngine>, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            engine,
            listener,
            shutdown: Arc::new(Shutdown::default()),
            front_end: FrontEndConfig::default(),
            stats: Arc::new(FrontEndStats::default()),
            clock_micros: Arc::new(AtomicU64::new(0)),
            replication: None,
            read_only: false,
            slowlog: Arc::new(SlowLog::default()),
            repl_info: None,
            started: Instant::now(),
        })
    }

    /// Attach the replication plane serving `WAIT`.
    pub fn with_replication(mut self, replication: Arc<dyn ReplicationControl>) -> Self {
        self.replication = Some(replication);
        self
    }

    /// Replace the whole front-end configuration (serving model, worker
    /// count, max-clients cap, idle timeout).
    pub fn with_front_end(mut self, config: FrontEndConfig) -> Self {
        self.front_end = config;
        self
    }

    /// Event-loop worker count (clamped to 1..=16 at run time).
    pub fn io_threads(mut self, workers: usize) -> Self {
        self.front_end.workers = workers;
        self
    }

    /// Connection cap: accepts beyond it are refused with
    /// `-ERR max number of clients reached`.
    pub fn max_clients(mut self, cap: usize) -> Self {
        self.front_end.max_clients = cap;
        self
    }

    /// Evict connections idle longer than `timeout`.
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.front_end.idle_timeout = Some(timeout);
        self
    }

    /// Serve with the legacy one-OS-thread-per-connection model (the
    /// connection-scaling baseline).
    pub fn thread_per_conn(mut self) -> Self {
        self.front_end.thread_per_conn = true;
        self
    }

    /// Install the `INFO replication` provider (follower mode: the pump loop
    /// owns role, applied LSN, leader address, and link status).
    pub fn with_repl_info(mut self, provider: Arc<dyn Fn() -> ReplInfo + Send + Sync>) -> Self {
        self.repl_info = Some(provider);
        self
    }

    /// This server's SLOWLOG (shared with every connection; retune its
    /// threshold through the handle).
    pub fn slowlog(&self) -> Arc<SlowLog> {
        Arc::clone(&self.slowlog)
    }

    /// Refuse client writes with `-READONLY` (follower replicas: the store
    /// is written exclusively by the replication stream — a client write
    /// would silently diverge it from the leader).
    pub fn read_only(mut self) -> Self {
        self.read_only = true;
        self
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Handle for advancing the server's virtual clock.
    pub fn clock(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.clock_micros)
    }

    /// Handle that stops the accept loop and every event-loop worker
    /// deterministically (eventfd wakeups — no "after the next connection
    /// attempt" window).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            inner: Arc::clone(&self.shutdown),
        }
    }

    /// Serve connections until shut down: the event-loop worker pool by
    /// default, one thread per connection when the baseline model is
    /// configured.
    pub fn run(self) -> std::io::Result<()> {
        let io_threads = if self.front_end.thread_per_conn {
            0
        } else {
            self.front_end.workers.clamp(1, 16)
        };
        let ctx = Arc::new(ConnCtx {
            engine: self.engine,
            clock: self.clock_micros,
            replication: self.replication,
            read_only: self.read_only,
            slowlog: self.slowlog,
            repl_info: self.repl_info,
            started: self.started,
            stats: self.stats,
            io_threads,
        });
        event_loop::run_front_end(self.listener, ctx, self.front_end, self.shutdown)
    }
}

/// Per-connection session state: tenant namespace, read-consistency level
/// (defaults to [`ConsistencyLevel::Leader`]), and the LSN fence of the
/// session's last acked write.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ConnState {
    tenant: u32,
    /// RU counters for `tenant`, resolved on first charge and reused until
    /// the tenant changes (AUTH) — keeps the family probe and the tenant
    /// label allocation off the per-command path.
    ru_metrics: Option<(
        u32,
        &'static abase_obs::Counter,
        &'static abase_obs::Counter,
    )>,
    consistency: ConsistencyLevel,
    /// Highest LSN this connection's writes reached — what a
    /// `readyourwrites` read fences on, and the fence `WAIT` enforces.
    session_lsn: u64,
    /// `REPLCONF replica-id` announced by a connecting follower.
    pub(crate) replica_id: Option<u32>,
    /// `REPLCONF listening-port` announced by a connecting follower (its own
    /// RESP port — handshake metadata for observability/redirects).
    listening_port: Option<u16>,
}

/// Everything one connection's dispatcher needs, bundled so the serving path
/// has a single context argument (shared across workers behind one `Arc`).
pub(crate) struct ConnCtx {
    pub(crate) engine: Arc<TableEngine>,
    pub(crate) clock: Arc<AtomicU64>,
    pub(crate) replication: Option<Arc<dyn ReplicationControl>>,
    pub(crate) read_only: bool,
    pub(crate) slowlog: Arc<SlowLog>,
    pub(crate) repl_info: Option<Arc<dyn Fn() -> ReplInfo + Send + Sync>>,
    pub(crate) started: Instant,
    pub(crate) stats: Arc<FrontEndStats>,
    /// Event-loop worker count `INFO server` reports (0 in the
    /// thread-per-connection baseline).
    pub(crate) io_threads: usize,
}

/// Count/latency handles for a connection's last-seen command label. Labels
/// are `&'static str`s from a bounded set and workloads repeat commands, so
/// one pointer compare replaces two family probes on almost every op.
pub(crate) type CmdMetricsCache = Option<(
    &'static str,
    &'static abase_obs::Counter,
    &'static abase_obs::Histo,
)>;

/// Bounded-cardinality command label for the per-command metric families:
/// the parsed command's canonical name, `AUTH` for the connection-layer auth
/// frame, `INVALID` for anything unparseable (client-chosen strings must not
/// mint label values).
pub(crate) fn command_label(
    value: &RespValue,
    command: &Result<Command, abase_proto::ParseCommandError>,
) -> &'static str {
    if let Ok(c) = command {
        return c.name();
    }
    if let RespValue::Array(Some(items)) = value {
        if let Some(RespValue::Bulk(Some(name))) = items.first() {
            if name.eq_ignore_ascii_case(b"AUTH") {
                return "AUTH";
            }
        }
    }
    "INVALID"
}

/// The frame as printable argv for a SLOWLOG entry (lossy UTF-8, long
/// arguments truncated — the log keeps shapes, not payloads).
pub(crate) fn argv_strings(value: &RespValue) -> Vec<String> {
    const MAX_ARG: usize = 128;
    let RespValue::Array(Some(items)) = value else {
        return vec!["<non-array frame>".into()];
    };
    items
        .iter()
        .map(|item| match item {
            RespValue::Bulk(Some(b)) => {
                let shown = String::from_utf8_lossy(&b[..b.len().min(MAX_ARG)]).into_owned();
                if b.len() > MAX_ARG {
                    format!("{shown}... ({} bytes)", b.len())
                } else {
                    shown
                }
            }
            other => format!("{other:?}"),
        })
        .collect()
}

/// Serve a `PSYNC` replica connection on the leader. The group lock is held
/// only to clone out the [`ReplicaSource`] and register the follower —
/// streaming (and any checkpoint ship) runs with the group unlocked, exactly
/// like the staged resync copies, so `WAIT`/commit on other connections flow
/// freely for the duration.
pub(crate) fn serve_replica_connection(
    mut stream: TcpStream,
    leftover: Vec<u8>,
    position: Option<(u64, u64)>,
    replica_id: Option<u32>,
    repl: &dyn ReplicationControl,
) -> std::io::Result<()> {
    let Some(source) = repl.replica_source() else {
        stream.write_all(
            &RespValue::Error("ERR PSYNC: this node does not lead a replica group".into())
                .to_bytes(),
        )?;
        return Ok(());
    };
    // Followers that skip `REPLCONF replica-id` get a server-assigned id
    // well clear of the cluster's node-id space.
    let id = replica_id.unwrap_or_else(socket::anonymous_replica_id);
    let (remote, generation) = match repl.register_remote(id) {
        Ok(registered) => registered,
        Err(e) => {
            stream.write_all(&RespValue::Error(format!("ERR replication: {e}")).to_bytes())?;
            return Ok(());
        }
    };
    let tag = format!("replica-{id}");
    let result = socket::serve_replica_stream(
        stream, leftover, &source, &remote, generation, position, &tag,
    );
    // Generation-guarded: if the follower already reconnected (a newer
    // registration owns this state), this stale connection's death must not
    // mark the live one down.
    remote.disconnect(generation);
    result
}

pub(crate) fn dispatch(
    value: &RespValue,
    command: Result<Command, abase_proto::ParseCommandError>,
    state: &mut ConnState,
    span: &mut Span,
    ctx: &ConnCtx,
) -> RespValue {
    let engine = &*ctx.engine;
    let clock = &*ctx.clock;
    let replication = ctx.replication.as_deref();
    let read_only = ctx.read_only;
    // AUTH is handled at the connection layer (it selects the tenant).
    if let RespValue::Array(Some(items)) = value {
        if items.len() == 2 {
            if let (RespValue::Bulk(Some(name)), RespValue::Bulk(Some(arg))) =
                (&items[0], &items[1])
            {
                if name.eq_ignore_ascii_case(b"AUTH") {
                    return match std::str::from_utf8(arg).ok().and_then(|s| s.parse().ok()) {
                        Some(id) => {
                            state.tenant = id;
                            RespValue::ok()
                        }
                        None => RespValue::Error("ERR AUTH expects a numeric tenant id".into()),
                    };
                }
            }
        }
    }
    let command = match command {
        Ok(c) => c,
        Err(e) => return RespValue::Error(format!("ERR {e}")),
    };
    // CONSISTENCY is connection state, like AUTH.
    if let Command::Consistency { level } = &command {
        return match level {
            None => RespValue::bulk(state.consistency.name()),
            Some(raw) => match std::str::from_utf8(raw)
                .ok()
                .and_then(ConsistencyLevel::parse)
            {
                Some(level) => {
                    state.consistency = level;
                    RespValue::ok()
                }
                None => RespValue::Error(
                    "ERR CONSISTENCY expects eventual, readyourwrites, or leader".into(),
                ),
            },
        };
    }
    // REPLCONF is connection state too: a connecting follower announces its
    // listening port and replica id before PSYNC; `ack` frames landing here
    // (outside a replica stream) are acknowledged and ignored.
    if let Command::ReplConf { .. } = &command {
        if let Some(port) = command.replconf_option("listening-port") {
            state.listening_port = Some(port as u16);
        }
        if let Some(id) = command.replconf_option("replica-id") {
            state.replica_id = Some(id as u32);
        }
        return RespValue::ok();
    }
    // Observability commands are served by the front end: it owns the
    // registry view, the per-server SLOWLOG, and the replication identity.
    match &command {
        Command::Info { section } => return info_reply(section.as_deref(), ctx),
        Command::Slowlog { sub } => return slowlog_reply(sub, &ctx.slowlog),
        Command::Metrics => return RespValue::bulk(abase_obs::render()),
        _ => {}
    }
    // WAIT is answered by the replication plane when one is attached; the
    // engine's fallback (0 replicas acked) covers unreplicated nodes.
    if let (
        Command::Wait {
            numreplicas,
            timeout_ms,
        },
        Some(repl),
    ) = (&command, replication)
    {
        span.enter(Stage::ReplicationWait);
        let want = *numreplicas as usize;
        // Redis semantics: WAIT fences on the *connection's* last write, not
        // the global leader LSN — a read-only session must never block on
        // (or fail because of) other clients' writes. With no fence, or one
        // the followers already acked, the current count is the answer,
        // live leader or not.
        let fence = state.session_lsn;
        let acked = repl.acked_followers(fence);
        if fence == 0 || acked >= want {
            return RespValue::Integer(acked as i64);
        }
        // There is replication left to drive, which needs a live leader —
        // fencing on a fabricated LSN would report phantom acks.
        if repl.last_lsn().is_none() {
            return RespValue::Error("ERR replication: no live leader".into());
        }
        // `timeout 0` is documented as "no limit"; the server maps it to its
        // own cap instead of the historical single non-blocking pass (and
        // instead of parking the connection forever on a dead follower).
        let timeout = if *timeout_ms == 0 {
            WAIT_UNBOUNDED_CAP
        } else {
            Duration::from_millis(*timeout_ms)
        };
        let wait_timer = Timer::start();
        let reply = match repl.wait_for(fence, want, timeout) {
            Ok(acked) => RespValue::Integer(acked as i64),
            Err(e) => RespValue::Error(format!("ERR replication: {e}")),
        };
        wait_timer.observe(&metrics::WAIT_MICROS);
        return reply;
    }
    let now = clock.load(Ordering::Relaxed);
    // With a replication plane attached, non-leader GETs route to a replica
    // chosen per the connection's consistency level instead of always
    // reading the leader's engine.
    if let (Command::Get { key }, Some(repl)) = (&command, replication) {
        if state.consistency != ConsistencyLevel::Leader {
            let consistency = match state.consistency {
                ConsistencyLevel::Eventual => ReadConsistency::Eventual,
                ConsistencyLevel::ReadYourWrites => {
                    ReadConsistency::ReadYourWrites(state.session_lsn)
                }
                ConsistencyLevel::Leader => unreachable!("guarded above"),
            };
            let storage_key = TableEngine::storage_string_key(state.tenant, key);
            span.enter(Stage::Engine);
            return match repl.read_routed(&storage_key, consistency, now) {
                Ok((value, _lag)) => {
                    if abase_obs::enabled() {
                        let bytes = value.as_ref().map_or(0, |v| v.len());
                        tenant_ru(state).0.add(ru_units(bytes));
                    }
                    RespValue::Bulk(value.map(bytes::Bytes::from))
                }
                Err(e) => RespValue::Error(format!("ERR replication: {e}")),
            };
        }
    }
    // A follower replica's store is written only by the replication stream;
    // a client write here would silently diverge it from the leader.
    if read_only && command.is_write() {
        return RespValue::Error("READONLY You can't write against a read only replica.".into());
    }
    span.enter(Stage::Engine);
    match engine.execute(state.tenant, &command, now) {
        Ok(outcome) => {
            // §4.1 RU charging at the serving edge, split per tenant: writes
            // by payload size, reads by actual bytes returned.
            if abase_obs::enabled() {
                let (read_ru, write_ru) = tenant_ru(state);
                if command.is_write() {
                    write_ru.add(ru_units(command.payload_size()));
                } else {
                    read_ru.add(ru_units(outcome.bytes_returned));
                }
            }
            // Writes are acknowledged only once the replica group's write
            // concern holds; an unsatisfiable concern is the client's error.
            if command.is_write() {
                if let Some(repl) = replication {
                    span.enter(Stage::ReplicationWait);
                    let wait_timer = Timer::start();
                    // The committed LSN becomes the session's read fence
                    // (lock-coherent with the concern check, so it covers
                    // this write without racing a later last_lsn read).
                    let committed = repl.commit_written();
                    wait_timer.observe(&metrics::WAIT_MICROS);
                    match committed {
                        Ok(lsn) => state.session_lsn = state.session_lsn.max(lsn),
                        Err(e) => {
                            return RespValue::Error(format!("ERR replication: {e}"));
                        }
                    }
                }
            }
            outcome.reply
        }
        Err(e) => RespValue::Error(format!("ERR storage: {e}")),
    }
}

/// RUs charged for `bytes` moved: the paper's §4.1 unit is 2 KB, with a
/// one-RU floor (integer RUs are enough at metric granularity).
fn ru_units(bytes: usize) -> u64 {
    bytes.max(1).div_ceil(2048) as u64
}

/// `(read, write)` RU counters for the connection's tenant, cached in the
/// session state so steady-state charging is one relaxed atomic add instead
/// of a label allocation plus two family probes per command.
fn tenant_ru(state: &mut ConnState) -> (&'static abase_obs::Counter, &'static abase_obs::Counter) {
    match state.ru_metrics {
        Some((tenant, read, write)) if tenant == state.tenant => (read, write),
        _ => {
            let label = state.tenant.to_string();
            let read = metrics::TENANT_READ_RU.with(&label);
            let write = metrics::TENANT_WRITE_RU.with(&label);
            state.ru_metrics = Some((state.tenant, read, write));
            (read, write)
        }
    }
}

/// The replication identity `INFO` reports: the installed provider wins
/// (follower mode), else the attached plane's view (leader), else none.
fn current_repl_info(ctx: &ConnCtx) -> ReplInfo {
    if let Some(provider) = &ctx.repl_info {
        return provider();
    }
    if let Some(repl) = &ctx.replication {
        return repl.repl_info();
    }
    ReplInfo::default()
}

/// Build the `INFO [section]` reply. Sections mirror Redis: `server`,
/// `replication`, `keyspace`, `stats`, `latency`; no argument (or `all` /
/// `default` / `everything`) emits them all, an unknown section an empty
/// bulk string.
fn info_reply(section: Option<&[u8]>, ctx: &ConnCtx) -> RespValue {
    let section = section.map(|s| s.to_ascii_lowercase());
    let wanted = |name: &str| match section.as_deref() {
        None | Some(b"all") | Some(b"default") | Some(b"everything") => true,
        Some(s) => s == name.as_bytes(),
    };
    let info = current_repl_info(ctx);
    let mut out = String::new();
    if wanted("server") {
        out.push_str("# Server\r\n");
        out.push_str(&format!("role:{}\r\n", info.role));
        out.push_str(&format!(
            "uptime_in_seconds:{}\r\n",
            ctx.started.elapsed().as_secs()
        ));
        out.push_str(&format!(
            "connected_clients:{}\r\n",
            ctx.stats.open.load(Ordering::Relaxed).max(0)
        ));
        out.push_str(&format!("io_threads:{}\r\n", ctx.io_threads));
        out.push_str(&format!(
            "total_connections_received:{}\r\n",
            ctx.stats.accepted.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "evicted_clients:{}\r\n",
            ctx.stats.evicted.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "metrics_enabled:{}\r\n",
            u8::from(abase_obs::enabled())
        ));
        out.push_str(&format!(
            "slowlog_threshold_micros:{}\r\n",
            ctx.slowlog.threshold_micros()
        ));
        out.push_str("\r\n");
    }
    if wanted("replication") {
        out.push_str("# Replication\r\n");
        out.push_str(&format!("role:{}\r\n", info.role));
        out.push_str(&format!("last_applied_lsn:{}\r\n", info.last_lsn));
        out.push_str(&format!(
            "leader_addr:{}\r\n",
            info.leader_addr.as_deref().unwrap_or("")
        ));
        out.push_str(&format!("link_status:{}\r\n", info.link_status));
        out.push_str(&format!(
            "connected_followers:{}\r\n",
            info.followers.iter().filter(|&&(_, _, up)| up).count()
        ));
        for (i, (id, lsn, up)) in info.followers.iter().enumerate() {
            out.push_str(&format!(
                "follower{i}:id={id},acked_lsn={lsn},connected={}\r\n",
                u8::from(*up)
            ));
        }
        out.push_str("\r\n");
    }
    if wanted("keyspace") {
        let db = ctx.engine.db();
        let stats = db.stats();
        out.push_str("# Keyspace\r\n");
        out.push_str(&format!("last_seq:{}\r\n", db.last_seq()));
        out.push_str(&format!("gets:{}\r\n", stats.gets));
        out.push_str(&format!("puts:{}\r\n", stats.puts));
        out.push_str(&format!("deletes:{}\r\n", stats.deletes));
        out.push_str(&format!("memtable_hits:{}\r\n", stats.memtable_hits));
        out.push_str(&format!("block_reads:{}\r\n", stats.block_reads));
        match db.block_cache() {
            Some(cache) => {
                let cs = cache.stats();
                out.push_str("block_cache_enabled:1\r\n");
                out.push_str(&format!("block_cache_hits:{}\r\n", cs.hits));
                out.push_str(&format!("block_cache_misses:{}\r\n", cs.misses));
                out.push_str(&format!("block_cache_hit_ratio:{:.4}\r\n", cs.hit_ratio()));
                out.push_str(&format!("block_cache_evictions:{}\r\n", cs.evictions));
                out.push_str(&format!(
                    "block_cache_resident_bytes:{}\r\n",
                    cache.resident_bytes()
                ));
                out.push_str(&format!(
                    "block_cache_pinned_bytes:{}\r\n",
                    cache.pinned_bytes()
                ));
                out.push_str(&format!(
                    "block_cache_capacity_bytes:{}\r\n",
                    cache.capacity_bytes()
                ));
            }
            None => out.push_str("block_cache_enabled:0\r\n"),
        }
        out.push_str(&format!("flushes:{}\r\n", stats.flushes));
        out.push_str(&format!("compactions:{}\r\n", stats.compactions));
        out.push_str(&format!(
            "sst_bytes_written:{}\r\n",
            stats.sst_bytes_written
        ));
        out.push_str("\r\n");
    }
    if wanted("stats") {
        out.push_str("# Stats\r\n");
        for (key, value) in abase_obs::snapshot().iter() {
            if value.fract() == 0.0 {
                out.push_str(&format!("{key}:{value:.0}\r\n"));
            } else {
                out.push_str(&format!("{key}:{value}\r\n"));
            }
        }
        out.push_str("\r\n");
    }
    if wanted("latency") {
        out.push_str("# Latency\r\n");
        for (name, histo) in abase_obs::histograms() {
            if histo.count() == 0 {
                continue;
            }
            let q = |p: f64| histo.quantile(p).unwrap_or(0.0);
            out.push_str(&format!(
                "{name}:count={},mean_us={:.0},p50_us={:.0},p99_us={:.0}\r\n",
                histo.count(),
                histo.mean(),
                q(0.5),
                q(0.99),
            ));
        }
        out.push_str("\r\n");
    }
    RespValue::bulk(out)
}

/// Answer `SLOWLOG GET/RESET/LEN` from this server's ring. `GET` entries are
/// Redis-shaped — `[id, unix-secs, micros, argv…]` — with a fifth element
/// holding the per-stage breakdown as `stage=micros` strings.
fn slowlog_reply(sub: &SlowlogSub, slowlog: &SlowLog) -> RespValue {
    match sub {
        SlowlogSub::Len => RespValue::Integer(slowlog.len() as i64),
        SlowlogSub::Reset => {
            slowlog.reset();
            RespValue::ok()
        }
        SlowlogSub::Get { count } => {
            let count = count.map(|c| c as usize).unwrap_or(10);
            let entries = slowlog
                .get(count)
                .into_iter()
                .map(|e| {
                    RespValue::Array(Some(vec![
                        RespValue::Integer(e.id as i64),
                        RespValue::Integer(e.unix_secs as i64),
                        RespValue::Integer(e.duration_micros as i64),
                        RespValue::Array(Some(
                            e.command.into_iter().map(RespValue::bulk).collect(),
                        )),
                        RespValue::Array(Some(
                            e.stages
                                .into_iter()
                                .map(|(stage, us)| RespValue::bulk(format!("{stage}={us}")))
                                .collect(),
                        )),
                    ]))
                })
                .collect();
            RespValue::Array(Some(entries))
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may sleep to sequence threads
mod tests {
    use super::*;
    use abase_lavastore::DbConfig;
    use abase_util::TestDir;
    use parking_lot::Mutex;
    use std::io::Read;
    use std::sync::atomic::AtomicBool;

    fn start_server(tag: &str) -> (TestDir, std::net::SocketAddr, Arc<AtomicU64>) {
        let dir = TestDir::new(tag);
        let engine = Arc::new(TableEngine::open(dir.path(), DbConfig::small_for_tests()).unwrap());
        let server = RespServer::bind(engine, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let clock = server.clock();
        std::thread::spawn(move || server.run());
        (dir, addr, clock)
    }

    fn roundtrip(stream: &mut TcpStream, request: &[u8]) -> RespValue {
        stream.write_all(request).unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed unexpectedly");
            buf.extend_from_slice(&chunk[..n]);
            if let Some((value, _)) = RespValue::parse(&buf).unwrap() {
                return value;
            }
        }
    }

    #[test]
    fn tcp_set_get_roundtrip() {
        let (_dir, addr, _clock) = start_server("roundtrip");
        let mut client = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(
            &mut client,
            b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n",
        );
        assert_eq!(reply, RespValue::ok());
        let reply = roundtrip(&mut client, b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n");
        assert_eq!(reply, RespValue::bulk("hello"));
        let reply = roundtrip(&mut client, b"*1\r\n$4\r\nPING\r\n");
        assert_eq!(reply, RespValue::Simple("PONG".into()));
    }

    #[test]
    fn auth_switches_tenant_namespaces() {
        let (_dir, addr, _clock) = start_server("auth");
        let mut client = TcpStream::connect(addr).unwrap();
        roundtrip(&mut client, b"*2\r\n$4\r\nAUTH\r\n$1\r\n1\r\n");
        roundtrip(&mut client, b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$2\r\nt1\r\n");
        // Switch tenant: the key is invisible.
        let reply = roundtrip(&mut client, b"*2\r\n$4\r\nAUTH\r\n$1\r\n2\r\n");
        assert_eq!(reply, RespValue::ok());
        let reply = roundtrip(&mut client, b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n");
        assert_eq!(reply, RespValue::Bulk(None));
    }

    #[test]
    fn two_concurrent_clients_are_isolated() {
        let (_dir, addr, _clock) = start_server("concurrent");
        let mut c1 = TcpStream::connect(addr).unwrap();
        let mut c2 = TcpStream::connect(addr).unwrap();
        roundtrip(&mut c1, b"*2\r\n$4\r\nAUTH\r\n$1\r\n7\r\n");
        roundtrip(&mut c2, b"*2\r\n$4\r\nAUTH\r\n$1\r\n8\r\n");
        roundtrip(&mut c1, b"*3\r\n$3\r\nSET\r\n$1\r\nx\r\n$3\r\none\r\n");
        roundtrip(&mut c2, b"*3\r\n$3\r\nSET\r\n$1\r\nx\r\n$3\r\ntwo\r\n");
        assert_eq!(
            roundtrip(&mut c1, b"*2\r\n$3\r\nGET\r\n$1\r\nx\r\n"),
            RespValue::bulk("one")
        );
        assert_eq!(
            roundtrip(&mut c2, b"*2\r\n$3\r\nGET\r\n$1\r\nx\r\n"),
            RespValue::bulk("two")
        );
    }

    #[test]
    fn pipelined_commands_in_one_write() {
        let (_dir, addr, _clock) = start_server("pipeline");
        let mut client = TcpStream::connect(addr).unwrap();
        // Two commands in a single TCP segment.
        client
            .write_all(b"*3\r\n$3\r\nSET\r\n$1\r\na\r\n$1\r\n1\r\n*2\r\n$3\r\nGET\r\n$1\r\na\r\n")
            .unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        let mut replies = Vec::new();
        while replies.len() < 2 {
            let n = client.read(&mut chunk).unwrap();
            assert!(n > 0);
            buf.extend_from_slice(&chunk[..n]);
            while let Some((value, used)) = RespValue::parse(&buf).unwrap() {
                replies.push(value);
                buf.drain(..used);
            }
        }
        assert_eq!(replies[0], RespValue::ok());
        assert_eq!(replies[1], RespValue::bulk("1"));
    }

    #[test]
    fn ttl_honours_server_clock() {
        let (_dir, addr, clock) = start_server("ttl");
        let mut client = TcpStream::connect(addr).unwrap();
        roundtrip(
            &mut client,
            b"*5\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n$2\r\nEX\r\n$2\r\n10\r\n",
        );
        assert_eq!(
            roundtrip(&mut client, b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"),
            RespValue::bulk("v")
        );
        clock.store(11_000_000, Ordering::Relaxed); // 11 s of virtual time
        assert_eq!(
            roundtrip(&mut client, b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"),
            RespValue::Bulk(None)
        );
    }

    #[test]
    fn malformed_command_gets_error_reply() {
        let (_dir, addr, _clock) = start_server("badcmd");
        let mut client = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut client, b"*1\r\n$7\r\nNOTACMD\r\n");
        assert!(matches!(reply, RespValue::Error(_)));
    }

    #[test]
    fn wait_without_replication_reports_zero() {
        let (_dir, addr, _clock) = start_server("wait0");
        let mut client = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut client, b"*3\r\n$4\r\nWAIT\r\n$1\r\n1\r\n$3\r\n100\r\n");
        assert_eq!(reply, RespValue::Integer(0));
        // REPLCONF handshake is accepted on any node.
        let reply = roundtrip(
            &mut client,
            b"*3\r\n$8\r\nREPLCONF\r\n$14\r\nlistening-port\r\n$4\r\n6380\r\n",
        );
        assert_eq!(reply, RespValue::ok());
    }

    #[test]
    fn resp_writes_enforce_group_write_concern() {
        use abase_replication::{GroupConfig, ReplicaGroup, WriteConcern};
        let dir = TestDir::new("resp-quorum");
        let group = ReplicaGroup::bootstrap(
            1,
            dir.path(),
            &[1, 2, 3],
            GroupConfig {
                write_concern: WriteConcern::Quorum,
                db: DbConfig::small_for_tests(),
                // Keep the deliberately failing quorum write below fast.
                wait_timeout: Duration::from_millis(20),
            },
        )
        .unwrap();
        let engine = Arc::new(TableEngine::from_db(group.leader_db().unwrap()));
        let group = Arc::new(group.into_mutex());
        let server = RespServer::bind(engine, "127.0.0.1:0")
            .unwrap()
            .with_replication(Arc::clone(&group) as Arc<dyn ReplicationControl>);
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());
        let mut client = TcpStream::connect(addr).unwrap();
        // +OK implies the write already sits on a majority.
        let reply = roundtrip(&mut client, b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n");
        assert_eq!(reply, RespValue::ok());
        {
            let g = group.lock();
            let lsn = g.leader_db().unwrap().last_seq();
            assert!(g.acked_count(lsn) >= 2, "quorum not enforced before reply");
        }
        // With both followers down, quorum writes must fail loudly.
        {
            let mut g = group.lock();
            g.fail_replica(2).unwrap();
            g.fail_replica(3).unwrap();
        }
        let reply = roundtrip(&mut client, b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nw\r\n");
        match reply {
            RespValue::Error(e) => assert!(e.contains("replication"), "{e}"),
            other => panic!("expected replication error, got {other:?}"),
        }
        // Reads still serve.
        let reply = roundtrip(&mut client, b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n");
        assert!(matches!(reply, RespValue::Bulk(Some(_))));
        // With the leader gone too, WAIT must refuse rather than fence on a
        // fabricated LSN and report phantom acks.
        group.lock().fail_replica(1).unwrap();
        let reply = roundtrip(&mut client, b"*3\r\n$4\r\nWAIT\r\n$1\r\n1\r\n$2\r\n50\r\n");
        match reply {
            RespValue::Error(e) => assert!(e.contains("no live leader"), "{e}"),
            other => panic!("expected no-leader error, got {other:?}"),
        }
    }

    #[test]
    fn resync_copy_runs_with_the_group_unlocked() {
        use abase_replication::{GroupConfig, ReplicaGroup, WriteConcern};
        use abase_util::failpoint::{self, FaultAction};
        let _guard = failpoint::ScopedInjector::enable();
        let dir = TestDir::new("unlocked-resync");
        let mut group = ReplicaGroup::bootstrap(
            1,
            dir.path(),
            &[1, 2, 3],
            GroupConfig {
                write_concern: WriteConcern::Async,
                db: DbConfig::small_for_tests(),
                wait_timeout: Duration::from_millis(100),
            },
        )
        .unwrap();
        for i in 0..30 {
            group
                .put(format!("k{i:03}").as_bytes(), &[5u8; 64], None, 0)
                .unwrap();
        }
        group.leader_db().unwrap().flush().unwrap();
        group.tick().unwrap();
        let lsn = group.put(b"fence", b"v", None, 0).unwrap();
        let leader_dir = dir.path().join("p1-r1");
        // Follower 2's next poll gaps; the checkpoint copy that follows is
        // slowed to ≥400 ms by per-chunk delays.
        failpoint::install(
            "binlog.poll",
            Some(leader_dir.to_str().unwrap()),
            FaultAction::Gap,
            0,
            1,
        );
        failpoint::install(
            "db.checkpoint",
            Some(leader_dir.to_str().unwrap()),
            FaultAction::DelayMs(150),
            0,
            5,
        );
        let group = Arc::new(group.into_mutex());
        let waiter = {
            let group = Arc::clone(&group);
            std::thread::spawn(move || {
                let started = Instant::now();
                let acked = group
                    .wait_for(lsn, 2, Duration::from_secs(10))
                    .expect("wait_for failed");
                (acked, started.elapsed())
            })
        };
        // While the copy is in flight, the group mutex must be free: other
        // connections' WAIT/commit keep flowing.
        std::thread::sleep(Duration::from_millis(150));
        let t0 = Instant::now();
        {
            let mut g = group.lock();
            g.put(b"concurrent", b"w", None, 0).unwrap();
        }
        let lock_wait = t0.elapsed();
        let (acked, waited) = waiter.join().unwrap();
        assert_eq!(acked, 2, "both followers must end up acked");
        assert!(
            waited >= Duration::from_millis(350),
            "copy was not slowed ({waited:?}); the lock-freedom check is vacuous"
        );
        assert!(
            lock_wait < Duration::from_millis(200),
            "group mutex was held across the resync copy ({lock_wait:?})"
        );
    }

    #[test]
    fn consistency_levels_route_connection_reads() {
        use abase_replication::{GroupConfig, ReplicaGroup, WriteConcern};
        let dir = TestDir::new("consistency-route");
        let group = ReplicaGroup::bootstrap(
            1,
            dir.path(),
            &[1, 2, 3],
            GroupConfig {
                // Async: followers lag until WAIT pumps them — which is what
                // makes the fence observable.
                write_concern: WriteConcern::Async,
                db: DbConfig::small_for_tests(),
                wait_timeout: Duration::from_millis(100),
            },
        )
        .unwrap();
        let engine = Arc::new(TableEngine::from_db(group.leader_db().unwrap()));
        let group = Arc::new(group.into_mutex());
        let server = RespServer::bind(engine, "127.0.0.1:0")
            .unwrap()
            .with_replication(Arc::clone(&group) as Arc<dyn ReplicationControl>);
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());
        let mut client = TcpStream::connect(addr).unwrap();
        // Default level is leader.
        let reply = roundtrip(&mut client, b"*1\r\n$11\r\nCONSISTENCY\r\n");
        assert_eq!(reply, RespValue::bulk("leader"));
        // Write, then fence the session's reads on it.
        roundtrip(&mut client, b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n");
        let reply = roundtrip(
            &mut client,
            b"*2\r\n$11\r\nCONSISTENCY\r\n$14\r\nreadyourwrites\r\n",
        );
        assert_eq!(reply, RespValue::ok());
        // Followers have not applied the write; the fenced read must still
        // observe it (served by the leader or a caught-up replica).
        for _ in 0..4 {
            let reply = roundtrip(&mut client, b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n");
            assert_eq!(reply, RespValue::bulk("v"), "fenced read lost the write");
        }
        // Converge, then eventual reads see it from any replica.
        roundtrip(&mut client, b"*3\r\n$4\r\nWAIT\r\n$1\r\n2\r\n$3\r\n100\r\n");
        let reply = roundtrip(
            &mut client,
            b"*2\r\n$11\r\nCONSISTENCY\r\n$8\r\neventual\r\n",
        );
        assert_eq!(reply, RespValue::ok());
        for _ in 0..4 {
            let reply = roundtrip(&mut client, b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n");
            assert_eq!(reply, RespValue::bulk("v"));
        }
        // Bogus levels are refused; the connection keeps its current level.
        let reply = roundtrip(&mut client, b"*2\r\n$11\r\nCONSISTENCY\r\n$6\r\nstrong\r\n");
        assert!(matches!(reply, RespValue::Error(_)));
        let reply = roundtrip(&mut client, b"*1\r\n$11\r\nCONSISTENCY\r\n");
        assert_eq!(reply, RespValue::bulk("eventual"));
    }

    #[test]
    fn wait_fences_on_the_sessions_own_writes_not_other_clients() {
        use abase_replication::{GroupConfig, ReplicaGroup, WriteConcern};
        let dir = TestDir::new("wait-session-fence");
        let group = ReplicaGroup::bootstrap(
            1,
            dir.path(),
            &[1, 2, 3],
            GroupConfig {
                // Async: followers lag until someone pumps them, so a global
                // fence would make the read-only client block.
                write_concern: WriteConcern::Async,
                db: DbConfig::small_for_tests(),
                wait_timeout: Duration::from_millis(100),
            },
        )
        .unwrap();
        let engine = Arc::new(TableEngine::from_db(group.leader_db().unwrap()));
        let group = Arc::new(group.into_mutex());
        let server = RespServer::bind(engine, "127.0.0.1:0")
            .unwrap()
            .with_replication(Arc::clone(&group) as Arc<dyn ReplicationControl>);
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());
        let mut writer = TcpStream::connect(addr).unwrap();
        let mut reader = TcpStream::connect(addr).unwrap();
        // Another client writes; followers have not acked it.
        roundtrip(&mut writer, b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n");
        // The read-only session has no fence: WAIT answers immediately with
        // the live follower count instead of blocking on the writer's LSN
        // (the old code fenced on the global leader LSN and would park here
        // for the full timeout).
        let started = Instant::now();
        let reply = roundtrip(
            &mut reader,
            b"*3\r\n$4\r\nWAIT\r\n$1\r\n2\r\n$4\r\n5000\r\n",
        );
        assert_eq!(reply, RespValue::Integer(2));
        assert!(
            started.elapsed() < Duration::from_millis(1500),
            "fence-free WAIT blocked on another session's write"
        );
        // With every replica dead, a fence-free WAIT still answers (0 acked)
        // — the no-leader refusal is reserved for sessions with a fence.
        {
            let mut g = group.lock();
            g.fail_replica(1).unwrap();
            g.fail_replica(2).unwrap();
            g.fail_replica(3).unwrap();
        }
        let reply = roundtrip(&mut reader, b"*3\r\n$4\r\nWAIT\r\n$1\r\n1\r\n$2\r\n50\r\n");
        assert_eq!(reply, RespValue::Integer(0));
        // The writer has a fence to enforce: refusal stands.
        let reply = roundtrip(&mut writer, b"*3\r\n$4\r\nWAIT\r\n$1\r\n1\r\n$2\r\n50\r\n");
        match reply {
            RespValue::Error(e) => assert!(e.contains("no live leader"), "{e}"),
            other => panic!("expected no-leader error, got {other:?}"),
        }
    }

    /// Records what the server actually asked the replication plane for.
    struct RecordingRepl {
        calls: Mutex<Vec<(u64, usize, Duration)>>,
    }

    impl ReplicationControl for RecordingRepl {
        fn last_lsn(&self) -> Option<u64> {
            Some(42)
        }
        fn wait_for(
            &self,
            lsn: u64,
            numreplicas: usize,
            timeout: Duration,
        ) -> Result<usize, String> {
            self.calls.lock().push((lsn, numreplicas, timeout));
            Ok(numreplicas)
        }
        fn commit_written(&self) -> Result<u64, String> {
            Ok(7)
        }
        fn read_routed(
            &self,
            _key: &[u8],
            _consistency: ReadConsistency,
            _now: u64,
        ) -> Result<(Option<Vec<u8>>, u64), String> {
            Err("not under test".into())
        }
    }

    #[test]
    fn wait_zero_timeout_maps_to_the_server_cap_and_session_fence() {
        let (_dir, _addr, _clock) = start_server("wait-cap-unused");
        let dir = TestDir::new("wait-cap");
        let engine = Arc::new(TableEngine::open(dir.path(), DbConfig::small_for_tests()).unwrap());
        let repl = Arc::new(RecordingRepl {
            calls: Mutex::new(Vec::new()),
        });
        let server = RespServer::bind(engine, "127.0.0.1:0")
            .unwrap()
            .with_replication(Arc::clone(&repl) as Arc<dyn ReplicationControl>);
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());
        let mut client = TcpStream::connect(addr).unwrap();
        // The write pins the session fence at the committed LSN (7).
        roundtrip(&mut client, b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n");
        // `WAIT 2 0`: no client limit — the server must substitute its cap,
        // not treat it as a single non-blocking pass.
        roundtrip(&mut client, b"*3\r\n$4\r\nWAIT\r\n$1\r\n2\r\n$1\r\n0\r\n");
        // A finite timeout passes through untouched.
        roundtrip(&mut client, b"*3\r\n$4\r\nWAIT\r\n$1\r\n2\r\n$3\r\n250\r\n");
        let calls = repl.calls.lock();
        assert_eq!(calls.len(), 2);
        assert_eq!(
            calls[0],
            (7, 2, WAIT_UNBOUNDED_CAP),
            "WAIT n 0 must fence on the session LSN with the server cap"
        );
        assert_eq!(calls[1], (7, 2, Duration::from_millis(250)));
    }

    #[test]
    fn wait_finite_timeout_returns_acked_so_far() {
        use abase_replication::{GroupConfig, ReplicaGroup, WriteConcern};
        let dir = TestDir::new("wait-partial");
        let group = ReplicaGroup::bootstrap(
            1,
            dir.path(),
            &[1, 2, 3],
            GroupConfig {
                write_concern: WriteConcern::Async,
                db: DbConfig::small_for_tests(),
                wait_timeout: Duration::from_millis(100),
            },
        )
        .unwrap();
        let engine = Arc::new(TableEngine::from_db(group.leader_db().unwrap()));
        let group = Arc::new(group.into_mutex());
        group.lock().fail_replica(3).unwrap();
        let server = RespServer::bind(engine, "127.0.0.1:0")
            .unwrap()
            .with_replication(Arc::clone(&group) as Arc<dyn ReplicationControl>);
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());
        let mut client = TcpStream::connect(addr).unwrap();
        roundtrip(&mut client, b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n");
        // Asking for 2 follower acks with one follower dead: the reply is
        // the ack count reached when the budget expires, not an error.
        let started = Instant::now();
        let reply = roundtrip(&mut client, b"*3\r\n$4\r\nWAIT\r\n$1\r\n2\r\n$2\r\n80\r\n");
        assert_eq!(reply, RespValue::Integer(1));
        let elapsed = started.elapsed();
        assert!(elapsed >= Duration::from_millis(60), "returned early");
        assert!(elapsed < Duration::from_secs(5), "ignored the timeout");
    }

    #[test]
    fn read_only_server_refuses_writes() {
        let dir = TestDir::new("read-only");
        let engine = Arc::new(TableEngine::open(dir.path(), DbConfig::small_for_tests()).unwrap());
        engine
            .execute(
                0,
                &Command::Set {
                    key: "k".into(),
                    value: "v".into(),
                    ttl_secs: None,
                },
                0,
            )
            .unwrap();
        let server = RespServer::bind(engine, "127.0.0.1:0").unwrap().read_only();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());
        let mut client = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut client, b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nw\r\n");
        match reply {
            RespValue::Error(e) => assert!(e.starts_with("READONLY"), "{e}"),
            other => panic!("expected READONLY, got {other:?}"),
        }
        // Reads still serve the replicated state.
        assert_eq!(
            roundtrip(&mut client, b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"),
            RespValue::bulk("v")
        );
    }

    #[test]
    fn psync_streams_a_remote_follower_through_the_resp_server() {
        use abase_replication::{
            FollowerPump, GroupConfig, ReplicaGroup, SocketFollower, WriteConcern,
        };
        let dir = TestDir::new("psync-resp");
        let fdir = TestDir::new("psync-resp-follower");
        let group = ReplicaGroup::bootstrap(
            1,
            dir.path(),
            &[1],
            GroupConfig {
                write_concern: WriteConcern::Quorum,
                db: DbConfig::small_for_tests(),
                wait_timeout: Duration::from_secs(5),
            },
        )
        .unwrap();
        let engine = Arc::new(TableEngine::from_db(group.leader_db().unwrap()));
        let group = Arc::new(group.into_mutex());
        let server = RespServer::bind(engine, "127.0.0.1:0")
            .unwrap()
            .with_replication(Arc::clone(&group) as Arc<dyn ReplicationControl>);
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());
        // The follower in "another process": its pump thread drives the
        // REPLCONF/PSYNC handshake and the checkpoint pull.
        let mut follower = SocketFollower::connect(
            fdir.path().join("replica"),
            DbConfig::small_for_tests(),
            &addr.to_string(),
            77,
            0,
        )
        .unwrap();
        let follower_db = follower.db();
        let stop = Arc::new(AtomicBool::new(false));
        let pump = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut db = follower_db;
                while !stop.load(Ordering::Relaxed) {
                    match follower.pump() {
                        Ok(FollowerPump::Resynced) => db = follower.db(),
                        Ok(_) => {}
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                db
            })
        };
        // Quorum over {local leader, remote follower} = 2: +OK proves the
        // REPLCONF ACK made it back through the socket.
        let mut client = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut client, b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n");
        assert_eq!(reply, RespValue::ok(), "quorum write over the socket");
        let reply = roundtrip(
            &mut client,
            b"*3\r\n$4\r\nWAIT\r\n$1\r\n1\r\n$4\r\n5000\r\n",
        );
        assert_eq!(reply, RespValue::Integer(1));
        {
            let g = group.lock();
            let remotes = g.remote_followers();
            assert_eq!(remotes.len(), 1);
            assert_eq!(remotes[0].0, 77);
            assert!(remotes[0].1 >= 1, "remote ack not recorded");
        }
        stop.store(true, Ordering::Relaxed);
        let db = pump.join().unwrap();
        let key = TableEngine::storage_string_key(0, b"k");
        assert_eq!(
            db.get(&key, 0).unwrap().value.as_deref(),
            Some(&b"v"[..]),
            "the write is not on the follower"
        );
    }

    #[test]
    fn wait_blocks_on_replica_acks() {
        use abase_replication::{GroupConfig, ReplicaGroup, WriteConcern};
        let dir = TestDir::new("wait-repl");
        let group = ReplicaGroup::bootstrap(
            1,
            dir.path(),
            &[1, 2, 3],
            GroupConfig {
                // Async at write time: WAIT is what forces shipping.
                write_concern: WriteConcern::Async,
                db: DbConfig::small_for_tests(),
                wait_timeout: Duration::from_millis(100),
            },
        )
        .unwrap();
        let engine = Arc::new(TableEngine::from_db(group.leader_db().unwrap()));
        let group = Arc::new(group.into_mutex());
        let server = RespServer::bind(engine, "127.0.0.1:0")
            .unwrap()
            .with_replication(Arc::clone(&group) as Arc<dyn ReplicationControl>);
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());
        let mut client = TcpStream::connect(addr).unwrap();
        roundtrip(&mut client, b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n");
        // Before WAIT nothing shipped; WAIT 2 forces both followers to ack.
        let reply = roundtrip(&mut client, b"*3\r\n$4\r\nWAIT\r\n$1\r\n2\r\n$3\r\n100\r\n");
        assert_eq!(reply, RespValue::Integer(2));
        // The write is now durable on every follower.
        let g = group.lock();
        let lsn = g.leader_db().unwrap().last_seq();
        assert_eq!(g.acked_count(lsn), 3);
    }
}
