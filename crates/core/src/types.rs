//! Shared identifiers and request/response types.

use abase_util::clock::SimTime;

/// Tenant identifier.
pub type TenantId = u32;
/// Partition identifier (globally unique).
pub type PartitionId = u64;
/// Data node identifier.
pub type NodeId = u32;
/// Proxy identifier (within one tenant's proxy fleet).
pub type ProxyId = u32;

/// A session's read-consistency preference, before a concrete LSN fence is
/// attached (`ReadYourWrites` resolves against the session's last acked
/// write). Clients pick it per connection (`CONSISTENCY <level>` on the RESP
/// server) or per request; the proxy plane and read router carry it through
/// to replica selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsistencyLevel {
    /// Any caught-up replica may serve; staleness bounded by routing policy.
    Eventual,
    /// Reads must observe the session's own acked writes (LSN fencing).
    ReadYourWrites,
    /// Leader replica only.
    #[default]
    Leader,
}

impl ConsistencyLevel {
    /// Parse a client-supplied level name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "eventual" => Some(Self::Eventual),
            "readyourwrites" | "ryw" => Some(Self::ReadYourWrites),
            "leader" => Some(Self::Leader),
            _ => None,
        }
    }

    /// Canonical level name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Eventual => "eventual",
            Self::ReadYourWrites => "readyourwrites",
            Self::Leader => "leader",
        }
    }
}

/// A simulated client request (the cost-model path; the byte-accurate path
/// lives in [`crate::engine`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SimRequest {
    /// Issuing tenant.
    pub tenant: TenantId,
    /// Target partition.
    pub partition: PartitionId,
    /// Stable key identity (drives cache behaviour).
    pub key: u64,
    /// Write or read.
    pub is_write: bool,
    /// Value size in bytes.
    pub value_bytes: usize,
    /// Virtual time the client issued the request.
    pub issued_at: SimTime,
    /// Index of the proxy that forwarded the request, when one did (used to
    /// fill that proxy's cache on completion).
    pub proxy: Option<u32>,
}

/// Where a completed request was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// The proxy cache answered; the request never reached a data node.
    ProxyCache,
    /// The data node cache answered (CPU + memory only).
    NodeCache,
    /// The storage engine answered (disk I/O).
    Storage,
}

/// Final disposition of a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Disposition {
    /// Completed successfully.
    Success {
        /// End-to-end latency in virtual microseconds.
        latency: SimTime,
        /// Serving layer.
        served_from: ServedFrom,
    },
    /// Rejected by the proxy quota.
    RejectedAtProxy,
    /// Rejected by the partition quota at the data node.
    RejectedAtNode,
}

impl Disposition {
    /// True for successful completions.
    pub fn is_success(&self) -> bool {
        matches!(self, Disposition::Success { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_levels_parse_and_name() {
        assert_eq!(
            ConsistencyLevel::parse("EVENTUAL"),
            Some(ConsistencyLevel::Eventual)
        );
        assert_eq!(
            ConsistencyLevel::parse("ryw"),
            Some(ConsistencyLevel::ReadYourWrites)
        );
        assert_eq!(
            ConsistencyLevel::parse("Leader"),
            Some(ConsistencyLevel::Leader)
        );
        assert_eq!(ConsistencyLevel::parse("strong"), None);
        assert_eq!(ConsistencyLevel::default(), ConsistencyLevel::Leader);
        assert_eq!(ConsistencyLevel::Eventual.name(), "eventual");
    }

    #[test]
    fn disposition_predicates() {
        let ok = Disposition::Success {
            latency: 100,
            served_from: ServedFrom::NodeCache,
        };
        assert!(ok.is_success());
        assert!(!Disposition::RejectedAtProxy.is_success());
        assert!(!Disposition::RejectedAtNode.is_success());
    }
}
