//! Single-tenant (ABase-Pre) vs multi-tenant placement utilization (§6.4).
//!
//! "The average utilization rates of CPU, Memory, and Disk for each machine in
//! ABase-Pre were only 17 %, 52 %, and 27 %, respectively. After upgrading to
//! ABase, these rates increased to 44 %, 63 %, and 46 %."
//!
//! Two effects drive the gap:
//!
//! 1. **Quantization** — a dedicated deployment must round each tenant up to
//!    whole machines *per resource*, sized by the binding constraint, so the
//!    non-binding resources idle.
//! 2. **Failure headroom** — a 3-replica single-tenant system caps utilization
//!    at 2/3 (§3.3), while an N-node shared pool caps at N/(N+1).
//!
//! The multi-tenant packing co-locates complementary tenants (CPU-heavy with
//! disk-heavy) and shares the failure headroom across the pool.

use crate::meta::RecoveryModel;
use abase_scheduler::{LoadVector, NodeState, PoolState, ReplicaLoad, Rescheduler};
use abase_workload::TenantPopulation;

/// Machine resource profile used for both deployments.
#[derive(Debug, Clone, Copy)]
pub struct MachineSpec {
    /// CPU capacity in normalized RU/s.
    pub cpu: f64,
    /// Memory capacity in normalized units (cache working set).
    pub memory: f64,
    /// Disk capacity in normalized storage units.
    pub disk: f64,
    /// Fixed memory every deployed machine consumes regardless of load:
    /// engine memtables, block indexes, bloom filters, OS page cache floor.
    /// This is why memory utilization is the *highest* resource on dedicated
    /// machines (paper: 52 % memory vs 17 % CPU for ABase-Pre).
    pub memory_overhead: f64,
}

impl Default for MachineSpec {
    fn default() -> Self {
        Self {
            cpu: 8.0,
            memory: 6.0,
            disk: 8.0,
            memory_overhead: 2.6,
        }
    }
}

/// Mean per-machine utilization of the three resources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationReport {
    /// CPU utilization in `[0, 1]`.
    pub cpu: f64,
    /// Memory utilization in `[0, 1]`.
    pub memory: f64,
    /// Disk utilization in `[0, 1]`.
    pub disk: f64,
    /// Machines used.
    pub machines: usize,
}

/// Per-tenant derived demand (CPU = RU, memory ∝ working set, disk = storage).
fn demands(tenant: &abase_workload::Tenant) -> (f64, f64, f64) {
    let cpu = tenant.ru;
    // Memory demand follows the cache working set: read-heavy, high-hit
    // tenants keep more resident.
    let memory = 0.25 * tenant.ru * (0.5 + tenant.cache_hit_ratio) + 0.05 * tenant.storage;
    let disk = tenant.storage;
    (cpu, memory, disk)
}

/// Dedicated single-tenant deployment: each tenant gets
/// `ceil(max resource demand / (machine capacity × 2/3))` machines (the §3.3
/// failure-headroom bound), with a 1-machine minimum.
pub fn single_tenant_utilization(
    population: &TenantPopulation,
    machine: MachineSpec,
) -> UtilizationReport {
    let headroom = RecoveryModel::single_tenant_max_utilization();
    let mut machines = 0usize;
    let (mut cpu_used, mut mem_used, mut disk_used) = (0.0, 0.0, 0.0);
    let workload_memory = (machine.memory - machine.memory_overhead).max(0.1);
    for tenant in &population.tenants {
        let (cpu, memory, disk) = demands(tenant);
        let need = [
            cpu / (machine.cpu * headroom),
            memory / (workload_memory * headroom),
            disk / (machine.disk * headroom),
        ]
        .into_iter()
        .fold(0.0_f64, f64::max)
        .ceil()
        .max(1.0) as usize;
        machines += need;
        cpu_used += cpu;
        mem_used += memory;
        disk_used += disk;
    }
    mem_used += machines as f64 * machine.memory_overhead;
    UtilizationReport {
        cpu: cpu_used / (machines as f64 * machine.cpu),
        memory: mem_used / (machines as f64 * machine.memory),
        disk: disk_used / (machines as f64 * machine.disk),
        machines,
    }
}

/// Multi-tenant pool: size the pool to the aggregate demand with the
/// `N/(N+1)` failure headroom, the 20 % idle-reserve operating lesson (§7),
/// and a growth-headroom factor (pools are provisioned ahead of demand so
/// "each tenant can at least double their quota in the short term"), then
/// balance replicas with the rescheduler.
pub fn multi_tenant_utilization(
    population: &TenantPopulation,
    machine: MachineSpec,
    idle_reserve: f64,
    growth_headroom: f64,
) -> UtilizationReport {
    let (mut cpu, mut mem, mut disk) = (0.0, 0.0, 0.0);
    for tenant in &population.tenants {
        let (c, m, d) = demands(tenant);
        cpu += c;
        mem += m;
        disk += d;
    }
    // Machines needed so that the binding aggregate resource fits under
    // (1 − reserve) of pool capacity, scaled by the growth headroom.
    let usable = 1.0 - idle_reserve;
    let workload_memory = (machine.memory - machine.memory_overhead).max(0.1);
    let need = [
        cpu / (machine.cpu * usable),
        mem / (workload_memory * usable),
        disk / (machine.disk * usable),
    ]
    .into_iter()
    .fold(0.0_f64, f64::max)
    .ceil()
    .max(1.0);
    let machines = ((need * growth_headroom).ceil() as usize).max(2);
    // Distribute replicas and let the rescheduler balance — this validates
    // that the packing is actually achievable, not just arithmetic.
    let mut pool = PoolState::new(
        (0..machines as u32)
            .map(|i| NodeState::new(i, machine.cpu, machine.disk))
            .collect(),
    );
    for (i, tenant) in population.tenants.iter().enumerate() {
        let (c, _, d) = demands(tenant);
        let node = i % machines;
        // Memory demand already encodes the cache-hit shape; attribute the
        // RU total by the read share reads-vs-writes typically carry.
        pool.nodes[node].add_replica(ReplicaLoad::from_total(
            i as u64,
            tenant.id,
            i as u64,
            LoadVector::flat(c),
            0.7,
            d,
        ));
    }
    Rescheduler::default().rebalance_to_convergence(&mut pool, 200);
    let mem_total = mem + machines as f64 * machine.memory_overhead;
    UtilizationReport {
        cpu: cpu / (machines as f64 * machine.cpu),
        memory: mem_total / (machines as f64 * machine.memory),
        disk: disk / (machines as f64 * machine.disk),
        machines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_tenant_beats_single_tenant_on_every_resource() {
        let population = TenantPopulation::generate(300, 5);
        let machine = MachineSpec::default();
        let single = single_tenant_utilization(&population, machine);
        let multi = multi_tenant_utilization(&population, machine, 0.2, 1.7);
        assert!(
            multi.cpu > single.cpu,
            "cpu {} vs {}",
            multi.cpu,
            single.cpu
        );
        assert!(
            multi.disk > single.disk,
            "disk {} vs {}",
            multi.disk,
            single.disk
        );
        assert!(multi.memory > single.memory);
        assert!(multi.machines < single.machines);
    }

    #[test]
    fn single_tenant_cpu_utilization_is_low() {
        // The §6.4 shape: dedicated machines idle most of their CPU.
        let population = TenantPopulation::generate(300, 5);
        let single = single_tenant_utilization(&population, MachineSpec::default());
        assert!(single.cpu < 0.4, "cpu={}", single.cpu);
    }

    #[test]
    fn multi_tenant_respects_idle_reserve() {
        let population = TenantPopulation::generate(300, 5);
        let multi = multi_tenant_utilization(&population, MachineSpec::default(), 0.2, 1.7);
        // Binding resource utilization stays under the reserve+headroom cap.
        assert!(multi.cpu <= 0.55, "cpu={}", multi.cpu);
        assert!(multi.disk <= 0.55, "disk={}", multi.disk);
    }

    #[test]
    fn reports_are_deterministic() {
        let population = TenantPopulation::generate(100, 9);
        let a = multi_tenant_utilization(&population, MachineSpec::default(), 0.2, 1.7);
        let b = multi_tenant_utilization(&population, MachineSpec::default(), 0.2, 1.7);
        assert_eq!(a, b);
    }
}
