//! Crash-recovery torture test: kill the engine mid-write and verify replay
//! reconstructs exactly the pre-crash state.
//!
//! A crash mid-append leaves a torn frame at the WAL tail. Recovery must keep
//! every fully framed record and drop the torn one — never erroring, never
//! resurrecting dropped writes. This is the exact codepath replication
//! followers reuse (`apply_replicated` funnels shipped records through the
//! same WAL), so pinning it here pins the replication plane's durability too.

use abase_lavastore::record::Record;
use abase_lavastore::wal::{Wal, WalOptions};
use abase_lavastore::{Db, DbConfig};
use abase_util::TestDir;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// The WAL segment currently receiving appends, by id.
fn live_wal(db: &Db) -> PathBuf {
    Wal::segment_path(db.dir(), db.current_wal_segment())
}

/// Small-engine config with a memtable large enough that no stripe flushes
/// mid-test: these tests truncate the live WAL and assume it holds every
/// write, so an automatic flush (which rotates the WAL) would invalidate the
/// simulated crash.
fn cfg() -> DbConfig {
    DbConfig {
        memtable_bytes: 1 << 20,
        ..DbConfig::small_for_tests()
    }
}

/// Write `n` records without flushing, drop the engine (simulating a crash
/// that lost nothing), then truncate the live WAL to `keep_bytes` (simulating
/// how far the crashed append actually reached the disk).
fn crash_after(tag: &str, n: usize, keep_fraction: f64) -> (TestDir, usize) {
    let dir = TestDir::new(tag);
    let wal_path;
    {
        let db = Db::open(dir.path(), cfg()).unwrap();
        for i in 0..n {
            db.put(
                format!("key-{i:04}").as_bytes(),
                format!("v{i}").as_bytes(),
                None,
                0,
            )
            .unwrap();
        }
        db.flush_wal().unwrap();
        wal_path = live_wal(&db);
    }
    let data = std::fs::read(&wal_path).unwrap();
    let keep = (data.len() as f64 * keep_fraction) as usize;
    std::fs::write(&wal_path, &data[..keep]).unwrap();
    (dir, keep)
}

/// How many of the first `n` sequential puts survive in `db`.
fn surviving_prefix(db: &Db, n: usize) -> usize {
    let mut count = 0;
    for i in 0..n {
        if db
            .get(format!("key-{i:04}").as_bytes(), 0)
            .unwrap()
            .value
            .is_some()
        {
            count += 1;
        } else {
            break;
        }
    }
    count
}

#[test]
fn torn_tail_recovers_every_complete_record() {
    // Truncate the WAL at many points; recovery must always yield a clean
    // prefix of the write sequence — no holes, no phantom records, no error.
    for (i, fraction) in [0.15, 0.4, 0.63, 0.87, 0.999].iter().enumerate() {
        let n = 40;
        let (dir, _) = crash_after(&format!("torn-{i}"), n, *fraction);
        let db = Db::open(dir.path(), cfg()).unwrap();
        let prefix = surviving_prefix(&db, n);
        // A clean prefix: everything after the last survivor is absent.
        for j in prefix..n {
            assert!(
                db.get(format!("key-{j:04}").as_bytes(), 0)
                    .unwrap()
                    .value
                    .is_none(),
                "hole-free prefix violated at {j} (fraction {fraction})"
            );
        }
        // The engine's sequence counter resumes past the survivors, so new
        // writes never collide with recovered ones.
        assert_eq!(db.last_seq(), prefix as u64);
        db.put(b"post-crash", b"new", None, 0).unwrap();
        assert_eq!(db.last_seq(), prefix as u64 + 1);
    }
}

#[test]
fn byte_exact_truncation_sweep() {
    // Exhaustive sweep over every truncation point of a small WAL: recovery
    // must never fail and always produce a prefix.
    let n = 6;
    let dir = TestDir::new("sweep");
    let wal_path;
    {
        let db = Db::open(dir.path(), cfg()).unwrap();
        for i in 0..n {
            db.put(format!("key-{i:04}").as_bytes(), b"value", None, 0)
                .unwrap();
        }
        db.flush_wal().unwrap();
        wal_path = live_wal(&db);
    }
    let full = std::fs::read(&wal_path).unwrap();
    let mut prefixes = Vec::new();
    for keep in 0..=full.len() {
        std::fs::write(&wal_path, &full[..keep]).unwrap();
        let records = Wal::replay(&wal_path).unwrap();
        // Replay yields consecutive seqs from 1.
        for (idx, r) in records.iter().enumerate() {
            assert_eq!(r.seq, idx as u64 + 1, "non-prefix replay at keep={keep}");
        }
        prefixes.push(records.len());
    }
    // Monotone: keeping more bytes never recovers fewer records, and the
    // full file recovers everything.
    assert!(prefixes.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(*prefixes.last().unwrap(), n);
    assert_eq!(prefixes[0], 0);
}

#[test]
fn crash_recovery_matches_model_state() {
    // Mixed puts/deletes/overwrites; crash drops the torn tail only. The
    // recovered engine must agree with a HashMap replay of the same surviving
    // record stream.
    let dir = TestDir::new("model");
    let wal_path;
    {
        let db = Db::open(dir.path(), cfg()).unwrap();
        for i in 0..30 {
            let key = format!("k{:02}", i % 10);
            if i % 7 == 3 {
                db.delete(key.as_bytes(), 0).unwrap();
            } else {
                db.put(key.as_bytes(), format!("v{i}").as_bytes(), None, 0)
                    .unwrap();
            }
        }
        db.flush_wal().unwrap();
        wal_path = live_wal(&db);
    }
    // Crash 11 bytes into the final frame.
    let data = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &data[..data.len() - 11]).unwrap();
    // Model: replay the surviving records independently.
    let survivors: Vec<Record> = Wal::replay(&wal_path).unwrap();
    assert!(!survivors.is_empty());
    let mut model: HashMap<Vec<u8>, Option<Vec<u8>>> = HashMap::new();
    for r in &survivors {
        match r.kind {
            abase_lavastore::record::RecordKind::Put => {
                model.insert(r.key.to_vec(), Some(r.value.to_vec()))
            }
            abase_lavastore::record::RecordKind::Delete => model.insert(r.key.to_vec(), None),
        };
    }
    let db = Db::open(dir.path(), cfg()).unwrap();
    for (key, expect) in &model {
        let got = db.get(key, 0).unwrap().value;
        assert_eq!(
            got.as_deref(),
            expect.as_deref(),
            "mismatch on {}",
            String::from_utf8_lossy(key)
        );
    }
}

/// One randomized multi-record batch: `(is_delete, key_id, value_len, ttl?)`.
type BatchOp = (bool, u8, usize, bool);

fn batch_records(ops: &[BatchOp]) -> Vec<Record> {
    ops.iter()
        .enumerate()
        .map(|(i, &(is_delete, key_id, value_len, ttl))| {
            let seq = i as u64 + 1;
            let key = format!("key-{key_id:03}");
            if is_delete {
                Record::delete(key.into_bytes(), seq)
            } else {
                Record::put(
                    key.into_bytes(),
                    vec![b'a' + (i % 23) as u8; value_len],
                    seq,
                    ttl.then_some(1_000_000),
                )
            }
        })
        .collect()
}

proptest! {
    /// Prefix property at *every* byte offset: truncate a randomized
    /// multi-record WAL batch (mixed puts/deletes/TTLs, value sizes from
    /// empty to ~200 B) after each byte and replay. Recovery must never
    /// error, must always yield records `1..=m` for some `m` (no holes, no
    /// phantoms), and `m` must grow monotonically with the number of bytes
    /// kept — the contract binlog tail readers and crash recovery share.
    #[test]
    fn torn_tail_prefix_property_at_every_byte_offset(
        ops in prop::collection::vec(
            (any::<bool>(), 0u8..10, 0usize..200, any::<bool>()), 2..10),
    ) {
        let dir = TestDir::new("prop-sweep");
        std::fs::create_dir_all(dir.path()).unwrap();
        let path = dir.join("batch.log");
        let records = batch_records(&ops);
        {
            let wal = Wal::create(&path, 0, 1, WalOptions::default()).unwrap();
            for r in &records {
                assert!(wal.append_at(r).unwrap());
            }
            wal.flush().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let mut previous = 0usize;
        for keep in 0..=full.len() {
            std::fs::write(&path, &full[..keep]).unwrap();
            let survivors = Wal::replay(&path).unwrap();
            for (idx, r) in survivors.iter().enumerate() {
                prop_assert_eq!(r.seq, idx as u64 + 1, "hole at keep={}", keep);
                prop_assert_eq!(&r.key, &records[idx].key, "phantom at keep={}", keep);
            }
            prop_assert!(
                survivors.len() >= previous,
                "prefix shrank at keep={}: {} -> {}",
                keep, previous, survivors.len()
            );
            previous = survivors.len();
        }
        prop_assert_eq!(previous, records.len(), "full batch must fully recover");
    }

    /// Torn tails of a *group-committed* batch: four writer threads append
    /// concurrently through one shared WAL with durable commits (each fsync
    /// covers a batch of writers). Truncating the log at every byte offset
    /// must still recover a gapless LSN prefix `1..=m` — group commit batches
    /// frames but never reorders or tears the sequence stream.
    #[test]
    fn group_committed_batch_torn_at_every_byte_offset(
        per_writer in 1usize..6,
        value_len in 0usize..48,
    ) {
        let dir = TestDir::new("prop-group");
        std::fs::create_dir_all(dir.path()).unwrap();
        let path = dir.join("group.log");
        const WRITERS: usize = 4;
        {
            let wal = Arc::new(
                Wal::create(
                    &path,
                    0,
                    1,
                    WalOptions {
                        sync_on_append: true,
                        ..WalOptions::default()
                    },
                )
                .unwrap(),
            );
            let mut handles = Vec::new();
            for t in 0..WRITERS {
                let wal = Arc::clone(&wal);
                let handle = std::thread::spawn(move || {
                    for i in 0..per_writer {
                        let mut r = Record::put(
                            format!("w{t}-{i:03}").into_bytes(),
                            vec![b'x'; value_len],
                            0,
                            None,
                        );
                        let seq = wal.append_next(&mut r).unwrap();
                        wal.commit(seq).unwrap();
                    }
                });
                handles.push(handle);
            }
            for h in handles {
                h.join().unwrap();
            }
            prop_assert_eq!(wal.last_allocated(), (WRITERS * per_writer) as u64);
            prop_assert_eq!(wal.durable_seq(), (WRITERS * per_writer) as u64);
        }
        let full = std::fs::read(&path).unwrap();
        let mut previous = 0usize;
        for keep in 0..=full.len() {
            std::fs::write(&path, &full[..keep]).unwrap();
            let survivors = Wal::replay(&path).unwrap();
            for (idx, r) in survivors.iter().enumerate() {
                prop_assert_eq!(r.seq, idx as u64 + 1, "LSN gap at keep={}", keep);
            }
            prop_assert!(
                survivors.len() >= previous,
                "prefix shrank at keep={}",
                keep
            );
            previous = survivors.len();
        }
        prop_assert_eq!(previous, WRITERS * per_writer, "durable batch fully recovers");
    }

    /// Engine-level recovery at an arbitrary (fractional) byte offset: the
    /// reopened `Db` must expose exactly the surviving record prefix — same
    /// state as an independent model replay — and continue the sequence
    /// domain without collisions.
    #[test]
    fn db_reopen_after_arbitrary_truncation_matches_model(
        ops in prop::collection::vec(
            (any::<bool>(), 0u8..10, 0usize..120, any::<bool>()), 2..14),
        cut in 0.0f64..1.0,
    ) {
        let dir = TestDir::new("prop-reopen");
        let wal_path;
        {
            let db = Db::open(dir.path(), cfg()).unwrap();
            for &(is_delete, key_id, value_len, ttl) in &ops {
                let key = format!("key-{key_id:03}");
                if is_delete {
                    db.delete(key.as_bytes(), 0).unwrap();
                } else {
                    db.put(
                        key.as_bytes(),
                        &vec![b'v'; value_len],
                        ttl.then_some(1_000_000),
                        0,
                    )
                    .unwrap();
                }
            }
            db.flush_wal().unwrap();
            wal_path = live_wal(&db);
        }
        let data = std::fs::read(&wal_path).unwrap();
        let keep = (data.len() as f64 * cut) as usize;
        std::fs::write(&wal_path, &data[..keep]).unwrap();
        // Model: independently replay whatever survived the truncation.
        let survivors = Wal::replay(&wal_path).unwrap();
        let mut model: HashMap<Vec<u8>, Option<Vec<u8>>> = HashMap::new();
        for r in &survivors {
            match r.kind {
                abase_lavastore::record::RecordKind::Put => {
                    model.insert(r.key.to_vec(), Some(r.value.to_vec()))
                }
                abase_lavastore::record::RecordKind::Delete => {
                    model.insert(r.key.to_vec(), None)
                }
            };
        }
        let db = Db::open(dir.path(), cfg()).unwrap();
        prop_assert_eq!(db.last_seq(), survivors.len() as u64);
        for (key, expect) in &model {
            let got = db.get(key, 0).unwrap().value;
            prop_assert_eq!(
                got.as_deref(),
                expect.as_deref(),
                "mismatch on {} at cut={}",
                String::from_utf8_lossy(key), cut
            );
        }
        // The sequence domain resumes cleanly after the crash.
        db.put(b"post-crash", b"new", None, 0).unwrap();
        prop_assert_eq!(db.last_seq(), survivors.len() as u64 + 1);
    }
}

#[test]
fn follower_crash_mid_apply_recovers_like_leader() {
    // Replication followers funnel shipped records through the same WAL. A
    // follower that crashes mid-apply must recover a clean prefix and keep
    // its LSN high-water mark consistent, so shipping can resume (duplicates
    // dedup, the next record either continues or resyncs).
    let dir = TestDir::new("follower");
    let wal_path;
    {
        let db = Db::open(dir.path(), cfg()).unwrap();
        for i in 0..20 {
            let record = Record::put(
                format!("key-{i:04}").as_bytes().to_vec(),
                b"shipped".to_vec(),
                i + 1, // leader-assigned LSN
                None,
            );
            assert!(db.apply_replicated(&record).unwrap());
        }
        db.flush_wal().unwrap();
        wal_path = live_wal(&db);
    }
    let data = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &data[..data.len() - 5]).unwrap();
    let db = Db::open(dir.path(), cfg()).unwrap();
    let recovered = db.last_seq();
    assert!(
        (1..20).contains(&recovered),
        "torn tail must drop the last record"
    );
    // Re-shipping from the leader: duplicates are no-ops, the next LSN lands.
    for i in 0..20u64 {
        let record = Record::put(
            format!("key-{i:04}").as_bytes().to_vec(),
            b"shipped".to_vec(),
            i + 1,
            None,
        );
        let applied = db.apply_replicated(&record).unwrap();
        assert_eq!(applied, i + 1 > recovered, "lsn {}", i + 1);
    }
    assert_eq!(db.last_seq(), 20);
    for i in 0..20 {
        assert!(db
            .get(format!("key-{i:04}").as_bytes(), 0)
            .unwrap()
            .value
            .is_some());
    }
}

#[test]
fn concurrent_writer_crash_recovers_committed_prefix() {
    // Four writers race through the striped engine's shared group-commit WAL,
    // then the log is torn at several offsets. Every reopen must expose a
    // gapless LSN prefix: `last_seq()` equals the survivor count and every
    // surviving record's key reads back.
    let dir = TestDir::new("group-crash");
    let wal_path;
    {
        let db = Arc::new(Db::open(dir.path(), cfg()).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for i in 0..25u64 {
                    db.put(format!("w{t}-{i:03}").as_bytes(), b"v", None, 0)
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        db.flush_wal().unwrap();
        wal_path = live_wal(&db);
    }
    let full = std::fs::read(&wal_path).unwrap();
    // Increasing cuts so each reopen's persisted seq counter never exceeds
    // the survivors of the next (a reopen persists next_seq in the manifest).
    for cut in [
        1usize,
        full.len() / 3,
        full.len() / 2,
        full.len() - 3,
        full.len(),
    ] {
        std::fs::write(&wal_path, &full[..cut]).unwrap();
        let survivors = Wal::replay(&wal_path).unwrap();
        // Frames hit the file in allocation order even with racing writers,
        // so any surviving prefix is a gapless seq run from 1.
        for (idx, r) in survivors.iter().enumerate() {
            assert_eq!(r.seq, idx as u64 + 1, "LSN gap at cut={cut}");
        }
        let db = Db::open(dir.path(), cfg()).unwrap();
        assert_eq!(db.last_seq(), survivors.len() as u64, "cut={cut}");
        for r in &survivors {
            assert!(
                db.get(&r.key, 0).unwrap().value.is_some(),
                "committed write lost at cut={cut}"
            );
        }
    }
}

#[test]
fn checkpoint_cursor_excludes_torn_frame_bytes() {
    // A torn write (simulated crash mid-append) leaves partial-frame bytes in
    // the live WAL file. A checkpoint taken afterwards must record a cursor
    // on the last complete frame boundary — never mid-torn-frame — so the
    // clone opens cleanly with exactly the pre-tear state.
    use abase_util::failpoint::{self, FaultAction, ScopedInjector};
    let dir = TestDir::new("ckpt-torn");
    let dest = TestDir::new("ckpt-torn-dest");
    let db = Db::open(dir.path(), cfg()).unwrap();
    for i in 0..10 {
        db.put(format!("key-{i:04}").as_bytes(), b"v", None, 0)
            .unwrap();
    }
    let wal_path = live_wal(&db);
    let _guard = ScopedInjector::enable();
    failpoint::install(
        "wal.append",
        Some(&wal_path.display().to_string()),
        FaultAction::TornWrite { keep_bytes: 7 },
        0,
        1,
    );
    assert!(db.put(b"torn", b"lost", None, 0).is_err());
    let info = db.checkpoint(dest.path()).unwrap();
    assert_eq!(info.last_seq, 10);
    // The clone's live segment holds exactly the ten complete frames: the
    // cursor excluded the torn bytes that follow them in the source file.
    let clone_wal = Wal::segment_path(dest.path(), info.wal_segment);
    let records = Wal::replay(&clone_wal).unwrap();
    assert_eq!(records.len(), 10);
    assert_eq!(
        std::fs::metadata(&clone_wal).unwrap().len(),
        info.wal_offset
    );
    let clone = Db::open(dest.path(), cfg()).unwrap();
    assert_eq!(clone.last_seq(), 10);
    for i in 0..10 {
        assert!(clone
            .get(format!("key-{i:04}").as_bytes(), 0)
            .unwrap()
            .value
            .is_some());
    }
    assert!(clone.get(b"torn", 0).unwrap().value.is_none());
}
