//! Binary encoding primitives: LEB128 varints and CRC-32 (IEEE).
//!
//! Implemented in-tree to keep the dependency set to the sanctioned crates;
//! both are small, standard algorithms with exhaustive tests below.

use crate::error::{Error, Result};

/// Append `v` as an LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decode an LEB128 varint from `buf[*pos..]`, advancing `pos`.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut shift = 0u32;
    let mut out = 0u64;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| Error::Corruption("truncated varint".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(Error::Corruption("varint overflow".into()));
        }
        out |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

/// Append a length-prefixed byte slice.
pub fn put_len_prefixed(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_varint(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

/// Decode a length-prefixed byte slice from `buf[*pos..]`, advancing `pos`.
pub fn get_len_prefixed<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a [u8]> {
    let len = get_varint(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .ok_or_else(|| Error::Corruption("length overflow".into()))?;
    if end > buf.len() {
        return Err(Error::Corruption("truncated byte slice".into()));
    }
    let out = &buf[*pos..end];
    *pos = end;
    Ok(out)
}

/// Append a fixed little-endian u32.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Decode a fixed little-endian u32.
pub fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let end = *pos + 4;
    if end > buf.len() {
        return Err(Error::Corruption("truncated u32".into()));
    }
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(u32::from_le_bytes(b))
}

/// Append a fixed little-endian u64.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Decode a fixed little-endian u64.
pub fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let end = *pos + 8;
    if end > buf.len() {
        return Err(Error::Corruption("truncated u64".into()));
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(u64::from_le_bytes(b))
}

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    });
    for &b in data {
        crc = table[((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let cases = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &cases {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_truncation_detected() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1 << 40);
        buf.truncate(buf.len() - 1);
        let mut pos = 0;
        assert!(get_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn len_prefixed_roundtrip() {
        let mut buf = Vec::new();
        put_len_prefixed(&mut buf, b"hello");
        put_len_prefixed(&mut buf, b"");
        let mut pos = 0;
        assert_eq!(get_len_prefixed(&buf, &mut pos).unwrap(), b"hello");
        assert_eq!(get_len_prefixed(&buf, &mut pos).unwrap(), b"");
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn len_prefixed_rejects_overrun() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 100); // claims 100 bytes, provides none
        let mut pos = 0;
        assert!(get_len_prefixed(&buf, &mut pos).is_err());
    }

    #[test]
    fn fixed_ints_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, 0x0123_4567_89AB_CDEF);
        let mut pos = 0;
        assert_eq!(get_u32(&buf, &mut pos).unwrap(), 0xDEAD_BEEF);
        assert_eq!(get_u64(&buf, &mut pos).unwrap(), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: "123456789" → 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Sensitivity: one flipped bit changes the sum.
        assert_ne!(crc32(b"hello"), crc32(b"hellp"));
    }
}
