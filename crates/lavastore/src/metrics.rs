//! LavaStore's metric declarations: one place naming every storage-layer
//! metric so `crates/obs/README.md` and the exposition stay in sync.
//!
//! Recording sites live where the work happens (`wal.rs`, `db.rs`); this
//! module only owns the `static` handles.

use abase_obs::{LazyCounter, LazyGauge, LazyHisto};

/// WAL append latency (frame build + buffered write + optional fsync).
pub static WAL_APPEND_MICROS: LazyHisto = LazyHisto::new(
    "abase_lava_wal_append_micros",
    "WAL append latency, including fsync when sync-on-append is set",
);

/// Total WAL bytes appended (frame bytes, including headers).
pub static WAL_APPEND_BYTES: LazyCounter = LazyCounter::new(
    "abase_lava_wal_append_bytes_total",
    "WAL bytes appended, including frame headers",
);

/// WAL fsync latency (the flush + sync_data pair on durable appends).
pub static WAL_FSYNC_MICROS: LazyHisto = LazyHisto::new(
    "abase_lava_wal_fsync_micros",
    "WAL fsync latency on durable appends",
);

/// Group-commit fsyncs issued (each may cover many commits).
pub static GROUP_COMMIT_FSYNCS: LazyCounter = LazyCounter::new(
    "abase_lava_group_commit_fsyncs_total",
    "Group-commit fsyncs issued; commits_total / fsyncs_total is the amortization factor",
);

/// Durable commits acknowledged (appends whose seq an fsync covered).
pub static GROUP_COMMIT_COMMITS: LazyCounter = LazyCounter::new(
    "abase_lava_group_commit_commits_total",
    "Durable commits acknowledged by the group-commit WAL",
);

/// Frames covered per group-commit fsync (batch size).
pub static GROUP_COMMIT_BATCH_FRAMES: LazyHisto = LazyHisto::new(
    "abase_lava_group_commit_batch_frames",
    "WAL frames made durable per group-commit fsync",
);

/// Memtable flushes completed.
pub static FLUSHES: LazyCounter = LazyCounter::new(
    "abase_lava_flushes_total",
    "Memtable flushes into L0 SSTs completed",
);

/// Bytes written to SSTs by flushes.
pub static FLUSH_BYTES: LazyCounter = LazyCounter::new(
    "abase_lava_flush_bytes_total",
    "SST bytes written by memtable flushes",
);

/// Flush latency (memtable freeze through SST install).
pub static FLUSH_MICROS: LazyHisto =
    LazyHisto::new("abase_lava_flush_micros", "Memtable flush latency");

/// Compactions completed.
pub static COMPACTIONS: LazyCounter =
    LazyCounter::new("abase_lava_compactions_total", "Compactions completed");

/// Bytes written by compactions.
pub static COMPACTION_BYTES: LazyCounter = LazyCounter::new(
    "abase_lava_compaction_bytes_total",
    "SST bytes written by compactions",
);

/// Block-cache lookups that found the block resident.
pub static BLOCK_CACHE_HITS: LazyCounter = LazyCounter::new(
    "abase_block_cache_hits_total",
    "Data-block cache lookups served without disk I/O",
);

/// Block-cache lookups that fell through to disk.
pub static BLOCK_CACHE_MISSES: LazyCounter = LazyCounter::new(
    "abase_block_cache_misses_total",
    "Data-block cache lookups that required a disk read",
);

/// Blocks inserted into the cache after a miss.
pub static BLOCK_CACHE_INSERTIONS: LazyCounter = LazyCounter::new(
    "abase_block_cache_insertions_total",
    "Data blocks inserted into the block cache",
);

/// Blocks evicted by the size-aware policy.
pub static BLOCK_CACHE_EVICTIONS: LazyCounter = LazyCounter::new(
    "abase_block_cache_evictions_total",
    "Data blocks evicted from the block cache",
);

/// Bytes resident in the block cache (data blocks + pinned index/filter).
pub static BLOCK_CACHE_BYTES: LazyGauge = LazyGauge::new(
    "abase_block_cache_bytes",
    "Bytes resident in the block cache, including pinned index and bloom blocks",
);

/// Bloom filter probes on the point-read path.
pub static BLOOM_CHECKS: LazyCounter = LazyCounter::new(
    "abase_bloom_checks_total",
    "Bloom filter probes performed by in-range point reads",
);

/// Bloom probes that answered "definitely absent" (saved a block read).
pub static BLOOM_NEGATIVES: LazyCounter = LazyCounter::new(
    "abase_bloom_negatives_total",
    "Bloom probes that short-circuited a point read without block I/O",
);

/// Bloom probes that said "maybe" for a key the block search then missed.
pub static BLOOM_FALSE_POSITIVES: LazyCounter = LazyCounter::new(
    "abase_bloom_false_positives_total",
    "Bloom probes that cost a block read for an absent key",
);

/// Checkpoints published.
pub static CHECKPOINTS: LazyCounter = LazyCounter::new(
    "abase_lava_checkpoints_total",
    "Consistent checkpoints published",
);

/// How long checkpoint pins were held (pin → release), i.e. how long
/// obsolete files were retained for a checkpoint consumer.
pub static CHECKPOINT_PIN_MICROS: LazyHisto = LazyHisto::new(
    "abase_lava_checkpoint_pin_micros",
    "Duration checkpoint pins were held before release",
);
