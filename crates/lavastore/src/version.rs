//! LSM version state and the manifest.
//!
//! A [`Version`] is the authoritative list of live SST files per level plus
//! the engine's id/sequence counters. Every mutation (flush, compaction) is
//! persisted by atomically rewriting the manifest file (write-temp + rename),
//! so a crash leaves either the old or the new version, never a torn one.

use crate::encoding::{
    crc32, get_len_prefixed, get_u32, get_u64, get_varint, put_len_prefixed, put_u32, put_u64,
    put_varint,
};
use crate::error::{Error, Result};
use bytes::Bytes;
use std::path::Path;

const MANIFEST_MAGIC: u32 = 0xAB5E_3514;

/// Metadata for one live SST file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SstMeta {
    /// File id (names the file `<id>.sst`).
    pub id: u64,
    /// LSM level.
    pub level: u32,
    /// Engine stripe that owns this file: flushes and compactions stay
    /// within one stripe, so reopening a striped database can hand every
    /// file straight back to its stripe.
    pub stripe: u32,
    /// Smallest user key.
    pub min_key: Bytes,
    /// Largest user key.
    pub max_key: Bytes,
    /// File size in bytes.
    pub file_size: u64,
    /// Record count.
    pub record_count: u64,
}

impl SstMeta {
    /// True if this file's key range intersects `[min, max]`.
    pub fn overlaps(&self, min: &[u8], max: &[u8]) -> bool {
        !(self.max_key.as_ref() < min || self.min_key.as_ref() > max)
    }
}

/// The live file set and engine counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Version {
    /// `levels[l]` = files at level `l`. L0 may overlap; L1+ are disjoint and
    /// sorted by `min_key`.
    pub levels: Vec<Vec<SstMeta>>,
    /// Next SST/WAL file id to allocate.
    pub next_file_id: u64,
    /// Next record sequence number.
    pub next_seq: u64,
    /// First WAL segment id whose records are *not* fully persisted in SSTs.
    /// Recovery replays segments from here; older segments still on disk are
    /// a retained backlog for replication tail readers.
    pub wal_floor: u64,
    /// Stripe count the database was created with. Keys hash to stripes, so
    /// the count is fixed at creation and persisted here; reopening always
    /// uses the manifest's value regardless of the caller's config.
    pub n_stripes: u32,
}

impl Version {
    /// An empty version with `n_levels` levels (single-stripe by default;
    /// [`crate::db::Db`] sets `n_stripes` when creating a fresh database).
    pub fn new(n_levels: usize) -> Self {
        Self {
            levels: vec![Vec::new(); n_levels],
            next_file_id: 1,
            next_seq: 1,
            wal_floor: 0,
            n_stripes: 1,
        }
    }

    /// Allocate a fresh file id.
    pub fn allocate_file_id(&mut self) -> u64 {
        let id = self.next_file_id;
        self.next_file_id += 1;
        id
    }

    /// Register a file at its level. L1+ levels are kept sorted by `min_key`.
    pub fn add_file(&mut self, meta: SstMeta) {
        let level = meta.level as usize;
        assert!(level < self.levels.len(), "level out of range");
        let files = &mut self.levels[level];
        files.push(meta);
        if level == 0 {
            // L0: newest (largest id) first — read path must check newest first.
            files.sort_by_key(|m| std::cmp::Reverse(m.id));
        } else {
            files.sort_by(|a, b| a.min_key.cmp(&b.min_key));
        }
    }

    /// Remove a file by id from any level; returns true if found.
    pub fn remove_file(&mut self, id: u64) -> bool {
        for files in &mut self.levels {
            if let Some(pos) = files.iter().position(|m| m.id == id) {
                files.remove(pos);
                return true;
            }
        }
        false
    }

    /// All files at `level` intersecting `[min, max]`.
    pub fn overlapping(&self, level: usize, min: &[u8], max: &[u8]) -> Vec<&SstMeta> {
        self.levels[level]
            .iter()
            .filter(|m| m.overlaps(min, max))
            .collect()
    }

    /// Total bytes at `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.levels[level].iter().map(|m| m.file_size).sum()
    }

    /// Total live SST bytes.
    pub fn total_bytes(&self) -> u64 {
        (0..self.levels.len()).map(|l| self.level_bytes(l)).sum()
    }

    /// Total live files.
    pub fn file_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Serialize the version.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        put_u64(&mut body, self.next_file_id);
        put_u64(&mut body, self.next_seq);
        put_u64(&mut body, self.wal_floor);
        put_u32(&mut body, self.n_stripes);
        put_varint(&mut body, self.levels.len() as u64);
        for files in &self.levels {
            put_varint(&mut body, files.len() as u64);
            for m in files {
                put_u64(&mut body, m.id);
                put_u32(&mut body, m.level);
                put_u32(&mut body, m.stripe);
                put_len_prefixed(&mut body, &m.min_key);
                put_len_prefixed(&mut body, &m.max_key);
                put_u64(&mut body, m.file_size);
                put_u64(&mut body, m.record_count);
            }
        }
        let mut out = Vec::with_capacity(body.len() + 12);
        put_u32(&mut out, MANIFEST_MAGIC);
        put_u32(&mut out, crc32(&body));
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        out
    }

    /// Deserialize a version.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let magic = get_u32(data, &mut pos)?;
        if magic != MANIFEST_MAGIC {
            return Err(Error::Corruption("bad manifest magic".into()));
        }
        let crc = get_u32(data, &mut pos)?;
        let len = get_u32(data, &mut pos)? as usize;
        if pos + len > data.len() {
            return Err(Error::Corruption("truncated manifest".into()));
        }
        let body = &data[pos..pos + len];
        if crc32(body) != crc {
            return Err(Error::Corruption("manifest crc mismatch".into()));
        }
        let mut pos = 0usize;
        let next_file_id = get_u64(body, &mut pos)?;
        let next_seq = get_u64(body, &mut pos)?;
        let wal_floor = get_u64(body, &mut pos)?;
        let n_stripes = get_u32(body, &mut pos)?;
        let n_levels = get_varint(body, &mut pos)? as usize;
        let mut levels = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            let n_files = get_varint(body, &mut pos)? as usize;
            let mut files = Vec::with_capacity(n_files);
            for _ in 0..n_files {
                let id = get_u64(body, &mut pos)?;
                let level = get_u32(body, &mut pos)?;
                let stripe = get_u32(body, &mut pos)?;
                let min_key = Bytes::copy_from_slice(get_len_prefixed(body, &mut pos)?);
                let max_key = Bytes::copy_from_slice(get_len_prefixed(body, &mut pos)?);
                let file_size = get_u64(body, &mut pos)?;
                let record_count = get_u64(body, &mut pos)?;
                files.push(SstMeta {
                    id,
                    level,
                    stripe,
                    min_key,
                    max_key,
                    file_size,
                    record_count,
                });
            }
            levels.push(files);
        }
        Ok(Self {
            levels,
            next_file_id,
            next_seq,
            wal_floor,
            n_stripes,
        })
    }

    /// Atomically persist the manifest into `dir`.
    pub fn save(&self, dir: &Path) -> Result<()> {
        let tmp = dir.join("MANIFEST.tmp");
        let final_path = dir.join("MANIFEST");
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, &final_path)?;
        Ok(())
    }

    /// Load the manifest from `dir`; `Ok(None)` if none exists yet.
    pub fn load(dir: &Path) -> Result<Option<Self>> {
        let path = dir.join("MANIFEST");
        match std::fs::read(&path) {
            Ok(data) => Ok(Some(Self::decode(&data)?)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u64, level: u32, min: &str, max: &str) -> SstMeta {
        SstMeta {
            id,
            level,
            stripe: 0,
            min_key: Bytes::copy_from_slice(min.as_bytes()),
            max_key: Bytes::copy_from_slice(max.as_bytes()),
            file_size: 1000,
            record_count: 10,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut v = Version::new(4);
        v.next_seq = 42;
        v.add_file(meta(1, 0, "a", "m"));
        v.add_file(meta(2, 0, "c", "z"));
        v.add_file(meta(3, 1, "a", "f"));
        v.add_file(meta(4, 1, "g", "p"));
        let decoded = Version::decode(&v.encode()).unwrap();
        assert_eq!(decoded, v);
    }

    #[test]
    fn l0_sorted_newest_first_l1_by_key() {
        let mut v = Version::new(2);
        v.add_file(meta(1, 0, "a", "b"));
        v.add_file(meta(5, 0, "a", "b"));
        v.add_file(meta(3, 0, "a", "b"));
        let ids: Vec<_> = v.levels[0].iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![5, 3, 1]);
        v.add_file(meta(10, 1, "m", "p"));
        v.add_file(meta(11, 1, "a", "c"));
        let mins: Vec<_> = v.levels[1].iter().map(|m| m.min_key.clone()).collect();
        assert_eq!(mins, vec![Bytes::from("a"), Bytes::from("m")]);
    }

    #[test]
    fn overlap_queries() {
        let mut v = Version::new(2);
        v.add_file(meta(1, 1, "a", "f"));
        v.add_file(meta(2, 1, "g", "p"));
        let hits = v.overlapping(1, b"e", b"h");
        assert_eq!(hits.len(), 2);
        let hits = v.overlapping(1, b"q", b"z");
        assert!(hits.is_empty());
    }

    #[test]
    fn remove_file_works() {
        let mut v = Version::new(2);
        v.add_file(meta(1, 0, "a", "b"));
        assert!(v.remove_file(1));
        assert!(!v.remove_file(1));
        assert_eq!(v.file_count(), 0);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "abase-manifest-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mut v = Version::new(3);
        v.add_file(meta(7, 1, "k1", "k9"));
        v.save(&dir).unwrap();
        let loaded = Version::load(&dir).unwrap().unwrap();
        assert_eq!(loaded, v);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_is_none() {
        let dir = std::env::temp_dir().join(format!(
            "abase-manifest-none-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Version::load(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_detected() {
        let mut v = Version::new(1);
        v.add_file(meta(1, 0, "a", "b"));
        let mut data = v.encode();
        let n = data.len();
        data[n - 1] ^= 0xFF;
        assert!(Version::decode(&data).is_err());
    }

    #[test]
    fn byte_accounting() {
        let mut v = Version::new(2);
        v.add_file(meta(1, 0, "a", "b"));
        v.add_file(meta(2, 1, "c", "d"));
        assert_eq!(v.level_bytes(0), 1000);
        assert_eq!(v.total_bytes(), 2000);
    }
}
