//! The shared data-block cache for SST readers.
//!
//! One [`BlockCache`] is shared by **every stripe** of a [`crate::Db`] (and by
//! every SST reader those stripes open), so the byte budget is global and the
//! hottest blocks win regardless of which stripe owns them. Internally it is a
//! lock-striped SA-LRU ([`abase_cache::ShardedCache`], paper §4.4's size-aware
//! policy) keyed by `(file_id, block_offset)` and storing `Arc<[u8]>` blocks —
//! a hit clones a pointer, never the block.
//!
//! # Immutable-file keying
//!
//! SST files are immutable: once written they are only ever deleted, never
//! modified. The cache therefore needs **no invalidation path** — only
//! eviction. The one hazard is file-id aliasing: manifest file ids restart
//! per database, so keying by manifest id would let a block cached by one
//! `Db` instance (or a deleted-then-recreated id after reopen) serve reads
//! for a different file's bytes. Every [`crate::sstable::SstReader`] therefore
//! draws a **process-unique** id from [`BlockCache::next_file_id`] at open
//! time; a new reader for the same path gets a new id and simply re-faults
//! its blocks in.
//!
//! Index and bloom blocks are *pinned*: they live in reader memory for the
//! reader's whole lifetime (never evictable), and readers report those bytes
//! here so the resident-bytes gauge covers everything the cache layer holds.

use crate::metrics;
use abase_cache::{CacheStats, ShardedCache};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Process-unique SST reader ids; see the module docs on aliasing.
static NEXT_FILE_ID: AtomicU64 = AtomicU64::new(1);

/// Default shard count: enough stripes that 8–16 reader threads rarely
/// collide, cheap enough that tiny test caches still work.
const DEFAULT_SHARDS: usize = 16;

/// A thread-safe, byte-bounded cache of SST data blocks.
#[derive(Debug)]
pub struct BlockCache {
    blocks: ShardedCache<(u64, u64), Arc<[u8]>>,
    /// Bytes held by open readers for pinned index/bloom blocks.
    pinned: AtomicI64,
}

impl BlockCache {
    /// A cache holding at most `capacity_bytes` of data blocks.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            blocks: ShardedCache::new(capacity_bytes, DEFAULT_SHARDS),
            pinned: AtomicI64::new(0),
        }
    }

    /// Allocate a process-unique file id for a newly opened reader.
    pub fn next_file_id() -> u64 {
        NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed)
    }

    /// Look up the block at `offset` of `file_id`.
    pub fn get(&self, file_id: u64, offset: u64) -> Option<Arc<[u8]>> {
        let block = self.blocks.get(&(file_id, offset));
        match &block {
            Some(_) => metrics::BLOCK_CACHE_HITS.inc(),
            None => metrics::BLOCK_CACHE_MISSES.inc(),
        }
        block
    }

    /// Insert a block read from disk.
    pub fn insert(&self, file_id: u64, offset: u64, block: Arc<[u8]>) {
        let size = block.len();
        let outcome = self.blocks.insert((file_id, offset), block, size);
        if outcome.admitted {
            metrics::BLOCK_CACHE_INSERTIONS.inc();
        }
        if !outcome.evicted.is_empty() {
            metrics::BLOCK_CACHE_EVICTIONS.add(outcome.evicted.len() as u64);
        }
        metrics::BLOCK_CACHE_BYTES.set(self.resident_bytes() as i64);
    }

    /// Account `bytes` of pinned index/bloom data for an opening reader.
    pub fn add_pinned(&self, bytes: usize) {
        self.pinned.fetch_add(bytes as i64, Ordering::Relaxed);
        metrics::BLOCK_CACHE_BYTES.set(self.resident_bytes() as i64);
    }

    /// Release pinned bytes when a reader drops.
    pub fn sub_pinned(&self, bytes: usize) {
        self.pinned.fetch_sub(bytes as i64, Ordering::Relaxed);
        metrics::BLOCK_CACHE_BYTES.set(self.resident_bytes() as i64);
    }

    /// Bytes held for pinned index/bloom blocks across open readers.
    pub fn pinned_bytes(&self) -> u64 {
        self.pinned.load(Ordering::Relaxed).max(0) as u64
    }

    /// Total resident bytes: cached data blocks plus pinned index/bloom.
    pub fn resident_bytes(&self) -> u64 {
        self.blocks.used_bytes() as u64 + self.pinned_bytes()
    }

    /// Configured data-block capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.blocks.capacity_bytes() as u64
    }

    /// Merged hit/miss counters — the same [`CacheStats`] shape the proxy
    /// AU-LRU and node SA-LRU expose.
    pub fn stats(&self) -> CacheStats {
        self.blocks.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_ids_are_unique() {
        let a = BlockCache::next_file_id();
        let b = BlockCache::next_file_id();
        assert_ne!(a, b);
    }

    #[test]
    fn hit_miss_and_resident_accounting() {
        let cache = BlockCache::new(1 << 20);
        assert!(cache.get(1, 0).is_none());
        cache.insert(1, 0, vec![7u8; 512].into());
        let block = cache.get(1, 0).expect("inserted block is resident");
        assert_eq!(block.len(), 512);
        assert_eq!(cache.resident_bytes(), 512);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn same_offset_different_file_ids_do_not_alias() {
        let cache = BlockCache::new(1 << 20);
        cache.insert(1, 0, vec![1u8; 64].into());
        cache.insert(2, 0, vec![2u8; 64].into());
        assert_eq!(cache.get(1, 0).unwrap()[0], 1);
        assert_eq!(cache.get(2, 0).unwrap()[0], 2);
    }

    #[test]
    fn pinned_bytes_tracked() {
        let cache = BlockCache::new(1 << 20);
        cache.add_pinned(1000);
        assert_eq!(cache.pinned_bytes(), 1000);
        assert_eq!(cache.resident_bytes(), 1000);
        cache.sub_pinned(1000);
        assert_eq!(cache.pinned_bytes(), 0);
    }
}
