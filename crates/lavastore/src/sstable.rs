//! Sorted string table (SST) files.
//!
//! Layout (all little-endian):
//!
//! ```text
//! [data block 0][data block 1]...[properties][footer]
//! block: [records][restart u32 × n][n u32]   (every record is a restart point)
//! footer (20 bytes): props_offset u64 | props_len u32 | props_crc u32 | magic u32
//! ```
//!
//! The *properties* region holds the record count, the key range, the block
//! index (`last_key, offset, len` per block), and the bloom filter — everything
//! a reader keeps **pinned** in memory for its whole lifetime. Point reads
//! therefore cost exactly **one block I/O** (or zero on a bloom miss or a
//! block-cache hit), the constant the I/O-WFQ's Rule 1 relies on. Within a
//! block, the restart-point trailer lets point reads binary-search record
//! offsets instead of decoding the block front to back.

use crate::block_cache::BlockCache;
use crate::bloom::BloomFilter;
use crate::encoding::{
    crc32, get_len_prefixed, get_u32, get_u64, get_varint, put_len_prefixed, put_u32, put_u64,
    put_varint,
};
use crate::error::{Error, Result};
use crate::record::Record;
use bytes::Bytes;
use std::fs::File;
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const MAGIC: u32 = 0xAB5E_557A;
const FOOTER_LEN: usize = 20;

/// Index entry for one data block.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BlockHandle {
    last_key: Bytes,
    offset: u64,
    len: u32,
}

/// Writes a sorted record stream into an SST file.
#[derive(Debug)]
pub struct SstWriter {
    path: PathBuf,
    file: File,
    block: Vec<u8>,
    /// Start offset of every record in the current block (restart points).
    restarts: Vec<u32>,
    block_target: usize,
    offset: u64,
    handles: Vec<BlockHandle>,
    bloom: BloomFilter,
    record_count: u64,
    min_key: Option<Bytes>,
    max_key: Option<Bytes>,
    last_key_in_block: Option<Bytes>,
}

impl SstWriter {
    /// Start writing an SST at `path`. `expected_records` sizes the bloom
    /// filter; `block_target` is the uncompressed block size goal.
    pub fn create(
        path: &Path,
        expected_records: usize,
        bloom_bits_per_key: usize,
        block_target: usize,
    ) -> Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            block: Vec::with_capacity(block_target * 2),
            restarts: Vec::new(),
            block_target,
            offset: 0,
            handles: Vec::new(),
            bloom: BloomFilter::with_capacity(expected_records, bloom_bits_per_key),
            record_count: 0,
            min_key: None,
            max_key: None,
            last_key_in_block: None,
        })
    }

    /// Append the next record; records must arrive in ascending key order.
    ///
    /// # Panics
    /// Debug-asserts key ordering.
    pub fn add(&mut self, record: &Record) -> Result<()> {
        debug_assert!(
            self.max_key.as_ref().is_none_or(|m| m < &record.key),
            "records must be added in strictly ascending key order"
        );
        if self.min_key.is_none() {
            self.min_key = Some(record.key.clone());
        }
        self.max_key = Some(record.key.clone());
        self.bloom.insert(&record.key);
        self.restarts.push(self.block.len() as u32);
        record.encode(&mut self.block);
        self.last_key_in_block = Some(record.key.clone());
        self.record_count += 1;
        if self.block.len() >= self.block_target {
            self.finish_block()?;
        }
        Ok(())
    }

    fn finish_block(&mut self) -> Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        let last_key = self
            .last_key_in_block
            .take()
            // INVARIANT: `add` records a last key with every entry, and the
            // empty-block case returned above.
            .expect("non-empty block has a last key");
        // Restart-point trailer: record start offsets + their count, so
        // readers can binary-search the block instead of scanning it.
        for &r in &self.restarts {
            put_u32(&mut self.block, r);
        }
        put_u32(&mut self.block, self.restarts.len() as u32);
        self.file.write_all(&self.block)?;
        self.handles.push(BlockHandle {
            last_key,
            offset: self.offset,
            len: self.block.len() as u32,
        });
        self.offset += self.block.len() as u64;
        self.block.clear();
        self.restarts.clear();
        Ok(())
    }

    /// Finish the file: write properties + footer, fsync, and return the
    /// metadata needed by the manifest.
    pub fn finish(mut self) -> Result<SstFileInfo> {
        self.finish_block()?;
        let mut props = Vec::new();
        put_u64(&mut props, self.record_count);
        let min_key = self.min_key.clone().unwrap_or_default();
        let max_key = self.max_key.clone().unwrap_or_default();
        put_len_prefixed(&mut props, &min_key);
        put_len_prefixed(&mut props, &max_key);
        put_varint(&mut props, self.handles.len() as u64);
        for h in &self.handles {
            put_len_prefixed(&mut props, &h.last_key);
            put_u64(&mut props, h.offset);
            put_u32(&mut props, h.len);
        }
        self.bloom.encode(&mut props);
        let props_offset = self.offset;
        let props_crc = crc32(&props);
        self.file.write_all(&props)?;
        let mut footer = Vec::with_capacity(FOOTER_LEN);
        put_u64(&mut footer, props_offset);
        put_u32(&mut footer, props.len() as u32);
        put_u32(&mut footer, props_crc);
        put_u32(&mut footer, MAGIC);
        self.file.write_all(&footer)?;
        self.file.sync_data()?;
        let file_size = props_offset + props.len() as u64 + FOOTER_LEN as u64;
        Ok(SstFileInfo {
            path: self.path,
            file_size,
            record_count: self.record_count,
            min_key,
            max_key,
        })
    }
}

/// Metadata returned when an SST finishes writing.
#[derive(Debug, Clone)]
pub struct SstFileInfo {
    /// Where the file was written.
    pub path: PathBuf,
    /// Total file size in bytes.
    pub file_size: u64,
    /// Number of records.
    pub record_count: u64,
    /// Smallest user key.
    pub min_key: Bytes,
    /// Largest user key.
    pub max_key: Bytes,
}

/// Block accesses performed by one reader operation, split by source so the
/// data node can distinguish real disk I/O from zero-copy cache hits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockIo {
    /// Blocks read from disk.
    pub disk: u32,
    /// Blocks served by the block cache.
    pub cached: u32,
}

impl BlockIo {
    /// Total block accesses (the quantity Rule 1 prices as one I/O each).
    pub fn total(&self) -> u32 {
        self.disk + self.cached
    }

    /// Fold another operation's counts into this one.
    pub fn absorb(&mut self, other: BlockIo) {
        self.disk += other.disk;
        self.cached += other.cached;
    }
}

/// Parsed view of one data block: the record region plus the restart-point
/// offsets the writer appended as a trailer.
struct BlockView<'a> {
    /// Record bytes only (the trailer is sliced off).
    data: &'a [u8],
    /// `n` restart offsets, 4 bytes each, little-endian.
    restarts: &'a [u8],
}

impl<'a> BlockView<'a> {
    fn parse(block: &'a [u8]) -> Result<Self> {
        if block.len() < 4 {
            return Err(Error::Corruption("block shorter than restart count".into()));
        }
        let mut pos = block.len() - 4;
        let n = get_u32(block, &mut pos)? as usize;
        let trailer = 4 + n * 4;
        if block.len() < trailer {
            return Err(Error::Corruption(
                "block shorter than restart trailer".into(),
            ));
        }
        let data_end = block.len() - trailer;
        Ok(Self {
            data: &block[..data_end],
            restarts: &block[data_end..block.len() - 4],
        })
    }

    /// Number of records in the block.
    fn len(&self) -> usize {
        self.restarts.len() / 4
    }

    /// Byte offset of record `i` within the record region.
    fn offset(&self, i: usize) -> Result<usize> {
        let mut pos = i * 4;
        Ok(get_u32(self.restarts, &mut pos)? as usize)
    }

    /// Key of record `i`, read without decoding the rest of the record.
    fn key_at(&self, i: usize) -> Result<&'a [u8]> {
        let mut pos = self.offset(i)?;
        get_len_prefixed(self.data, &mut pos)
    }
}

/// Reads point and range queries from one SST file.
#[derive(Debug)]
pub struct SstReader {
    file: File,
    handles: Vec<BlockHandle>,
    bloom: BloomFilter,
    record_count: u64,
    min_key: Bytes,
    max_key: Bytes,
    /// Process-unique id naming this reader's blocks in the shared cache.
    /// Never the manifest file id: manifest ids restart per database, and an
    /// aliased id would let stale blocks from a previous instance answer
    /// reads for a different file (see `block_cache` module docs).
    file_id: u64,
    cache: Option<Arc<BlockCache>>,
    /// Bytes of index + bloom pinned in memory for this reader's lifetime.
    pinned_bytes: usize,
    /// Data-block reads served from disk by this reader (I/O accounting).
    block_reads: AtomicU64,
    /// Point lookups short-circuited by the bloom filter.
    bloom_skips: AtomicU64,
}

impl SstReader {
    /// Open an SST file with no block cache (blocks are read from disk every
    /// time). Equivalent to `open_cached(path, None)`.
    pub fn open(path: &Path) -> Result<Self> {
        Self::open_cached(path, None)
    }

    /// Open an SST file, loading (and pinning) its index and bloom filter in
    /// memory, and routing data-block reads through `cache` when given.
    pub fn open_cached(path: &Path, cache: Option<Arc<BlockCache>>) -> Result<Self> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < FOOTER_LEN as u64 {
            return Err(Error::Corruption("sst shorter than footer".into()));
        }
        let mut footer = [0u8; FOOTER_LEN];
        file.read_exact_at(&mut footer, file_len - FOOTER_LEN as u64)?;
        let mut pos = 0usize;
        let props_offset = get_u64(&footer, &mut pos)?;
        let props_len = get_u32(&footer, &mut pos)? as usize;
        let props_crc = get_u32(&footer, &mut pos)?;
        let magic = get_u32(&footer, &mut pos)?;
        if magic != MAGIC {
            return Err(Error::Corruption("bad sst magic".into()));
        }
        let mut props = vec![0u8; props_len];
        file.read_exact_at(&mut props, props_offset)?;
        if crc32(&props) != props_crc {
            return Err(Error::Corruption("sst properties crc mismatch".into()));
        }
        let mut pos = 0usize;
        let record_count = get_u64(&props, &mut pos)?;
        let min_key = Bytes::copy_from_slice(get_len_prefixed(&props, &mut pos)?);
        let max_key = Bytes::copy_from_slice(get_len_prefixed(&props, &mut pos)?);
        let n_handles = get_varint(&props, &mut pos)? as usize;
        let mut handles = Vec::with_capacity(n_handles);
        for _ in 0..n_handles {
            let last_key = Bytes::copy_from_slice(get_len_prefixed(&props, &mut pos)?);
            let offset = get_u64(&props, &mut pos)?;
            let len = get_u32(&props, &mut pos)?;
            handles.push(BlockHandle {
                last_key,
                offset,
                len,
            });
        }
        let bloom = BloomFilter::decode(&props, &mut pos)?;
        // The whole properties region (index + bloom + key range) stays in
        // reader memory for the reader's lifetime — these are the "pinned"
        // index/filter blocks; account them to the cache's resident gauge.
        let pinned_bytes = props_len;
        if let Some(cache) = &cache {
            cache.add_pinned(pinned_bytes);
        }
        Ok(Self {
            file,
            handles,
            bloom,
            record_count,
            min_key,
            max_key,
            file_id: BlockCache::next_file_id(),
            cache,
            pinned_bytes,
            block_reads: AtomicU64::new(0),
            bloom_skips: AtomicU64::new(0),
        })
    }

    /// Number of records in the file.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Smallest user key in the file.
    pub fn min_key(&self) -> &Bytes {
        &self.min_key
    }

    /// Largest user key in the file.
    pub fn max_key(&self) -> &Bytes {
        &self.max_key
    }

    /// Data-block reads performed so far.
    pub fn block_reads(&self) -> u64 {
        self.block_reads.load(Ordering::Relaxed)
    }

    /// Point lookups answered "absent" by the bloom filter alone.
    pub fn bloom_skips(&self) -> u64 {
        self.bloom_skips.load(Ordering::Relaxed)
    }

    /// True if `key` falls inside this file's `[min, max]` key range.
    pub fn key_in_range(&self, key: &[u8]) -> bool {
        key >= &self.min_key[..] && key <= &self.max_key[..]
    }

    /// Fetch one data block: cache first (when attached), then disk.
    /// `fill` controls whether a disk read populates the cache — bulk scans
    /// (compaction) pass `false` so one-shot reads of soon-dead files don't
    /// flush the hot set.
    fn read_block(&self, handle: &BlockHandle, fill: bool) -> Result<(Arc<[u8]>, BlockIo)> {
        if let Some(cache) = &self.cache {
            if let Some(block) = cache.get(self.file_id, handle.offset) {
                return Ok((block, BlockIo { disk: 0, cached: 1 }));
            }
        }
        let mut buf = vec![0u8; handle.len as usize];
        self.file.read_exact_at(&mut buf, handle.offset)?;
        self.block_reads.fetch_add(1, Ordering::Relaxed);
        let block: Arc<[u8]> = buf.into();
        if fill {
            if let Some(cache) = &self.cache {
                cache.insert(self.file_id, handle.offset, Arc::clone(&block));
            }
        }
        Ok((block, BlockIo { disk: 1, cached: 0 }))
    }

    /// Point lookup. Returns the record plus the block accesses performed
    /// (zero on a bloom or range miss, one access — cached or disk — else).
    pub fn get(&self, key: &[u8]) -> Result<(Option<Record>, BlockIo)> {
        if !self.key_in_range(key) {
            return Ok((None, BlockIo::default()));
        }
        crate::metrics::BLOOM_CHECKS.inc();
        if !self.bloom.may_contain(key) {
            self.bloom_skips.fetch_add(1, Ordering::Relaxed);
            crate::metrics::BLOOM_NEGATIVES.inc();
            return Ok((None, BlockIo::default()));
        }
        // First block whose last_key >= key.
        let idx = self.handles.partition_point(|h| h.last_key.as_ref() < key);
        let Some(handle) = self.handles.get(idx) else {
            return Ok((None, BlockIo::default()));
        };
        let (block, io) = self.read_block(handle, true)?;
        let view = BlockView::parse(&block)?;
        // Binary search over restart points: probes touch only the key bytes;
        // the record (and its value) is decoded once, at the final offset.
        let mut lo = 0usize;
        let mut hi = view.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if view.key_at(mid)? < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < view.len() && view.key_at(lo)? == key {
            let mut pos = view.offset(lo)?;
            return Ok((Some(Record::decode(view.data, &mut pos)?), io));
        }
        // The filter said "maybe" but the block search came up empty.
        crate::metrics::BLOOM_FALSE_POSITIVES.inc();
        Ok((None, io))
    }

    /// Scan every record in key order (used by compaction and range reads).
    /// Reads check the cache but do not populate it (`fill = false`): a
    /// compaction input is about to be deleted.
    pub fn scan_all(&self) -> Result<Vec<Record>> {
        let mut out = Vec::with_capacity(self.record_count as usize);
        for handle in &self.handles {
            let (block, _) = self.read_block(handle, false)?;
            let view = BlockView::parse(&block)?;
            let mut pos = 0usize;
            while pos < view.data.len() {
                out.push(Record::decode(view.data, &mut pos)?);
            }
        }
        Ok(out)
    }

    /// Records whose key starts with `prefix`, in key order, plus the block
    /// accesses used.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<(Vec<Record>, BlockIo)> {
        if prefix > &self.max_key[..] || !self.prefix_may_overlap(prefix) {
            return Ok((Vec::new(), BlockIo::default()));
        }
        let mut out = Vec::new();
        let mut io = BlockIo::default();
        let start = self
            .handles
            .partition_point(|h| h.last_key.as_ref() < prefix);
        for handle in &self.handles[start..] {
            let (block, block_io) = self.read_block(handle, true)?;
            io.absorb(block_io);
            let view = BlockView::parse(&block)?;
            let mut pos = 0usize;
            let mut past_prefix = false;
            while pos < view.data.len() {
                // Peek the key first; decode the value only for records that
                // actually match the prefix.
                let record_start = pos;
                let key = Record::peek_key(view.data, &mut pos)?;
                if key.starts_with(prefix) {
                    let mut decode_pos = record_start;
                    out.push(Record::decode(view.data, &mut decode_pos)?);
                } else if key > prefix {
                    past_prefix = true;
                    break;
                }
            }
            if past_prefix {
                break;
            }
        }
        Ok((out, io))
    }

    fn prefix_may_overlap(&self, prefix: &[u8]) -> bool {
        // max_key >= prefix and min_key's first |prefix| bytes <= prefix.
        let head = &self.min_key[..self.min_key.len().min(prefix.len())];
        head <= prefix
    }
}

impl Drop for SstReader {
    fn drop(&mut self) {
        if let Some(cache) = &self.cache {
            cache.sub_pinned(self.pinned_bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "abase-sst-{tag}-{}-{:?}.sst",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn build_sst(path: &Path, n: usize) -> SstFileInfo {
        let mut w = SstWriter::create(path, n, 10, 256).unwrap();
        for i in 0..n {
            let key = format!("key-{i:06}");
            let value = format!("value-{i}");
            w.add(&Record::put(key, value, i as u64 + 1, None)).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn write_then_point_read() {
        let path = temp_path("point");
        let info = build_sst(&path, 500);
        assert_eq!(info.record_count, 500);
        let r = SstReader::open(&path).unwrap();
        let (rec, io) = r.get(b"key-000123").unwrap();
        assert_eq!(rec.unwrap().value, &b"value-123"[..]);
        assert_eq!(io, BlockIo { disk: 1, cached: 0 });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn absent_key_costs_no_io_via_bloom() {
        let path = temp_path("bloom");
        build_sst(&path, 500);
        let r = SstReader::open(&path).unwrap();
        let mut io_total = 0;
        for i in 0..200 {
            let (rec, io) = r.get(format!("missing-{i}").as_bytes()).unwrap();
            assert!(rec.is_none());
            io_total += io.total();
        }
        // Nearly all misses are range misses (prefix "missing" > "key-…" range)
        // or bloom-filtered; allow a small number of false positives.
        assert!(io_total <= 10, "io_total={io_total}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn in_range_absent_key_uses_bloom() {
        let path = temp_path("inrange");
        build_sst(&path, 500);
        let r = SstReader::open(&path).unwrap();
        let mut io_total = 0;
        for i in 0..200 {
            // Keys interleaved with existing ones, inside [min,max].
            let (rec, io) = r.get(format!("key-{i:06}x").as_bytes()).unwrap();
            assert!(rec.is_none());
            io_total += io.total();
        }
        assert!(io_total <= 20, "io_total={io_total}");
        assert!(r.bloom_skips() >= 180);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scan_all_returns_sorted_records() {
        let path = temp_path("scan");
        build_sst(&path, 300);
        let r = SstReader::open(&path).unwrap();
        let records = r.scan_all().unwrap();
        assert_eq!(records.len(), 300);
        assert!(records.windows(2).all(|w| w[0].key < w[1].key));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scan_prefix_selects_subset() {
        let path = temp_path("prefix");
        let mut w = SstWriter::create(&path, 10, 10, 128).unwrap();
        for (i, key) in ["a:1", "a:2", "b:1", "b:2", "c:1"].iter().enumerate() {
            w.add(&Record::put(*key, "v", i as u64 + 1, None)).unwrap();
        }
        w.finish().unwrap();
        let r = SstReader::open(&path).unwrap();
        let (records, _) = r.scan_prefix(b"b:").unwrap();
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|rec| rec.key.starts_with(b"b:")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn key_range_metadata_is_correct() {
        let path = temp_path("range");
        build_sst(&path, 100);
        let r = SstReader::open(&path).unwrap();
        assert_eq!(r.min_key(), &Bytes::from("key-000000"));
        assert_eq!(r.max_key(), &Bytes::from("key-000099"));
        assert!(r.key_in_range(b"key-000050"));
        assert!(!r.key_in_range(b"zzz"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_properties_detected() {
        let path = temp_path("corrupt");
        build_sst(&path, 50);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a byte inside the properties (just before the footer).
        let n = data.len();
        data[n - FOOTER_LEN - 5] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(SstReader::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_key_found_via_restart_binary_search() {
        // Exercise first/middle/last record of every block, plus probes that
        // land between keys, at both ends of the file, and on an empty-ish
        // boundary — the classic binary-search off-by-one sites.
        let path = temp_path("bsearch");
        build_sst(&path, 1000);
        let r = SstReader::open(&path).unwrap();
        for i in 0..1000 {
            let key = format!("key-{i:06}");
            let (rec, io) = r.get(key.as_bytes()).unwrap();
            assert_eq!(rec.expect(&key).value, format!("value-{i}").as_bytes());
            assert_eq!(io.total(), 1, "{key} cost more than one block access");
        }
        // Probes strictly between adjacent keys must miss without error.
        for i in (0..1000).step_by(97) {
            let (rec, _) = r.get(format!("key-{i:06}0").as_bytes()).unwrap();
            assert!(rec.is_none());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cached_reader_hits_after_first_read() {
        let path = temp_path("cached");
        build_sst(&path, 500);
        let cache = Arc::new(BlockCache::new(1 << 20));
        let r = SstReader::open_cached(&path, Some(Arc::clone(&cache))).unwrap();
        let (_, io) = r.get(b"key-000123").unwrap();
        assert_eq!(io, BlockIo { disk: 1, cached: 0 });
        let (rec, io) = r.get(b"key-000123").unwrap();
        assert_eq!(rec.unwrap().value, &b"value-123"[..]);
        assert_eq!(io, BlockIo { disk: 0, cached: 1 }, "second read not cached");
        assert_eq!(r.block_reads(), 1, "disk read counted twice");
        assert!(cache.resident_bytes() > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reader_drop_releases_pinned_bytes() {
        let path = temp_path("pinned");
        build_sst(&path, 200);
        let cache = Arc::new(BlockCache::new(1 << 20));
        {
            let _r = SstReader::open_cached(&path, Some(Arc::clone(&cache))).unwrap();
            assert!(cache.pinned_bytes() > 0, "index/bloom not pinned");
        }
        assert_eq!(cache.pinned_bytes(), 0, "drop leaked pinned bytes");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn two_readers_same_path_use_distinct_cache_keys() {
        // A reader reopened on the same path must never serve blocks cached
        // under a previous reader's id (file-id aliasing guard).
        let path = temp_path("alias");
        build_sst(&path, 300);
        let cache = Arc::new(BlockCache::new(1 << 20));
        let r1 = SstReader::open_cached(&path, Some(Arc::clone(&cache))).unwrap();
        let (_, io) = r1.get(b"key-000100").unwrap();
        assert_eq!(io.disk, 1);
        drop(r1);
        let r2 = SstReader::open_cached(&path, Some(Arc::clone(&cache))).unwrap();
        let (rec, io) = r2.get(b"key-000100").unwrap();
        assert!(rec.is_some());
        assert_eq!(io, BlockIo { disk: 1, cached: 0 }, "aliased a stale block");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tombstones_roundtrip() {
        let path = temp_path("tomb");
        let mut w = SstWriter::create(&path, 2, 10, 128).unwrap();
        w.add(&Record::delete("dead", 5)).unwrap();
        w.add(&Record::put("live", "v", 6, None)).unwrap();
        w.finish().unwrap();
        let r = SstReader::open(&path).unwrap();
        let (rec, _) = r.get(b"dead").unwrap();
        assert_eq!(rec.unwrap().kind, crate::record::RecordKind::Delete);
        std::fs::remove_file(&path).ok();
    }
}
