//! Sorted string table (SST) files.
//!
//! Layout (all little-endian):
//!
//! ```text
//! [data block 0][data block 1]...[properties][footer]
//! footer (20 bytes): props_offset u64 | props_len u32 | props_crc u32 | magic u32
//! ```
//!
//! The *properties* region holds the record count, the key range, the block
//! index (`last_key, offset, len` per block), and the bloom filter — everything
//! a reader keeps in memory. Point reads therefore cost exactly **one block
//! I/O** (or zero on a bloom miss), the constant the I/O-WFQ's Rule 1 relies
//! on.

use crate::bloom::BloomFilter;
use crate::encoding::{
    crc32, get_len_prefixed, get_u32, get_u64, get_varint, put_len_prefixed, put_u32, put_u64,
    put_varint,
};
use crate::error::{Error, Result};
use crate::record::Record;
use bytes::Bytes;
use std::fs::File;
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const MAGIC: u32 = 0xAB5E_557A;
const FOOTER_LEN: usize = 20;

/// Index entry for one data block.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BlockHandle {
    last_key: Bytes,
    offset: u64,
    len: u32,
}

/// Writes a sorted record stream into an SST file.
#[derive(Debug)]
pub struct SstWriter {
    path: PathBuf,
    file: File,
    block: Vec<u8>,
    block_target: usize,
    offset: u64,
    handles: Vec<BlockHandle>,
    bloom: BloomFilter,
    record_count: u64,
    min_key: Option<Bytes>,
    max_key: Option<Bytes>,
    last_key_in_block: Option<Bytes>,
}

impl SstWriter {
    /// Start writing an SST at `path`. `expected_records` sizes the bloom
    /// filter; `block_target` is the uncompressed block size goal.
    pub fn create(
        path: &Path,
        expected_records: usize,
        bloom_bits_per_key: usize,
        block_target: usize,
    ) -> Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            block: Vec::with_capacity(block_target * 2),
            block_target,
            offset: 0,
            handles: Vec::new(),
            bloom: BloomFilter::with_capacity(expected_records, bloom_bits_per_key),
            record_count: 0,
            min_key: None,
            max_key: None,
            last_key_in_block: None,
        })
    }

    /// Append the next record; records must arrive in ascending key order.
    ///
    /// # Panics
    /// Debug-asserts key ordering.
    pub fn add(&mut self, record: &Record) -> Result<()> {
        debug_assert!(
            self.max_key.as_ref().is_none_or(|m| m < &record.key),
            "records must be added in strictly ascending key order"
        );
        if self.min_key.is_none() {
            self.min_key = Some(record.key.clone());
        }
        self.max_key = Some(record.key.clone());
        self.bloom.insert(&record.key);
        record.encode(&mut self.block);
        self.last_key_in_block = Some(record.key.clone());
        self.record_count += 1;
        if self.block.len() >= self.block_target {
            self.finish_block()?;
        }
        Ok(())
    }

    fn finish_block(&mut self) -> Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        let last_key = self
            .last_key_in_block
            .take()
            .expect("non-empty block has a last key");
        self.file.write_all(&self.block)?;
        self.handles.push(BlockHandle {
            last_key,
            offset: self.offset,
            len: self.block.len() as u32,
        });
        self.offset += self.block.len() as u64;
        self.block.clear();
        Ok(())
    }

    /// Finish the file: write properties + footer, fsync, and return the
    /// metadata needed by the manifest.
    pub fn finish(mut self) -> Result<SstFileInfo> {
        self.finish_block()?;
        let mut props = Vec::new();
        put_u64(&mut props, self.record_count);
        let min_key = self.min_key.clone().unwrap_or_default();
        let max_key = self.max_key.clone().unwrap_or_default();
        put_len_prefixed(&mut props, &min_key);
        put_len_prefixed(&mut props, &max_key);
        put_varint(&mut props, self.handles.len() as u64);
        for h in &self.handles {
            put_len_prefixed(&mut props, &h.last_key);
            put_u64(&mut props, h.offset);
            put_u32(&mut props, h.len);
        }
        self.bloom.encode(&mut props);
        let props_offset = self.offset;
        let props_crc = crc32(&props);
        self.file.write_all(&props)?;
        let mut footer = Vec::with_capacity(FOOTER_LEN);
        put_u64(&mut footer, props_offset);
        put_u32(&mut footer, props.len() as u32);
        put_u32(&mut footer, props_crc);
        put_u32(&mut footer, MAGIC);
        self.file.write_all(&footer)?;
        self.file.sync_data()?;
        let file_size = props_offset + props.len() as u64 + FOOTER_LEN as u64;
        Ok(SstFileInfo {
            path: self.path,
            file_size,
            record_count: self.record_count,
            min_key,
            max_key,
        })
    }
}

/// Metadata returned when an SST finishes writing.
#[derive(Debug, Clone)]
pub struct SstFileInfo {
    /// Where the file was written.
    pub path: PathBuf,
    /// Total file size in bytes.
    pub file_size: u64,
    /// Number of records.
    pub record_count: u64,
    /// Smallest user key.
    pub min_key: Bytes,
    /// Largest user key.
    pub max_key: Bytes,
}

/// Reads point and range queries from one SST file.
#[derive(Debug)]
pub struct SstReader {
    file: File,
    handles: Vec<BlockHandle>,
    bloom: BloomFilter,
    record_count: u64,
    min_key: Bytes,
    max_key: Bytes,
    /// Data-block reads served by this reader (I/O accounting).
    block_reads: AtomicU64,
    /// Point lookups short-circuited by the bloom filter.
    bloom_skips: AtomicU64,
}

impl SstReader {
    /// Open an SST file, loading its index and bloom filter into memory.
    pub fn open(path: &Path) -> Result<Self> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < FOOTER_LEN as u64 {
            return Err(Error::Corruption("sst shorter than footer".into()));
        }
        let mut footer = [0u8; FOOTER_LEN];
        file.read_exact_at(&mut footer, file_len - FOOTER_LEN as u64)?;
        let mut pos = 0usize;
        let props_offset = get_u64(&footer, &mut pos)?;
        let props_len = get_u32(&footer, &mut pos)? as usize;
        let props_crc = get_u32(&footer, &mut pos)?;
        let magic = get_u32(&footer, &mut pos)?;
        if magic != MAGIC {
            return Err(Error::Corruption("bad sst magic".into()));
        }
        let mut props = vec![0u8; props_len];
        file.read_exact_at(&mut props, props_offset)?;
        if crc32(&props) != props_crc {
            return Err(Error::Corruption("sst properties crc mismatch".into()));
        }
        let mut pos = 0usize;
        let record_count = get_u64(&props, &mut pos)?;
        let min_key = Bytes::copy_from_slice(get_len_prefixed(&props, &mut pos)?);
        let max_key = Bytes::copy_from_slice(get_len_prefixed(&props, &mut pos)?);
        let n_handles = get_varint(&props, &mut pos)? as usize;
        let mut handles = Vec::with_capacity(n_handles);
        for _ in 0..n_handles {
            let last_key = Bytes::copy_from_slice(get_len_prefixed(&props, &mut pos)?);
            let offset = get_u64(&props, &mut pos)?;
            let len = get_u32(&props, &mut pos)?;
            handles.push(BlockHandle {
                last_key,
                offset,
                len,
            });
        }
        let bloom = BloomFilter::decode(&props, &mut pos)?;
        Ok(Self {
            file,
            handles,
            bloom,
            record_count,
            min_key,
            max_key,
            block_reads: AtomicU64::new(0),
            bloom_skips: AtomicU64::new(0),
        })
    }

    /// Number of records in the file.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Smallest user key in the file.
    pub fn min_key(&self) -> &Bytes {
        &self.min_key
    }

    /// Largest user key in the file.
    pub fn max_key(&self) -> &Bytes {
        &self.max_key
    }

    /// Data-block reads performed so far.
    pub fn block_reads(&self) -> u64 {
        self.block_reads.load(Ordering::Relaxed)
    }

    /// Point lookups answered "absent" by the bloom filter alone.
    pub fn bloom_skips(&self) -> u64 {
        self.bloom_skips.load(Ordering::Relaxed)
    }

    /// True if `key` falls inside this file's `[min, max]` key range.
    pub fn key_in_range(&self, key: &[u8]) -> bool {
        key >= &self.min_key[..] && key <= &self.max_key[..]
    }

    fn read_block(&self, handle: &BlockHandle) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; handle.len as usize];
        self.file.read_exact_at(&mut buf, handle.offset)?;
        self.block_reads.fetch_add(1, Ordering::Relaxed);
        Ok(buf)
    }

    /// Point lookup. Returns `(record, io_ops)` where `io_ops` is the number
    /// of data-block reads performed (0 on a bloom or range miss, 1 otherwise).
    pub fn get(&self, key: &[u8]) -> Result<(Option<Record>, u32)> {
        if !self.key_in_range(key) {
            return Ok((None, 0));
        }
        if !self.bloom.may_contain(key) {
            self.bloom_skips.fetch_add(1, Ordering::Relaxed);
            return Ok((None, 0));
        }
        // First block whose last_key >= key.
        let idx = self.handles.partition_point(|h| h.last_key.as_ref() < key);
        let Some(handle) = self.handles.get(idx) else {
            return Ok((None, 0));
        };
        let block = self.read_block(handle)?;
        let mut pos = 0usize;
        while pos < block.len() {
            let record = Record::decode(&block, &mut pos)?;
            match record.key.as_ref().cmp(key) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => return Ok((Some(record), 1)),
                std::cmp::Ordering::Greater => break,
            }
        }
        Ok((None, 1))
    }

    /// Scan every record in key order (used by compaction and range reads).
    pub fn scan_all(&self) -> Result<Vec<Record>> {
        let mut out = Vec::with_capacity(self.record_count as usize);
        for handle in &self.handles {
            let block = self.read_block(handle)?;
            let mut pos = 0usize;
            while pos < block.len() {
                out.push(Record::decode(&block, &mut pos)?);
            }
        }
        Ok(out)
    }

    /// Records whose key starts with `prefix`, in key order, plus io ops used.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<(Vec<Record>, u32)> {
        if prefix > &self.max_key[..] || !self.prefix_may_overlap(prefix) {
            return Ok((Vec::new(), 0));
        }
        let mut out = Vec::new();
        let mut io = 0u32;
        let start = self
            .handles
            .partition_point(|h| h.last_key.as_ref() < prefix);
        for handle in &self.handles[start..] {
            let block = self.read_block(handle)?;
            io += 1;
            let mut pos = 0usize;
            let mut past_prefix = false;
            while pos < block.len() {
                let record = Record::decode(&block, &mut pos)?;
                if record.key.starts_with(prefix) {
                    out.push(record);
                } else if record.key.as_ref() > prefix {
                    past_prefix = true;
                    break;
                }
            }
            if past_prefix {
                break;
            }
        }
        Ok((out, io))
    }

    fn prefix_may_overlap(&self, prefix: &[u8]) -> bool {
        // max_key >= prefix and min_key's first |prefix| bytes <= prefix.
        let head = &self.min_key[..self.min_key.len().min(prefix.len())];
        head <= prefix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "abase-sst-{tag}-{}-{:?}.sst",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn build_sst(path: &Path, n: usize) -> SstFileInfo {
        let mut w = SstWriter::create(path, n, 10, 256).unwrap();
        for i in 0..n {
            let key = format!("key-{i:06}");
            let value = format!("value-{i}");
            w.add(&Record::put(key, value, i as u64 + 1, None)).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn write_then_point_read() {
        let path = temp_path("point");
        let info = build_sst(&path, 500);
        assert_eq!(info.record_count, 500);
        let r = SstReader::open(&path).unwrap();
        let (rec, io) = r.get(b"key-000123").unwrap();
        assert_eq!(rec.unwrap().value, &b"value-123"[..]);
        assert_eq!(io, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn absent_key_costs_no_io_via_bloom() {
        let path = temp_path("bloom");
        build_sst(&path, 500);
        let r = SstReader::open(&path).unwrap();
        let mut io_total = 0;
        for i in 0..200 {
            let (rec, io) = r.get(format!("missing-{i}").as_bytes()).unwrap();
            assert!(rec.is_none());
            io_total += io;
        }
        // Nearly all misses are range misses (prefix "missing" > "key-…" range)
        // or bloom-filtered; allow a small number of false positives.
        assert!(io_total <= 10, "io_total={io_total}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn in_range_absent_key_uses_bloom() {
        let path = temp_path("inrange");
        build_sst(&path, 500);
        let r = SstReader::open(&path).unwrap();
        let mut io_total = 0;
        for i in 0..200 {
            // Keys interleaved with existing ones, inside [min,max].
            let (rec, io) = r.get(format!("key-{i:06}x").as_bytes()).unwrap();
            assert!(rec.is_none());
            io_total += io;
        }
        assert!(io_total <= 20, "io_total={io_total}");
        assert!(r.bloom_skips() >= 180);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scan_all_returns_sorted_records() {
        let path = temp_path("scan");
        build_sst(&path, 300);
        let r = SstReader::open(&path).unwrap();
        let records = r.scan_all().unwrap();
        assert_eq!(records.len(), 300);
        assert!(records.windows(2).all(|w| w[0].key < w[1].key));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scan_prefix_selects_subset() {
        let path = temp_path("prefix");
        let mut w = SstWriter::create(&path, 10, 10, 128).unwrap();
        for (i, key) in ["a:1", "a:2", "b:1", "b:2", "c:1"].iter().enumerate() {
            w.add(&Record::put(*key, "v", i as u64 + 1, None)).unwrap();
        }
        w.finish().unwrap();
        let r = SstReader::open(&path).unwrap();
        let (records, _) = r.scan_prefix(b"b:").unwrap();
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|rec| rec.key.starts_with(b"b:")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn key_range_metadata_is_correct() {
        let path = temp_path("range");
        build_sst(&path, 100);
        let r = SstReader::open(&path).unwrap();
        assert_eq!(r.min_key(), &Bytes::from("key-000000"));
        assert_eq!(r.max_key(), &Bytes::from("key-000099"));
        assert!(r.key_in_range(b"key-000050"));
        assert!(!r.key_in_range(b"zzz"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_properties_detected() {
        let path = temp_path("corrupt");
        build_sst(&path, 50);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a byte inside the properties (just before the footer).
        let n = data.len();
        data[n - FOOTER_LEN - 5] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(SstReader::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tombstones_roundtrip() {
        let path = temp_path("tomb");
        let mut w = SstWriter::create(&path, 2, 10, 128).unwrap();
        w.add(&Record::delete("dead", 5)).unwrap();
        w.add(&Record::put("live", "v", 6, None)).unwrap();
        w.finish().unwrap();
        let r = SstReader::open(&path).unwrap();
        let (rec, _) = r.get(b"dead").unwrap();
        assert_eq!(rec.unwrap().kind, crate::record::RecordKind::Delete);
        std::fs::remove_file(&path).ok();
    }
}
