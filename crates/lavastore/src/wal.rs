//! Write-ahead log.
//!
//! Each appended record is framed as `[crc32 u32][len u32][payload]`. Replay
//! stops cleanly at a torn tail (a crash mid-append), recovering every fully
//! written record — the standard contract an LSM needs from its log.

use crate::encoding::crc32;
use crate::error::{Error, Result};
use crate::record::Record;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

/// An append-only record log.
#[derive(Debug)]
pub struct Wal {
    writer: BufWriter<File>,
    /// Bytes appended since open (approximate file size).
    appended: u64,
    sync_on_append: bool,
}

impl Wal {
    /// Create (truncating) a new log at `path`.
    pub fn create(path: &Path, sync_on_append: bool) -> Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            writer: BufWriter::new(file),
            appended: 0,
            sync_on_append,
        })
    }

    /// Append one record.
    pub fn append(&mut self, record: &Record) -> Result<()> {
        let mut payload = Vec::with_capacity(record.approximate_size());
        record.encode(&mut payload);
        let crc = crc32(&payload);
        self.writer.write_all(&crc.to_le_bytes())?;
        self.writer.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&payload)?;
        self.appended += 8 + payload.len() as u64;
        if self.sync_on_append {
            self.writer.flush()?;
            self.writer.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Flush buffered frames to the OS (without fsync).
    pub fn flush(&mut self) -> Result<()> {
        self.writer.flush()?;
        Ok(())
    }

    /// Bytes appended since the log was opened.
    pub fn appended_bytes(&self) -> u64 {
        self.appended
    }

    /// Replay a log file, returning every intact record in append order.
    ///
    /// A torn tail (truncated frame or CRC mismatch on the final frame) ends
    /// replay without error; a CRC mismatch in the middle of the log is real
    /// corruption and is reported.
    pub fn replay(path: &Path) -> Result<Vec<Record>> {
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        }
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < data.len() {
            if pos + 8 > data.len() {
                break; // torn tail: header incomplete
            }
            let mut crc_bytes = [0u8; 4];
            crc_bytes.copy_from_slice(&data[pos..pos + 4]);
            let expect_crc = u32::from_le_bytes(crc_bytes);
            let mut len_bytes = [0u8; 4];
            len_bytes.copy_from_slice(&data[pos + 4..pos + 8]);
            let len = u32::from_le_bytes(len_bytes) as usize;
            let body_start = pos + 8;
            let body_end = body_start + len;
            if body_end > data.len() {
                break; // torn tail: body incomplete
            }
            let payload = &data[body_start..body_end];
            if crc32(payload) != expect_crc {
                if body_end == data.len() {
                    break; // torn final frame
                }
                return Err(Error::Corruption(format!(
                    "wal crc mismatch at offset {pos}"
                )));
            }
            let mut rpos = 0usize;
            let record = Record::decode(payload, &mut rpos)?;
            out.push(record);
            pos = body_end;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "abase-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn append_and_replay() {
        let path = temp_path("roundtrip");
        let records = vec![
            Record::put("a", "1", 1, None),
            Record::delete("b", 2),
            Record::put("c", "3", 3, Some(99)),
        ];
        {
            let mut wal = Wal::create(&path, false).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
            wal.flush().unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap(), records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let path = temp_path("missing");
        std::fs::remove_file(&path).ok();
        assert!(Wal::replay(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_recovers_prefix() {
        let path = temp_path("torn");
        {
            let mut wal = Wal::create(&path, false).unwrap();
            wal.append(&Record::put("a", "1", 1, None)).unwrap();
            wal.append(&Record::put("b", "2", 2, None)).unwrap();
            wal.flush().unwrap();
        }
        // Truncate mid-way through the second frame.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].key, &b"a"[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_log_corruption_is_reported() {
        let path = temp_path("corrupt");
        {
            let mut wal = Wal::create(&path, false).unwrap();
            wal.append(&Record::put("a", "1", 1, None)).unwrap();
            wal.append(&Record::put("b", "2", 2, None)).unwrap();
            wal.flush().unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        // Flip a payload byte in the FIRST frame (not the last).
        data[10] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(Wal::replay(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appended_bytes_grow() {
        let path = temp_path("size");
        let mut wal = Wal::create(&path, false).unwrap();
        assert_eq!(wal.appended_bytes(), 0);
        wal.append(&Record::put("key", "value", 1, None)).unwrap();
        assert!(wal.appended_bytes() > 8);
        std::fs::remove_file(&path).ok();
    }
}
