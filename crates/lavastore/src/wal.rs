//! Group-commit write-ahead log.
//!
//! Each appended record is framed as `[crc32 u32][len u32][payload]`. Replay
//! stops cleanly at a torn tail (a crash mid-append), recovering every fully
//! written record — the standard contract an LSM needs from its log.
//!
//! The writer side is shared by every stripe of the engine: concurrent
//! writers append frames into one in-memory buffer under a short mutex, and
//! durability is amortized by *group commit* — when `sync_on_append` is set,
//! a committer that finds an fsync already in flight parks on a condvar and
//! is covered by that fsync (or the next one) instead of issuing its own.
//! Without `sync_on_append`, the buffer drains to the OS when it crosses a
//! byte threshold or a flush interval elapses (writer-driven; no background
//! thread), so the write path issues large sequential writes instead of one
//! syscall per record.
//!
//! The log is also the engine's **LSN allocator**: appends assign the next
//! sequence number under the same lock that orders frames into the buffer,
//! so the on-disk frame order always equals sequence order — the single
//! monotone LSN stream replication tailing depends on.
//!
//! Three watermarks, all *excluding* torn bytes:
//!
//! * `appended` — complete-frame bytes accepted into the log (buffer + file);
//! * `flushed`  — complete-frame bytes written to the file, i.e. what a tail
//!   reader ([`Wal::replay_from`]) can observe; checkpoint cursors and
//!   [`Wal::position`] report this, so a recorded offset can never land
//!   inside a torn or still-buffered frame;
//! * `durable_seq` — the highest sequence number covered by an fsync.
//!
//! A failed fsync or a torn write **poisons** the log: the simulated (or
//! real) process died mid-write, so every further append fails until the
//! engine reopens and replays. Poisoning is what keeps a failed-durability
//! append from silently surfacing on a later flush.

use crate::encoding::crc32;
use crate::error::{Error, Result};
use crate::metrics;
use crate::record::Record;
use abase_obs::Timer;
use abase_util::failpoint::{self, FaultAction};
use abase_util::lockrank::{rank, RankedCondvar, RankedMutex};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Tuning for the group-commit writer (subset of `DbConfig`).
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// fsync before acknowledging appends (durability vs. throughput).
    pub sync_on_append: bool,
    /// Buffered bytes that trigger a flush to the OS on the next commit.
    pub group_commit_bytes: usize,
    /// Elapsed time since the last flush that triggers one on the next
    /// commit (writer-driven: checked on the write path, no timer thread).
    pub group_commit_interval: Duration,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            sync_on_append: false,
            group_commit_bytes: 64 << 10,
            group_commit_interval: Duration::from_millis(5),
        }
    }
}

/// Mutable writer state, guarded by the log mutex.
#[derive(Debug)]
struct WalState {
    file: File,
    /// Segment id of the file currently receiving appends.
    segment: u64,
    /// The segment's path, used as fail-point context (chaos targets one
    /// replica's log by directory substring).
    context: String,
    /// Encoded frames not yet written to the file, in sequence order.
    buf: Vec<u8>,
    /// Complete-frame bytes accepted into this segment (buffer + file).
    appended: u64,
    /// Complete-frame bytes written to this segment's file.
    flushed: u64,
    /// Highest sequence number covered by an fsync (global, not per-segment).
    durable_seq: u64,
    /// Next sequence number to allocate — the engine's one LSN allocator.
    next_seq: u64,
    /// Frames appended since the last successful fsync (batch-size metric).
    frames_unsynced: u64,
    /// When the buffer last drained (interval trigger).
    last_flush: Instant,
    /// A group-commit leader is fsyncing with the lock released; file writes
    /// must wait so frames land in sequence order.
    syncing: bool,
    /// Set after a torn write or failed fsync: the simulated process died
    /// mid-write, so every further append fails until reopen.
    poisoned: bool,
}

/// An append-only record log with group commit.
#[derive(Debug)]
pub struct Wal {
    state: RankedMutex<WalState>,
    cond: RankedCondvar,
    opts: WalOptions,
}

fn injected_io(what: &str) -> Error {
    Error::Io(std::io::Error::other(format!("injected fault: {what}")))
}

fn poisoned_err() -> Error {
    Error::Io(std::io::Error::other(
        "wal poisoned by earlier torn write or failed fsync",
    ))
}

fn encode_frame(record: &Record, frame: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(record.approximate_size());
    record.encode(&mut payload);
    let crc = crc32(&payload);
    frame.reserve(8 + payload.len());
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
}

impl Wal {
    /// The on-disk name of WAL segment `id` inside a database directory.
    pub fn segment_path(dir: &Path, id: u64) -> PathBuf {
        dir.join(format!("wal-{id:010}.log"))
    }

    /// WAL segment ids present in `dir`, ascending (ascending id is
    /// chronological: ids come from one monotonic file-id allocator).
    pub fn list_segments(dir: &Path) -> Result<Vec<u64>> {
        let mut ids: Vec<u64> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let id = name.strip_prefix("wal-")?.strip_suffix(".log")?;
                id.parse::<u64>().ok()
            })
            .collect();
        ids.sort_unstable();
        Ok(ids)
    }

    /// Create (truncating) a new log at `path` for segment `segment`, with
    /// the sequence allocator starting at `next_seq`.
    pub fn create(path: &Path, segment: u64, next_seq: u64, opts: WalOptions) -> Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            state: RankedMutex::new(
                rank::WAL_STATE,
                WalState {
                    file,
                    segment,
                    context: path.display().to_string(),
                    buf: Vec::new(),
                    appended: 0,
                    flushed: 0,
                    durable_seq: next_seq.saturating_sub(1),
                    next_seq,
                    frames_unsynced: 0,
                    last_flush: Instant::now(),
                    syncing: false,
                    poisoned: false,
                },
            ),
            cond: RankedCondvar::new(),
            opts,
        })
    }

    /// Append a record, allocating the next sequence number into
    /// `record.seq`. The frame enters the shared buffer in sequence order;
    /// call [`Wal::commit`] with the returned seq to make it durable. When
    /// not fsyncing, the append itself drains the buffer to the OS on the
    /// byte-threshold or interval trigger — no separate commit call needed.
    ///
    /// A fail-point `Error` consumes no sequence number; a `TornWrite`
    /// writes a partial frame to the file (excluded from every watermark)
    /// and poisons the log.
    pub fn append_next(&self, record: &mut Record) -> Result<u64> {
        let mut state = self.state.lock();
        if state.poisoned {
            return Err(poisoned_err());
        }
        let seq = state.next_seq;
        record.seq = seq;
        self.append_locked(&mut state, record)?;
        state.next_seq = seq + 1;
        Ok(seq)
    }

    /// Append a record that carries its own (leader-assigned) sequence
    /// number. Returns `Ok(false)` when the record was already appended
    /// (`seq` below the allocator) — idempotent at-least-once shipping — and
    /// an error on a sequence gap, keeping this log a strict prefix of its
    /// leader's.
    pub fn append_at(&self, record: &Record) -> Result<bool> {
        let mut state = self.state.lock();
        if record.seq < state.next_seq {
            return Ok(false);
        }
        if record.seq > state.next_seq {
            return Err(Error::InvalidState(format!(
                "replication gap: record seq {} but follower expects {}",
                record.seq, state.next_seq
            )));
        }
        if state.poisoned {
            return Err(poisoned_err());
        }
        self.append_locked(&mut state, record)?;
        state.next_seq = record.seq + 1;
        Ok(true)
    }

    fn append_locked(&self, state: &mut WalState, record: &Record) -> Result<()> {
        match failpoint::check("wal.append", &state.context) {
            Some(FaultAction::Error) => return Err(injected_io("wal append failed")),
            Some(FaultAction::TornWrite { keep_bytes }) => {
                // Simulate a crash mid-append: earlier buffered frames reach
                // the file (they were complete — a real crash loses only the
                // in-flight frame), then part of this frame lands, then the
                // log is dead until reopened. The torn bytes advance *no*
                // watermark, so positions and checkpoint cursors can never
                // point inside the tear. Replay/poll park before it.
                let pending = std::mem::take(&mut state.buf);
                state.file.write_all(&pending)?;
                state.flushed += pending.len() as u64;
                let mut frame = Vec::new();
                encode_frame(record, &mut frame);
                let keep = (keep_bytes as usize).min(frame.len().saturating_sub(1));
                state.file.write_all(&frame[..keep])?;
                state.poisoned = true;
                self.cond.notify_all();
                return Err(injected_io("torn wal append"));
            }
            _ => {}
        }
        let timer = Timer::start();
        // Encode straight into the shared buffer (header patched after the
        // payload lands): the write path's critical section is one encode
        // pass plus a CRC scan, with no per-record allocation.
        let start = state.buf.len();
        state.buf.extend_from_slice(&[0u8; 8]);
        record.encode(&mut state.buf);
        let payload_len = state.buf.len() - start - 8;
        let crc = crc32(&state.buf[start + 8..]);
        state.buf[start..start + 4].copy_from_slice(&crc.to_le_bytes());
        state.buf[start + 4..start + 8].copy_from_slice(&(payload_len as u32).to_le_bytes());
        let frame_len = (payload_len + 8) as u64;
        state.appended += frame_len;
        state.frames_unsynced += 1;
        metrics::WAL_APPEND_BYTES.add(frame_len);
        timer.observe(&metrics::WAL_APPEND_MICROS);
        // Non-durable group commit drains inside the append's lock hold (no
        // second lock acquisition on the write path) once the buffer crosses
        // the byte threshold or the flush interval lapses.
        if !self.opts.sync_on_append
            && (state.buf.len() >= self.opts.group_commit_bytes
                || state.last_flush.elapsed() >= self.opts.group_commit_interval)
        {
            self.flush_to_os_locked(state)?;
        }
        Ok(())
    }

    /// Make everything up to `seq` durable (when `sync_on_append`), joining
    /// an in-flight group fsync when one already covers it; otherwise drain
    /// the buffer to the OS if it crossed the byte threshold or the flush
    /// interval elapsed.
    pub fn commit(&self, seq: u64) -> Result<()> {
        let mut state = self.state.lock();
        if !self.opts.sync_on_append {
            if state.poisoned {
                // The torn-write path already drained the buffer; there is
                // nothing left to lose and no durability was promised.
                return Ok(());
            }
            if state.buf.len() >= self.opts.group_commit_bytes
                || state.last_flush.elapsed() >= self.opts.group_commit_interval
            {
                self.flush_to_os_locked(&mut state)?;
            }
            return Ok(());
        }
        loop {
            if state.poisoned {
                return Err(poisoned_err());
            }
            if state.durable_seq >= seq {
                metrics::GROUP_COMMIT_COMMITS.inc();
                return Ok(());
            }
            if !state.syncing {
                break;
            }
            // Another committer's fsync is in flight; it (or the next one)
            // will cover this seq. Park instead of queueing a second fsync.
            self.cond.wait(&mut state);
        }
        // Become the group leader: take the batch, release the lock, sync.
        state.syncing = true;
        let batch = std::mem::take(&mut state.buf);
        let end_seq = state.next_seq - 1;
        let frames = state.frames_unsynced;
        let context = state.context.clone();
        let file = match state.file.try_clone() {
            Ok(f) => f,
            Err(e) => {
                state.syncing = false;
                self.cond.notify_all();
                return Err(e.into());
            }
        };
        drop(state);
        let sync_result: Result<()> = (|| {
            if let Some(FaultAction::Error) = failpoint::check("wal.sync", &context) {
                return Err(injected_io("wal fsync failed"));
            }
            let fsync_timer = Timer::start();
            if !batch.is_empty() {
                (&file).write_all(&batch)?;
            }
            file.sync_data()?;
            fsync_timer.observe(&metrics::WAL_FSYNC_MICROS);
            Ok(())
        })();
        let mut state = self.state.lock();
        state.syncing = false;
        match sync_result {
            Ok(()) => {
                state.flushed += batch.len() as u64;
                state.durable_seq = state.durable_seq.max(end_seq);
                state.frames_unsynced = 0;
                state.last_flush = Instant::now();
                metrics::GROUP_COMMIT_FSYNCS.inc();
                metrics::GROUP_COMMIT_BATCH_FRAMES.record(frames);
                metrics::GROUP_COMMIT_COMMITS.inc();
                self.cond.notify_all();
                Ok(())
            }
            Err(e) => {
                // The batch's durability failed after its appends were
                // acknowledged into the buffer; if any of it reached the OS
                // it must never silently count as applied. Poison so every
                // later append/commit fails until the engine reopens and
                // replays only what the file actually holds.
                state.poisoned = true;
                self.cond.notify_all();
                Err(e)
            }
        }
    }

    /// Flush buffered frames to the OS (without fsync), so tail readers can
    /// observe them. A fail-point `Error` here is transient: it fails the
    /// call without changing any state.
    pub fn flush(&self) -> Result<()> {
        let context = self.state.lock().context.clone();
        // `check` sleeps internally for `DelayMs`; only `Error` fails here.
        if let Some(FaultAction::Error) = failpoint::check("wal.flush", &context) {
            return Err(injected_io("wal flush failed"));
        }
        let mut state = self.state.lock();
        while state.syncing {
            self.cond.wait(&mut state);
        }
        if state.poisoned {
            // Torn/failed-sync paths already drained or discarded the
            // buffer; old frames in the file stay readable.
            debug_assert!(state.buf.is_empty());
            return Ok(());
        }
        self.flush_to_os_locked(&mut state)
    }

    fn flush_to_os_locked(&self, state: &mut WalState) -> Result<()> {
        debug_assert!(!state.syncing);
        if !state.buf.is_empty() {
            if let Err(e) = state.file.write_all(&state.buf) {
                // Partial writes leave the file tail unknowable; poison so
                // no retry can interleave bytes out of order.
                state.poisoned = true;
                state.buf.clear();
                self.cond.notify_all();
                return Err(e.into());
            }
            state.flushed += state.buf.len() as u64;
            state.buf.clear();
        }
        state.last_flush = Instant::now();
        Ok(())
    }

    /// Swap appends over to a fresh segment file, draining the buffer into
    /// the old one first. Returns the last sequence number the old segment
    /// holds (its rotation watermark for floor advancement). When fsyncing
    /// on append, the old segment is synced before the swap so `durable_seq`
    /// stays truthful across the boundary.
    pub fn rotate(&self, path: &Path, segment: u64) -> Result<u64> {
        let mut state = self.state.lock();
        while state.syncing {
            self.cond.wait(&mut state);
        }
        if state.poisoned {
            return Err(poisoned_err());
        }
        self.flush_to_os_locked(&mut state)?;
        if self.opts.sync_on_append {
            state.file.sync_data()?;
            state.durable_seq = state.next_seq - 1;
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        state.file = file;
        state.segment = segment;
        state.context = path.display().to_string();
        state.appended = 0;
        state.flushed = 0;
        state.last_flush = Instant::now();
        Ok(state.next_seq - 1)
    }

    /// `(segment, flushed bytes)`: where a tail reader that has applied
    /// everything should resume. Reports only *flushed* complete-frame
    /// bytes — never buffered or torn bytes a reader cannot (or must not)
    /// observe.
    pub fn position(&self) -> (u64, u64) {
        let state = self.state.lock();
        (state.segment, state.flushed)
    }

    /// Drain the buffer and return the crash-consistent checkpoint cursor:
    /// `(segment, flushed offset, last allocated seq)`. Every sequence
    /// number at or below the returned seq is either in an SST or in WAL
    /// frames at or below the returned offset.
    pub fn checkpoint_cursor(&self) -> Result<(u64, u64, u64)> {
        let mut state = self.state.lock();
        while state.syncing {
            self.cond.wait(&mut state);
        }
        if !state.poisoned {
            self.flush_to_os_locked(&mut state)?;
        }
        Ok((state.segment, state.flushed, state.next_seq - 1))
    }

    /// Id of the segment currently receiving appends.
    pub fn segment(&self) -> u64 {
        self.state.lock().segment
    }

    /// Complete-frame bytes accepted into the current segment (buffered +
    /// written; torn bytes never count).
    pub fn appended_bytes(&self) -> u64 {
        self.state.lock().appended
    }

    /// The next sequence number the allocator will hand out.
    pub fn next_seq(&self) -> u64 {
        self.state.lock().next_seq
    }

    /// Highest sequence number allocated so far (0 when none).
    pub fn last_allocated(&self) -> u64 {
        self.state.lock().next_seq - 1
    }

    /// Highest sequence number covered by an fsync.
    pub fn durable_seq(&self) -> u64 {
        self.state.lock().durable_seq
    }

    /// True once a torn write or failed fsync killed this log.
    pub fn is_poisoned(&self) -> bool {
        self.state.lock().poisoned
    }

    /// Replay a log file, returning every intact record in append order.
    ///
    /// A torn tail (truncated frame or CRC mismatch on the final frame) ends
    /// replay without error; a CRC mismatch in the middle of the log is real
    /// corruption and is reported.
    pub fn replay(path: &Path) -> Result<Vec<Record>> {
        match Self::replay_from(path, 0) {
            Ok((records, _)) => Ok(records),
            Err(Error::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    /// Replay a log file starting at byte `offset`, returning every intact
    /// record after it plus the offset just past the last complete frame.
    ///
    /// This is the replication tail-read path: a [`crate::db::Db`] follower's
    /// binlog cursor remembers `(segment, offset)` and calls this repeatedly
    /// to pick up frames the leader appended since the last poll. Only the
    /// bytes past `offset` are read (the tail, not the whole segment), so a
    /// synchronous-replication write path polling after every append stays
    /// O(new data) rather than O(segment size). A torn tail ends the batch
    /// without error (the next poll retries from the returned offset); unlike
    /// [`Wal::replay`], a missing file is an `Io` error so the caller can
    /// distinguish "rotated away" from "empty".
    pub fn replay_from(path: &Path, offset: u64) -> Result<(Vec<Record>, u64)> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if offset > len {
            return Err(Error::InvalidState(format!(
                "wal cursor offset {offset} beyond file length {len}"
            )));
        }
        std::io::Seek::seek(&mut file, std::io::SeekFrom::Start(offset))?;
        let mut data = Vec::with_capacity((len - offset) as usize);
        file.read_to_end(&mut data)?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < data.len() {
            if pos + 8 > data.len() {
                break; // torn tail: header incomplete
            }
            let mut crc_bytes = [0u8; 4];
            crc_bytes.copy_from_slice(&data[pos..pos + 4]);
            let expect_crc = u32::from_le_bytes(crc_bytes);
            let mut len_bytes = [0u8; 4];
            len_bytes.copy_from_slice(&data[pos + 4..pos + 8]);
            let len = u32::from_le_bytes(len_bytes) as usize;
            let body_start = pos + 8;
            let body_end = body_start + len;
            if body_end > data.len() {
                break; // torn tail: body incomplete
            }
            let payload = &data[body_start..body_end];
            if crc32(payload) != expect_crc {
                if body_end == data.len() {
                    break; // torn final frame
                }
                return Err(Error::Corruption(format!(
                    "wal crc mismatch at offset {}",
                    offset + pos as u64
                )));
            }
            let mut rpos = 0usize;
            let record = Record::decode(payload, &mut rpos)?;
            out.push(record);
            pos = body_end;
        }
        Ok((out, offset + pos as u64))
    }
}

impl Drop for Wal {
    /// Best-effort drain on clean shutdown, matching what a buffered writer
    /// would do: acknowledged frames reach the file so an orderly close
    /// loses nothing. A poisoned log stays as the "crash" left it.
    fn drop(&mut self) {
        let state = self.state.get_mut();
        if !state.poisoned && !state.buf.is_empty() {
            if state.file.write_all(&state.buf).is_ok() {
                state.flushed += state.buf.len() as u64;
            }
            state.buf.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abase_util::failpoint::ScopedInjector;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "abase-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn new_wal(path: &Path, sync: bool) -> Wal {
        Wal::create(
            path,
            0,
            1,
            WalOptions {
                sync_on_append: sync,
                // Interval drains would make buffered-state assertions racy
                // on a stalled test machine; only explicit flushes drain.
                group_commit_interval: Duration::from_secs(3600),
                ..WalOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn append_and_replay() {
        let path = temp_path("roundtrip");
        let records = vec![
            Record::put("a", "1", 1, None),
            Record::delete("b", 2),
            Record::put("c", "3", 3, Some(99)),
        ];
        {
            let wal = new_wal(&path, false);
            for r in &records {
                assert!(wal.append_at(r).unwrap());
            }
            wal.flush().unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap(), records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_next_allocates_consecutive_seqs() {
        let path = temp_path("alloc");
        let wal = new_wal(&path, false);
        for expect in 1..=5u64 {
            let mut r = Record::put("k", "v", 0, None);
            let seq = wal.append_next(&mut r).unwrap();
            assert_eq!(seq, expect);
            assert_eq!(r.seq, expect);
        }
        assert_eq!(wal.last_allocated(), 5);
        wal.flush().unwrap();
        let replayed = Wal::replay(&path).unwrap();
        let seqs: Vec<u64> = replayed.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_at_dedups_and_rejects_gaps() {
        let path = temp_path("at");
        let wal = new_wal(&path, false);
        assert!(wal.append_at(&Record::put("a", "1", 1, None)).unwrap());
        assert!(!wal.append_at(&Record::put("a", "1", 1, None)).unwrap());
        assert!(wal.append_at(&Record::put("b", "2", 2, None)).is_ok());
        assert!(wal.append_at(&Record::put("x", "y", 9, None)).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let path = temp_path("missing");
        std::fs::remove_file(&path).ok();
        assert!(Wal::replay(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_recovers_prefix() {
        let path = temp_path("torn");
        {
            let wal = new_wal(&path, false);
            wal.append_at(&Record::put("a", "1", 1, None)).unwrap();
            wal.append_at(&Record::put("b", "2", 2, None)).unwrap();
            wal.flush().unwrap();
        }
        // Truncate mid-way through the second frame.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].key, &b"a"[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_log_corruption_is_reported() {
        let path = temp_path("corrupt");
        {
            let wal = new_wal(&path, false);
            wal.append_at(&Record::put("a", "1", 1, None)).unwrap();
            wal.append_at(&Record::put("b", "2", 2, None)).unwrap();
            wal.flush().unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        // Flip a payload byte in the FIRST frame (not the last).
        data[10] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(Wal::replay(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_from_resumes_at_cursor() {
        let path = temp_path("tail");
        let wal = new_wal(&path, false);
        wal.append_at(&Record::put("a", "1", 1, None)).unwrap();
        wal.flush().unwrap();
        let (batch, cursor) = Wal::replay_from(&path, 0).unwrap();
        assert_eq!(batch.len(), 1);
        // Nothing new yet: polling from the cursor returns an empty batch.
        let (batch, cursor2) = Wal::replay_from(&path, cursor).unwrap();
        assert!(batch.is_empty());
        assert_eq!(cursor2, cursor);
        // New appends become visible from the saved cursor.
        wal.append_at(&Record::put("b", "2", 2, None)).unwrap();
        wal.append_at(&Record::delete("a", 3)).unwrap();
        wal.flush().unwrap();
        let (batch, cursor3) = Wal::replay_from(&path, cursor).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].key, &b"b"[..]);
        assert!(cursor3 > cursor);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_from_missing_file_is_io_error() {
        let path = temp_path("tail-missing");
        std::fs::remove_file(&path).ok();
        match Wal::replay_from(&path, 0) {
            Err(Error::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
            other => panic!("expected Io(NotFound), got {other:?}"),
        }
    }

    #[test]
    fn replay_from_tolerates_torn_tail_at_cursor() {
        let path = temp_path("tail-torn");
        {
            let wal = new_wal(&path, false);
            wal.append_at(&Record::put("a", "1", 1, None)).unwrap();
            wal.append_at(&Record::put("b", "2", 2, None)).unwrap();
            wal.flush().unwrap();
        }
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let (batch, cursor) = Wal::replay_from(&path, 0).unwrap();
        assert_eq!(batch.len(), 1);
        // The cursor parks at the start of the torn frame; once the frame is
        // completed (here: rewritten whole) the poll picks it up.
        std::fs::write(&path, &data).unwrap();
        let (batch, _) = Wal::replay_from(&path, cursor).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].key, &b"b"[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn segment_listing_sorted() {
        let dir = std::env::temp_dir().join(format!(
            "abase-wal-segs-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        for id in [7u64, 2, 12] {
            std::fs::write(Wal::segment_path(&dir, id), b"").unwrap();
        }
        std::fs::write(dir.join("MANIFEST"), b"").unwrap();
        assert_eq!(Wal::list_segments(&dir).unwrap(), vec![2, 7, 12]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn appended_bytes_grow() {
        let path = temp_path("size");
        let wal = new_wal(&path, false);
        assert_eq!(wal.appended_bytes(), 0);
        let mut r = Record::put("key", "value", 0, None);
        wal.append_next(&mut r).unwrap();
        assert!(wal.appended_bytes() > 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drop_drains_acknowledged_frames() {
        let path = temp_path("drop-drain");
        {
            let wal = new_wal(&path, false);
            let mut r = Record::put("k", "v", 0, None);
            wal.append_next(&mut r).unwrap();
            // No flush: the buffer drains on drop (orderly close).
        }
        assert_eq!(Wal::replay(&path).unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn position_reports_only_flushed_bytes() {
        let path = temp_path("pos");
        let wal = new_wal(&path, false);
        let mut r = Record::put("k", "v", 0, None);
        wal.append_next(&mut r).unwrap();
        // Buffered, not flushed: a tail reader can't see it, so position
        // must not point past the file.
        assert_eq!(wal.position(), (0, 0));
        wal.flush().unwrap();
        let (seg, off) = wal.position();
        assert_eq!(seg, 0);
        assert_eq!(off, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_fsync_covers_concurrent_writers() {
        let path = temp_path("group");
        let wal = std::sync::Arc::new(new_wal(&path, true));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let wal = std::sync::Arc::clone(&wal);
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    let mut r = Record::put("k", "v", 0, None);
                    let seq = wal.append_next(&mut r).unwrap();
                    wal.commit(seq).unwrap();
                    assert!(wal.durable_seq() >= seq);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wal.last_allocated(), 100);
        assert_eq!(wal.durable_seq(), 100);
        // Everything committed is already in the file (no flush needed).
        assert_eq!(Wal::replay(&path).unwrap().len(), 100);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_failure_poisons_the_log() {
        // Satellite regression: a failed fsync must not leave a zombie frame
        // that surfaces on a later flush. The log poisons instead.
        let path = temp_path("fsync-poison");
        let wal = new_wal(&path, true);
        let mut r = Record::put("pre", "ok", 0, None);
        let seq = wal.append_next(&mut r).unwrap();
        wal.commit(seq).unwrap();
        let _guard = ScopedInjector::enable();
        failpoint::install(
            "wal.sync",
            Some(&path.display().to_string()),
            FaultAction::Error,
            0,
            1,
        );
        let mut r = Record::put("doomed", "x", 0, None);
        let seq = wal.append_next(&mut r).unwrap();
        assert!(wal.commit(seq).is_err());
        assert!(wal.is_poisoned());
        // Every later append fails; the doomed frame can never surface.
        let mut r = Record::put("after", "y", 0, None);
        assert!(wal.append_next(&mut r).is_err());
        wal.flush().unwrap(); // flush is a no-op on a poisoned log
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].key, &b"pre"[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_write_excluded_from_watermarks() {
        // Satellite regression: torn bytes reach the file but never advance
        // `appended`/`flushed`, so positions stay on frame boundaries.
        let path = temp_path("torn-marks");
        let wal = new_wal(&path, false);
        let mut r = Record::put("ok", "1", 0, None);
        wal.append_next(&mut r).unwrap();
        wal.flush().unwrap();
        let (_, clean_offset) = wal.position();
        let _guard = ScopedInjector::enable();
        failpoint::install(
            "wal.append",
            Some(&path.display().to_string()),
            FaultAction::TornWrite { keep_bytes: 5 },
            0,
            1,
        );
        let mut r = Record::put("torn", "x", 0, None);
        assert!(wal.append_next(&mut r).is_err());
        assert!(wal.is_poisoned());
        // File holds torn bytes past the watermark; position ignores them.
        assert_eq!(wal.position(), (0, clean_offset));
        assert!(std::fs::metadata(&path).unwrap().len() > clean_offset);
        // A tail reader parked at the position sees nothing new and no error.
        let (batch, parked) = Wal::replay_from(&path, clean_offset).unwrap();
        assert!(batch.is_empty());
        assert_eq!(parked, clean_offset);
        std::fs::remove_file(&path).ok();
    }
}
