//! Write-ahead log.
//!
//! Each appended record is framed as `[crc32 u32][len u32][payload]`. Replay
//! stops cleanly at a torn tail (a crash mid-append), recovering every fully
//! written record — the standard contract an LSM needs from its log.

use crate::encoding::crc32;
use crate::error::{Error, Result};
use crate::metrics;
use crate::record::Record;
use abase_obs::Timer;
use abase_util::failpoint::{self, FaultAction};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// An append-only record log.
#[derive(Debug)]
pub struct Wal {
    writer: BufWriter<File>,
    /// Bytes appended since open (approximate file size).
    appended: u64,
    sync_on_append: bool,
    /// The segment's path, used as fail-point context (chaos targets one
    /// replica's log by directory substring).
    context: String,
    /// Set after an injected torn write: the simulated process crashed
    /// mid-append, so every further append must fail until reopen.
    poisoned: bool,
}

fn injected_io(what: &str) -> Error {
    Error::Io(std::io::Error::other(format!("injected fault: {what}")))
}

impl Wal {
    /// The on-disk name of WAL segment `id` inside a database directory.
    pub fn segment_path(dir: &Path, id: u64) -> PathBuf {
        dir.join(format!("wal-{id:010}.log"))
    }

    /// WAL segment ids present in `dir`, ascending (ascending id is
    /// chronological: ids come from one monotonic file-id allocator).
    pub fn list_segments(dir: &Path) -> Result<Vec<u64>> {
        let mut ids: Vec<u64> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let id = name.strip_prefix("wal-")?.strip_suffix(".log")?;
                id.parse::<u64>().ok()
            })
            .collect();
        ids.sort_unstable();
        Ok(ids)
    }

    /// Create (truncating) a new log at `path`.
    pub fn create(path: &Path, sync_on_append: bool) -> Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            writer: BufWriter::new(file),
            appended: 0,
            sync_on_append,
            context: path.display().to_string(),
            poisoned: false,
        })
    }

    /// Append one record.
    pub fn append(&mut self, record: &Record) -> Result<()> {
        if self.poisoned {
            return Err(injected_io("wal poisoned by earlier torn write"));
        }
        let mut payload = Vec::with_capacity(record.approximate_size());
        record.encode(&mut payload);
        let crc = crc32(&payload);
        match failpoint::check("wal.append", &self.context) {
            Some(FaultAction::Error) => return Err(injected_io("wal append failed")),
            Some(FaultAction::TornWrite { keep_bytes }) => {
                // Simulate a crash mid-append: part of the frame reaches the
                // file (flushed so tail readers can observe the tear), then
                // this log is dead until reopened. Replay/poll must park
                // before the torn frame.
                let mut frame = Vec::with_capacity(8 + payload.len());
                frame.extend_from_slice(&crc.to_le_bytes());
                frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                frame.extend_from_slice(&payload);
                let keep = (keep_bytes as usize).min(frame.len().saturating_sub(1));
                self.writer.write_all(&frame[..keep])?;
                self.writer.flush()?;
                self.appended += keep as u64;
                self.poisoned = true;
                return Err(injected_io("torn wal append"));
            }
            _ => {}
        }
        let timer = Timer::start();
        self.writer.write_all(&crc.to_le_bytes())?;
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&payload)?;
        self.appended += 8 + payload.len() as u64;
        metrics::WAL_APPEND_BYTES.add(8 + payload.len() as u64);
        if self.sync_on_append {
            if let Some(FaultAction::Error) = failpoint::check("wal.sync", &self.context) {
                return Err(injected_io("wal fsync failed"));
            }
            let fsync_timer = Timer::start();
            self.writer.flush()?;
            self.writer.get_ref().sync_data()?;
            fsync_timer.observe(&metrics::WAL_FSYNC_MICROS);
        }
        timer.observe(&metrics::WAL_APPEND_MICROS);
        Ok(())
    }

    /// Flush buffered frames to the OS (without fsync).
    pub fn flush(&mut self) -> Result<()> {
        if let Some(FaultAction::Error) = failpoint::check("wal.flush", &self.context) {
            return Err(injected_io("wal flush failed"));
        }
        self.writer.flush()?;
        Ok(())
    }

    /// Bytes appended since the log was opened.
    pub fn appended_bytes(&self) -> u64 {
        self.appended
    }

    /// Replay a log file, returning every intact record in append order.
    ///
    /// A torn tail (truncated frame or CRC mismatch on the final frame) ends
    /// replay without error; a CRC mismatch in the middle of the log is real
    /// corruption and is reported.
    pub fn replay(path: &Path) -> Result<Vec<Record>> {
        match Self::replay_from(path, 0) {
            Ok((records, _)) => Ok(records),
            Err(Error::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    /// Replay a log file starting at byte `offset`, returning every intact
    /// record after it plus the offset just past the last complete frame.
    ///
    /// This is the replication tail-read path: a [`crate::db::Db`] follower's
    /// binlog cursor remembers `(segment, offset)` and calls this repeatedly
    /// to pick up frames the leader appended since the last poll. Only the
    /// bytes past `offset` are read (the tail, not the whole segment), so a
    /// synchronous-replication write path polling after every append stays
    /// O(new data) rather than O(segment size). A torn tail ends the batch
    /// without error (the next poll retries from the returned offset); unlike
    /// [`Wal::replay`], a missing file is an `Io` error so the caller can
    /// distinguish "rotated away" from "empty".
    pub fn replay_from(path: &Path, offset: u64) -> Result<(Vec<Record>, u64)> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if offset > len {
            return Err(Error::InvalidState(format!(
                "wal cursor offset {offset} beyond file length {len}"
            )));
        }
        std::io::Seek::seek(&mut file, std::io::SeekFrom::Start(offset))?;
        let mut data = Vec::with_capacity((len - offset) as usize);
        file.read_to_end(&mut data)?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < data.len() {
            if pos + 8 > data.len() {
                break; // torn tail: header incomplete
            }
            let mut crc_bytes = [0u8; 4];
            crc_bytes.copy_from_slice(&data[pos..pos + 4]);
            let expect_crc = u32::from_le_bytes(crc_bytes);
            let mut len_bytes = [0u8; 4];
            len_bytes.copy_from_slice(&data[pos + 4..pos + 8]);
            let len = u32::from_le_bytes(len_bytes) as usize;
            let body_start = pos + 8;
            let body_end = body_start + len;
            if body_end > data.len() {
                break; // torn tail: body incomplete
            }
            let payload = &data[body_start..body_end];
            if crc32(payload) != expect_crc {
                if body_end == data.len() {
                    break; // torn final frame
                }
                return Err(Error::Corruption(format!(
                    "wal crc mismatch at offset {}",
                    offset + pos as u64
                )));
            }
            let mut rpos = 0usize;
            let record = Record::decode(payload, &mut rpos)?;
            out.push(record);
            pos = body_end;
        }
        Ok((out, offset + pos as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "abase-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn append_and_replay() {
        let path = temp_path("roundtrip");
        let records = vec![
            Record::put("a", "1", 1, None),
            Record::delete("b", 2),
            Record::put("c", "3", 3, Some(99)),
        ];
        {
            let mut wal = Wal::create(&path, false).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
            wal.flush().unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap(), records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let path = temp_path("missing");
        std::fs::remove_file(&path).ok();
        assert!(Wal::replay(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_recovers_prefix() {
        let path = temp_path("torn");
        {
            let mut wal = Wal::create(&path, false).unwrap();
            wal.append(&Record::put("a", "1", 1, None)).unwrap();
            wal.append(&Record::put("b", "2", 2, None)).unwrap();
            wal.flush().unwrap();
        }
        // Truncate mid-way through the second frame.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].key, &b"a"[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_log_corruption_is_reported() {
        let path = temp_path("corrupt");
        {
            let mut wal = Wal::create(&path, false).unwrap();
            wal.append(&Record::put("a", "1", 1, None)).unwrap();
            wal.append(&Record::put("b", "2", 2, None)).unwrap();
            wal.flush().unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        // Flip a payload byte in the FIRST frame (not the last).
        data[10] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(Wal::replay(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_from_resumes_at_cursor() {
        let path = temp_path("tail");
        let mut wal = Wal::create(&path, false).unwrap();
        wal.append(&Record::put("a", "1", 1, None)).unwrap();
        wal.flush().unwrap();
        let (batch, cursor) = Wal::replay_from(&path, 0).unwrap();
        assert_eq!(batch.len(), 1);
        // Nothing new yet: polling from the cursor returns an empty batch.
        let (batch, cursor2) = Wal::replay_from(&path, cursor).unwrap();
        assert!(batch.is_empty());
        assert_eq!(cursor2, cursor);
        // New appends become visible from the saved cursor.
        wal.append(&Record::put("b", "2", 2, None)).unwrap();
        wal.append(&Record::delete("a", 3)).unwrap();
        wal.flush().unwrap();
        let (batch, cursor3) = Wal::replay_from(&path, cursor).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].key, &b"b"[..]);
        assert!(cursor3 > cursor);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_from_missing_file_is_io_error() {
        let path = temp_path("tail-missing");
        std::fs::remove_file(&path).ok();
        match Wal::replay_from(&path, 0) {
            Err(Error::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
            other => panic!("expected Io(NotFound), got {other:?}"),
        }
    }

    #[test]
    fn replay_from_tolerates_torn_tail_at_cursor() {
        let path = temp_path("tail-torn");
        {
            let mut wal = Wal::create(&path, false).unwrap();
            wal.append(&Record::put("a", "1", 1, None)).unwrap();
            wal.append(&Record::put("b", "2", 2, None)).unwrap();
            wal.flush().unwrap();
        }
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let (batch, cursor) = Wal::replay_from(&path, 0).unwrap();
        assert_eq!(batch.len(), 1);
        // The cursor parks at the start of the torn frame; once the frame is
        // completed (here: rewritten whole) the poll picks it up.
        std::fs::write(&path, &data).unwrap();
        let (batch, _) = Wal::replay_from(&path, cursor).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].key, &b"b"[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn segment_listing_sorted() {
        let dir = std::env::temp_dir().join(format!(
            "abase-wal-segs-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        for id in [7u64, 2, 12] {
            std::fs::write(Wal::segment_path(&dir, id), b"").unwrap();
        }
        std::fs::write(dir.join("MANIFEST"), b"").unwrap();
        assert_eq!(Wal::list_segments(&dir).unwrap(), vec![2, 7, 12]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn appended_bytes_grow() {
        let path = temp_path("size");
        let mut wal = Wal::create(&path, false).unwrap();
        assert_eq!(wal.appended_bytes(), 0);
        wal.append(&Record::put("key", "value", 1, None)).unwrap();
        assert!(wal.appended_bytes() > 8);
        std::fs::remove_file(&path).ok();
    }
}
