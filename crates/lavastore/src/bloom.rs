//! Bloom filter for SST files.
//!
//! A miss in the filter proves the key is absent from the file, letting the
//! read path skip a block fetch entirely — the dominant saving for the
//! read-heavy, low-hit workloads in Table 1 (e.g. the advertisement joiner at
//! an 18 % cache hit ratio).

use crate::encoding::{get_u32, put_u32};
use crate::error::{Error, Result};

/// A fixed-size bloom filter using double hashing (Kirsch–Mitzenmacher).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u8>,
    k: u32,
}

/// 64-bit FNV-1a — the base hash for the filter.
fn fnv1a(data: &[u8], seed: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl BloomFilter {
    /// Build a filter for `n` keys at `bits_per_key` bits each (10 by default
    /// gives ~1 % false positives).
    pub fn with_capacity(n: usize, bits_per_key: usize) -> Self {
        let n_bits = (n.max(1) * bits_per_key).max(64);
        // Optimal k = ln2 * bits/key ≈ 0.69 * bits_per_key, clamped to [1, 30].
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        Self {
            bits: vec![0u8; n_bits.div_ceil(8)],
            k,
        }
    }

    fn positions(&self, key: &[u8]) -> impl Iterator<Item = usize> + '_ {
        let h1 = fnv1a(key, 0);
        let h2 = fnv1a(key, 0x9E37_79B9_7F4A_7C15) | 1; // odd stride
        let n_bits = self.bits.len() * 8;
        (0..self.k)
            .map(move |i| (h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % n_bits as u64) as usize)
    }

    /// Insert a key.
    pub fn insert(&mut self, key: &[u8]) {
        let positions: Vec<usize> = self.positions(key).collect();
        for pos in positions {
            self.bits[pos / 8] |= 1 << (pos % 8);
        }
    }

    /// True if the key *may* be present; false proves absence.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.positions(key)
            .collect::<Vec<_>>()
            .iter()
            .all(|&pos| self.bits[pos / 8] & (1 << (pos % 8)) != 0)
    }

    /// Serialize to bytes.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.k);
        put_u32(buf, self.bits.len() as u32);
        buf.extend_from_slice(&self.bits);
    }

    /// Deserialize from `buf[*pos..]`, advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let k = get_u32(buf, pos)?;
        let len = get_u32(buf, pos)? as usize;
        let end = *pos + len;
        if end > buf.len() {
            return Err(Error::Corruption("truncated bloom filter".into()));
        }
        let bits = buf[*pos..end].to_vec();
        *pos = end;
        Ok(Self { bits, k })
    }

    /// Size of the filter in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let keys: Vec<Vec<u8>> = (0..1000).map(|i| format!("key-{i}").into_bytes()).collect();
        let mut f = BloomFilter::with_capacity(keys.len(), 10);
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            assert!(f.may_contain(k), "false negative for {k:?}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = BloomFilter::with_capacity(1000, 10);
        for i in 0..1000 {
            f.insert(format!("present-{i}").as_bytes());
        }
        let fp = (0..10_000)
            .filter(|i| f.may_contain(format!("absent-{i}").as_bytes()))
            .count();
        let rate = fp as f64 / 10_000.0;
        assert!(rate < 0.03, "false positive rate {rate}");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut f = BloomFilter::with_capacity(100, 10);
        f.insert(b"alpha");
        f.insert(b"beta");
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let mut pos = 0;
        let g = BloomFilter::decode(&buf, &mut pos).unwrap();
        assert_eq!(f, g);
        assert!(g.may_contain(b"alpha"));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn empty_filter_rejects() {
        let f = BloomFilter::with_capacity(10, 10);
        // An empty filter should contain nothing (modulo the all-zero check).
        assert!(!f.may_contain(b"anything"));
    }
}
