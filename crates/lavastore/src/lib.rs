//! # abase-lavastore
//!
//! A single-node LSM-tree storage engine standing in for **LavaStore**,
//! ByteDance's "purpose-built, high-performance, cost-effective local storage
//! engine" that ABase DataNodes run on (paper §4.3, reference [43]).
//!
//! The engine is real — write-ahead log, sorted memtable, block-structured SST
//! files with bloom filters, leveled compaction, TTL expiry — while staying
//! small enough to audit. Two properties matter for the ABase reproduction:
//!
//! 1. **I/O accounting.** Every read reports how many block I/Os it performed
//!    ([`db::ReadResult::io_ops`]); the data node feeds this to the I/O-WFQ,
//!    whose Rule 1 prices requests in IOPS because "a single I/O operation
//!    generally has a similar execution time".
//! 2. **Virtual time.** TTLs are evaluated against a caller-supplied
//!    [`abase_util::SimTime`], so cluster simulations control expiry
//!    deterministically.
//!
//! ```
//! use abase_lavastore::{Db, DbConfig};
//!
//! let dir = std::env::temp_dir().join(format!("lava-doc-{}", std::process::id()));
//! let db = Db::open(&dir, DbConfig::small_for_tests()).unwrap();
//! db.put(b"user:1", b"alice", None, 0).unwrap();
//! let read = db.get(b"user:1", 0).unwrap();
//! assert_eq!(read.value.as_deref(), Some(&b"alice"[..]));
//! drop(db);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![deny(missing_docs)]

pub mod block_cache;
pub mod bloom;
pub mod compaction;
pub mod db;
pub mod encoding;
pub mod error;
pub mod iter;
pub mod memtable;
pub mod metrics;
pub mod record;
pub mod sstable;
pub mod version;
pub mod wal;

pub use block_cache::BlockCache;
pub use db::{CheckpointInfo, Db, DbConfig, DbStats, ReadResult};
pub use error::{Error, Result};
pub use sstable::BlockIo;
