//! Internal record representation.
//!
//! Every logical operation becomes an internal record ordered by
//! `(user_key asc, seq desc)`: newer versions of a key shadow older ones, and a
//! tombstone shadows every older value. TTL is carried per record and evaluated
//! lazily against virtual time on read and during compaction.

use crate::encoding::{
    get_len_prefixed, get_u64, get_varint, put_len_prefixed, put_u64, put_varint,
};
use crate::error::{Error, Result};
use bytes::Bytes;
use std::cmp::Ordering;

/// Monotonic sequence number assigned by the engine per write.
pub type SeqNo = u64;

/// What a record does to its key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Insert/overwrite the key with a value.
    Put = 0,
    /// Delete the key (tombstone).
    Delete = 1,
}

impl RecordKind {
    fn from_u64(v: u64) -> Result<Self> {
        match v {
            0 => Ok(RecordKind::Put),
            1 => Ok(RecordKind::Delete),
            other => Err(Error::Corruption(format!("bad record kind {other}"))),
        }
    }
}

/// Sentinel meaning "no TTL".
pub const NO_EXPIRY: u64 = u64::MAX;

/// An internal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// User key.
    pub key: Bytes,
    /// Engine sequence number (larger = newer).
    pub seq: SeqNo,
    /// Operation kind.
    pub kind: RecordKind,
    /// Absolute virtual-time expiry in microseconds, or [`NO_EXPIRY`].
    pub expires_at: u64,
    /// Value (empty for tombstones).
    pub value: Bytes,
}

impl Record {
    /// A put record.
    pub fn put(
        key: impl Into<Bytes>,
        value: impl Into<Bytes>,
        seq: SeqNo,
        expires_at: Option<u64>,
    ) -> Self {
        Self {
            key: key.into(),
            seq,
            kind: RecordKind::Put,
            expires_at: expires_at.unwrap_or(NO_EXPIRY),
            value: value.into(),
        }
    }

    /// A tombstone record.
    pub fn delete(key: impl Into<Bytes>, seq: SeqNo) -> Self {
        Self {
            key: key.into(),
            seq,
            kind: RecordKind::Delete,
            expires_at: NO_EXPIRY,
            value: Bytes::new(),
        }
    }

    /// True if the record carries a TTL that has lapsed by `now`.
    pub fn is_expired(&self, now: u64) -> bool {
        self.expires_at != NO_EXPIRY && self.expires_at <= now
    }

    /// Internal ordering: key ascending, then sequence descending (newest
    /// version of a key sorts first).
    pub fn internal_cmp(&self, other: &Record) -> Ordering {
        self.key
            .cmp(&other.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }

    /// Serialized size estimate in bytes (used for memtable accounting).
    pub fn approximate_size(&self) -> usize {
        self.key.len() + self.value.len() + 24
    }

    /// Append the record to `buf` in the on-disk framing.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_len_prefixed(buf, &self.key);
        put_u64(buf, self.seq);
        put_varint(buf, self.kind as u64);
        put_u64(buf, self.expires_at);
        put_len_prefixed(buf, &self.value);
    }

    /// Read only the key of the record at `buf[*pos..]`, advancing `pos`
    /// past the whole record without materializing any field. Binary-search
    /// probes and short-circuited scans use this to skip records whose key
    /// already decided the comparison.
    pub fn peek_key<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a [u8]> {
        let key = get_len_prefixed(buf, pos)?;
        get_u64(buf, pos)?; // seq
        get_varint(buf, pos)?; // kind
        get_u64(buf, pos)?; // expires_at
        get_len_prefixed(buf, pos)?; // value (bounds-checked slice, no copy)
        Ok(key)
    }

    /// Decode a record from `buf[*pos..]`, advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Record> {
        let key = Bytes::copy_from_slice(get_len_prefixed(buf, pos)?);
        let seq = get_u64(buf, pos)?;
        let kind = RecordKind::from_u64(get_varint(buf, pos)?)?;
        let expires_at = get_u64(buf, pos)?;
        let value = Bytes::copy_from_slice(get_len_prefixed(buf, pos)?);
        Ok(Record {
            key,
            seq,
            kind,
            expires_at,
            value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let records = vec![
            Record::put("key1", "value1", 7, None),
            Record::put("key2", "", 8, Some(1_000_000)),
            Record::delete("key3", 9),
        ];
        let mut buf = Vec::new();
        for r in &records {
            r.encode(&mut buf);
        }
        let mut pos = 0;
        for r in &records {
            assert_eq!(&Record::decode(&buf, &mut pos).unwrap(), r);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn peek_key_advances_like_decode() {
        let records = vec![
            Record::put("key1", "value1", 7, None),
            Record::delete("key2", 8),
        ];
        let mut buf = Vec::new();
        for r in &records {
            r.encode(&mut buf);
        }
        let mut pos = 0;
        for r in &records {
            let before = pos;
            let key = Record::peek_key(&buf, &mut pos).unwrap();
            assert_eq!(key, r.key.as_ref());
            let mut decode_pos = before;
            Record::decode(&buf, &mut decode_pos).unwrap();
            assert_eq!(pos, decode_pos, "peek_key must skip the whole record");
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn internal_ordering_newest_first_per_key() {
        let old = Record::put("a", "1", 1, None);
        let new = Record::put("a", "2", 2, None);
        let other = Record::put("b", "x", 1, None);
        assert_eq!(new.internal_cmp(&old), Ordering::Less);
        assert_eq!(old.internal_cmp(&other), Ordering::Less);
    }

    #[test]
    fn expiry_semantics() {
        let r = Record::put("k", "v", 1, Some(100));
        assert!(!r.is_expired(99));
        assert!(r.is_expired(100));
        let forever = Record::put("k", "v", 1, None);
        assert!(!forever.is_expired(u64::MAX - 1));
    }

    #[test]
    fn decode_rejects_bad_kind() {
        let mut buf = Vec::new();
        Record::put("k", "v", 1, None).encode(&mut buf);
        // Corrupt the kind byte: it follows key (1+1 bytes) + seq (8 bytes).
        buf[10] = 9;
        let mut pos = 0;
        assert!(Record::decode(&buf, &mut pos).is_err());
    }
}
