//! Engine error type.

use std::fmt;

/// Errors surfaced by the storage engine.
#[derive(Debug)]
pub enum Error {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A persisted structure failed its checksum or framing checks.
    Corruption(String),
    /// The database directory is in an unexpected state.
    InvalidState(String),
}

/// Convenience alias for engine results.
pub type Result<T> = std::result::Result<T, Error>;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Corruption(msg) => write!(f, "corruption: {msg}"),
            Error::InvalidState(msg) => write!(f, "invalid state: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::Corruption("bad crc".into());
        assert!(e.to_string().contains("bad crc"));
        let io: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));
    }
}
