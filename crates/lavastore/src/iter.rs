//! K-way merge over sorted record streams.
//!
//! Compaction and range scans merge several sorted sources (memtable, L0
//! files, leveled files). The merge yields records in internal order — key
//! ascending, sequence descending — and can deduplicate to the newest visible
//! version per key.

use crate::record::Record;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct HeapItem {
    record: Record,
    /// Which source the record came from (lower = newer source, used as the
    /// final tie-break so identical (key, seq) prefers the newer source).
    source: usize,
    rest: std::vec::IntoIter<Record>,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on internal order.
        other
            .record
            .internal_cmp(&self.record)
            .then_with(|| other.source.cmp(&self.source))
    }
}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Merge already-sorted record vectors into one internally-ordered stream.
///
/// Sources must each be sorted by key ascending (one version per key within a
/// source is typical but not required). `sources[0]` is treated as the newest
/// for tie-breaking.
pub struct MergeIterator {
    heap: BinaryHeap<HeapItem>,
}

impl MergeIterator {
    /// Build a merge over the given sorted sources.
    pub fn new(sources: Vec<Vec<Record>>) -> Self {
        let mut heap = BinaryHeap::new();
        for (source, records) in sources.into_iter().enumerate() {
            let mut it = records.into_iter();
            if let Some(record) = it.next() {
                heap.push(HeapItem {
                    record,
                    source,
                    rest: it,
                });
            }
        }
        Self { heap }
    }

    /// Collapse the stream to the newest version per key, applying GC policy:
    /// drop records expired at `now`, and drop tombstones when `drop_tombstones`
    /// (bottom-level compaction, where nothing older can exist).
    pub fn dedup_newest(self, now: u64, drop_tombstones: bool) -> Vec<Record> {
        let mut out: Vec<Record> = Vec::new();
        let mut last_key: Option<bytes::Bytes> = None;
        for record in self {
            if last_key.as_ref() == Some(&record.key) {
                continue; // older version of the same key
            }
            last_key = Some(record.key.clone());
            if record.is_expired(now) {
                continue;
            }
            if drop_tombstones && record.kind == crate::record::RecordKind::Delete {
                continue;
            }
            out.push(record);
        }
        out
    }
}

impl Iterator for MergeIterator {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        let mut top = self.heap.pop()?;
        let record = top.record;
        if let Some(next) = top.rest.next() {
            top.record = next;
            self.heap.push(top);
        }
        Some(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordKind;

    #[test]
    fn merges_in_internal_order() {
        let a = vec![
            Record::put("a", "new", 10, None),
            Record::put("c", "c1", 3, None),
        ];
        let b = vec![
            Record::put("a", "old", 5, None),
            Record::put("b", "b1", 4, None),
        ];
        let merged: Vec<_> = MergeIterator::new(vec![a, b]).collect();
        let keys: Vec<_> = merged.iter().map(|r| (r.key.clone(), r.seq)).collect();
        assert_eq!(
            keys,
            vec![
                ("a".into(), 10),
                ("a".into(), 5),
                ("b".into(), 4),
                ("c".into(), 3)
            ]
        );
    }

    #[test]
    fn dedup_keeps_newest_version() {
        let a = vec![Record::put("k", "new", 10, None)];
        let b = vec![Record::put("k", "old", 5, None)];
        let out = MergeIterator::new(vec![a, b]).dedup_newest(0, false);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, &b"new"[..]);
    }

    #[test]
    fn dedup_drops_expired() {
        let a = vec![Record::put("k", "v", 10, Some(100))];
        let out = MergeIterator::new(vec![a.clone()]).dedup_newest(100, false);
        assert!(out.is_empty());
        let kept = MergeIterator::new(vec![a]).dedup_newest(99, false);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn newest_expired_version_shadows_older_live_one() {
        // The newest version expired ⇒ the key is gone; the older version must
        // NOT resurface.
        let newer = vec![Record::put("k", "expired", 10, Some(50))];
        let older = vec![Record::put("k", "live", 5, None)];
        let out = MergeIterator::new(vec![newer, older]).dedup_newest(100, false);
        assert!(out.is_empty(), "older version resurrected: {out:?}");
    }

    #[test]
    fn tombstones_kept_or_dropped_by_level() {
        let a = vec![Record::delete("k", 10)];
        let b = vec![Record::put("k", "old", 5, None)];
        let intermediate = MergeIterator::new(vec![a.clone(), b.clone()]).dedup_newest(0, false);
        assert_eq!(intermediate.len(), 1);
        assert_eq!(intermediate[0].kind, RecordKind::Delete);
        let bottom = MergeIterator::new(vec![a, b]).dedup_newest(0, true);
        assert!(bottom.is_empty());
    }

    #[test]
    fn empty_sources_ok() {
        let out: Vec<_> = MergeIterator::new(vec![vec![], vec![]]).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn equal_key_seq_prefers_newer_source() {
        let newer = vec![Record::put("k", "from-source-0", 7, None)];
        let older = vec![Record::put("k", "from-source-1", 7, None)];
        let out = MergeIterator::new(vec![newer, older]).dedup_newest(0, false);
        assert_eq!(out[0].value, &b"from-source-0"[..]);
    }
}
