//! Sorted in-memory write buffer.
//!
//! The memtable keeps only the newest version of each key (the WAL holds the
//! full history for recovery), which makes flushes emit exactly one record per
//! key — matching the SST invariant of one version per key per file.

use crate::record::{Record, RecordKind, SeqNo};
use bytes::Bytes;
use std::collections::BTreeMap;
use std::ops::Bound;

/// The newest state of a key inside the memtable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemEntry {
    /// Sequence number of the newest write.
    pub seq: SeqNo,
    /// Put or tombstone.
    pub kind: RecordKind,
    /// Absolute expiry or [`NO_EXPIRY`].
    pub expires_at: u64,
    /// Value (empty for tombstones).
    pub value: Bytes,
}

/// A sorted write buffer with byte-size accounting.
#[derive(Debug, Default)]
pub struct MemTable {
    entries: BTreeMap<Bytes, MemEntry>,
    approximate_bytes: usize,
}

impl MemTable {
    /// An empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply a record (newest wins; an older record than the stored one is
    /// ignored, which makes WAL replay idempotent).
    pub fn apply(&mut self, record: &Record) {
        if let Some(existing) = self.entries.get(&record.key) {
            if existing.seq >= record.seq {
                return;
            }
            self.approximate_bytes -= existing.value.len() + record.key.len() + 24;
        }
        self.approximate_bytes += record.approximate_size();
        self.entries.insert(
            record.key.clone(),
            MemEntry {
                seq: record.seq,
                kind: record.kind,
                expires_at: record.expires_at,
                value: record.value.clone(),
            },
        );
    }

    /// Newest entry for `key`, if buffered (tombstones included).
    pub fn get(&self, key: &[u8]) -> Option<&MemEntry> {
        self.entries.get(key)
    }

    /// Number of buffered keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate heap footprint in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.approximate_bytes
    }

    /// Iterate entries in key order as [`Record`]s (for flushing).
    pub fn iter_records(&self) -> impl Iterator<Item = Record> + '_ {
        self.entries.iter().map(|(key, e)| Record {
            key: key.clone(),
            seq: e.seq,
            kind: e.kind,
            expires_at: e.expires_at,
            value: e.value.clone(),
        })
    }

    /// Entries whose key starts with `prefix`, in key order.
    pub fn scan_prefix<'a>(
        &'a self,
        prefix: &'a [u8],
    ) -> impl Iterator<Item = (&'a Bytes, &'a MemEntry)> + 'a {
        self.entries
            .range::<[u8], _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(move |(k, _)| k.starts_with(prefix))
    }

    /// Drop everything (after a successful flush).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.approximate_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::NO_EXPIRY;

    #[test]
    fn apply_newest_wins() {
        let mut m = MemTable::new();
        m.apply(&Record::put("k", "v1", 1, None));
        m.apply(&Record::put("k", "v2", 2, None));
        assert_eq!(m.get(b"k").unwrap().value, &b"v2"[..]);
        assert_eq!(m.len(), 1);
        // An out-of-order older record is ignored (idempotent replay).
        m.apply(&Record::put("k", "v0", 1, None));
        assert_eq!(m.get(b"k").unwrap().value, &b"v2"[..]);
    }

    #[test]
    fn tombstone_shadows_put() {
        let mut m = MemTable::new();
        m.apply(&Record::put("k", "v", 1, None));
        m.apply(&Record::delete("k", 2));
        let e = m.get(b"k").unwrap();
        assert_eq!(e.kind, RecordKind::Delete);
    }

    #[test]
    fn byte_accounting_tracks_replacements() {
        let mut m = MemTable::new();
        m.apply(&Record::put("key", "small", 1, None));
        let b1 = m.approximate_bytes();
        m.apply(&Record::put("key", "a-much-longer-value", 2, None));
        let b2 = m.approximate_bytes();
        assert!(b2 > b1);
        m.clear();
        assert_eq!(m.approximate_bytes(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn iter_records_sorted_by_key() {
        let mut m = MemTable::new();
        m.apply(&Record::put("b", "2", 2, None));
        m.apply(&Record::put("a", "1", 1, None));
        m.apply(&Record::put("c", "3", 3, None));
        let keys: Vec<_> = m.iter_records().map(|r| r.key).collect();
        assert_eq!(keys, vec![&b"a"[..], &b"b"[..], &b"c"[..]]);
    }

    #[test]
    fn scan_prefix_selects_range() {
        let mut m = MemTable::new();
        m.apply(&Record::put("user:1", "a", 1, None));
        m.apply(&Record::put("user:2", "b", 2, None));
        m.apply(&Record::put("video:1", "c", 3, None));
        let hits: Vec<_> = m.scan_prefix(b"user:").map(|(k, _)| k.clone()).collect();
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|k| k.starts_with(b"user:")));
    }

    #[test]
    fn expiry_carried_through() {
        let mut m = MemTable::new();
        m.apply(&Record::put("k", "v", 1, Some(500)));
        assert_eq!(m.get(b"k").unwrap().expires_at, 500);
        m.apply(&Record::put("k2", "v", 2, None));
        assert_eq!(m.get(b"k2").unwrap().expires_at, NO_EXPIRY);
    }
}
