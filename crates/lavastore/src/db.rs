//! The engine facade: a crash-safe, TTL-aware LSM key-value store.
//!
//! Writes go WAL → memtable; a full memtable flushes to an L0 SST; leveled
//! compaction keeps read amplification bounded and garbage-collects tombstones
//! and expired records. Reads report their block-I/O count so the ABase data
//! node can price them into the I/O-WFQ.

use crate::compaction::{pick_compaction, CompactionConfig};
use crate::error::{Error, Result};
use crate::iter::MergeIterator;
use crate::memtable::MemTable;
use crate::record::{Record, RecordKind, NO_EXPIRY};
use crate::sstable::{SstReader, SstWriter};
use crate::version::{SstMeta, Version};
use crate::wal::Wal;
use abase_util::clock::SimTime;
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct DbConfig {
    /// Memtable flush threshold in bytes.
    pub memtable_bytes: usize,
    /// Target uncompressed data-block size.
    pub block_bytes: usize,
    /// Target size for SST files written by flush/compaction.
    pub target_sst_bytes: u64,
    /// Bloom filter density.
    pub bloom_bits_per_key: usize,
    /// fsync the WAL on every append (durability vs. throughput).
    pub sync_wal: bool,
    /// Rotated WAL segments to retain as a replication backlog. Segments
    /// below the manifest's `wal_floor` are fully flushed into SSTs and never
    /// replayed; keeping a few lets binlog tail readers (followers) finish
    /// reading a closed segment instead of forcing a full resync.
    pub wal_retention_segments: usize,
    /// Compaction policy knobs.
    pub compaction: CompactionConfig,
}

impl Default for DbConfig {
    fn default() -> Self {
        Self {
            memtable_bytes: 4 << 20,
            block_bytes: 4 << 10,
            target_sst_bytes: 8 << 20,
            bloom_bits_per_key: 10,
            sync_wal: false,
            wal_retention_segments: 2,
            compaction: CompactionConfig::default(),
        }
    }
}

impl DbConfig {
    /// Tiny limits that force flush/compaction activity in unit tests.
    pub fn small_for_tests() -> Self {
        Self {
            memtable_bytes: 4 << 10,
            block_bytes: 512,
            target_sst_bytes: 8 << 10,
            bloom_bits_per_key: 10,
            sync_wal: false,
            wal_retention_segments: 2,
            compaction: CompactionConfig {
                l0_trigger: 3,
                level_base_bytes: 16 << 10,
                level_growth: 4,
                n_levels: 4,
            },
        }
    }
}

/// Outcome of a point read.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadResult {
    /// The live value, if the key exists and has not expired.
    pub value: Option<Bytes>,
    /// Data-block reads performed (0 when served by memtable/bloom).
    pub io_ops: u32,
    /// True when the memtable answered.
    pub from_memtable: bool,
}

/// Monotonic counters exposed by the engine.
#[derive(Debug, Default)]
struct StatsInner {
    gets: AtomicU64,
    puts: AtomicU64,
    deletes: AtomicU64,
    block_reads: AtomicU64,
    memtable_hits: AtomicU64,
    flushes: AtomicU64,
    compactions: AtomicU64,
    sst_bytes_written: AtomicU64,
}

/// Snapshot of the engine counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbStats {
    /// Point reads served.
    pub gets: u64,
    /// Put operations applied.
    pub puts: u64,
    /// Delete operations applied.
    pub deletes: u64,
    /// Data-block reads across all SSTs.
    pub block_reads: u64,
    /// Reads answered from the memtable.
    pub memtable_hits: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions executed.
    pub compactions: u64,
    /// Bytes written into SST files (flush + compaction).
    pub sst_bytes_written: u64,
}

struct Inner {
    memtable: MemTable,
    version: Version,
    readers: HashMap<u64, Arc<SstReader>>,
    wal: Wal,
    wal_id: u64,
    wal_path: PathBuf,
}

/// Where a [`Db::checkpoint`] snapshot ends in the source's log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// Highest sequence number contained in the snapshot.
    pub last_seq: u64,
    /// WAL segment that was current when the snapshot was taken.
    pub wal_segment: u64,
    /// Byte offset within that segment covered by the snapshot.
    pub wal_offset: u64,
    /// Total bytes copied (SSTs + WALs).
    pub bytes_copied: u64,
}

/// A LavaStore database instance rooted at a directory.
pub struct Db {
    dir: PathBuf,
    config: DbConfig,
    inner: RwLock<Inner>,
    stats: StatsInner,
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db").field("dir", &self.dir).finish()
    }
}

fn sst_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("{id:010}.sst"))
}

fn wal_path(dir: &Path, id: u64) -> PathBuf {
    Wal::segment_path(dir, id)
}

impl Db {
    /// Open (or create) a database at `dir`, recovering from the manifest and
    /// any write-ahead logs present.
    pub fn open(dir: impl AsRef<Path>, config: DbConfig) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // Sweep checkpoint pin directories a crashed process left behind:
        // their hard links would otherwise keep deleted SSTs' disk space
        // pinned forever.
        for entry in std::fs::read_dir(&dir)?.filter_map(|e| e.ok()) {
            if entry
                .file_name()
                .to_string_lossy()
                .starts_with(".ckpt-pin-")
            {
                std::fs::remove_dir_all(entry.path()).ok();
            }
        }
        let mut version = match Version::load(&dir)? {
            Some(v) => v,
            None => Version::new(config.compaction.n_levels),
        };
        if version.levels.len() != config.compaction.n_levels {
            return Err(Error::InvalidState(format!(
                "manifest has {} levels, config expects {}",
                version.levels.len(),
                config.compaction.n_levels
            )));
        }
        // Open readers for every live file.
        let mut readers = HashMap::new();
        for files in &version.levels {
            for meta in files {
                let reader = SstReader::open(&sst_path(&dir, meta.id))?;
                readers.insert(meta.id, Arc::new(reader));
            }
        }
        // Replay surviving WALs (ascending id = chronological). Segments
        // below the floor are retained replication backlog: their records
        // already live in SSTs, so they are skipped.
        let mut memtable = MemTable::new();
        for id in Wal::list_segments(&dir)? {
            if id < version.wal_floor {
                continue;
            }
            for record in Wal::replay(&wal_path(&dir, id))? {
                version.next_seq = version.next_seq.max(record.seq + 1);
                memtable.apply(&record);
            }
        }
        // New writes land in a fresh WAL.
        let wal_id = version.allocate_file_id();
        let new_wal_path = wal_path(&dir, wal_id);
        let wal = Wal::create(&new_wal_path, config.sync_wal)?;
        version.save(&dir)?;
        Ok(Self {
            dir,
            config,
            inner: RwLock::new(Inner {
                memtable,
                version,
                readers,
                wal,
                wal_id,
                wal_path: new_wal_path,
            }),
            stats: StatsInner::default(),
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// Insert or overwrite `key` with `value`, optionally expiring at the
    /// absolute virtual time `expires_at`.
    pub fn put(
        &self,
        key: &[u8],
        value: &[u8],
        expires_at: Option<SimTime>,
        _now: SimTime,
    ) -> Result<()> {
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.write();
        let seq = inner.version.next_seq;
        let record = Record::put(
            Bytes::copy_from_slice(key),
            Bytes::copy_from_slice(value),
            seq,
            expires_at,
        );
        // Allocate the sequence number only once the append lands, so a
        // failed write never leaves a numbering gap in the log.
        inner.wal.append(&record)?;
        inner.memtable.apply(&record);
        inner.version.next_seq = seq + 1;
        if inner.memtable.approximate_bytes() >= self.config.memtable_bytes {
            self.flush_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Delete `key` (writes a tombstone).
    pub fn delete(&self, key: &[u8], _now: SimTime) -> Result<()> {
        self.stats.deletes.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.write();
        let seq = inner.version.next_seq;
        let record = Record::delete(Bytes::copy_from_slice(key), seq);
        inner.wal.append(&record)?;
        inner.memtable.apply(&record);
        inner.version.next_seq = seq + 1;
        if inner.memtable.approximate_bytes() >= self.config.memtable_bytes {
            self.flush_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Apply a record shipped from a replication leader, preserving its
    /// sequence number (the replication LSN).
    ///
    /// This is the follower half of WAL shipping: the record goes through the
    /// exact same WAL-then-memtable path as a local write, so follower
    /// durability and crash recovery are identical to the leader's. Returns
    /// `Ok(false)` when the record was already applied (`seq` at or below the
    /// follower's high-water mark) — shipping is therefore idempotent and
    /// at-least-once delivery is safe. Callers detect *gaps* (a record
    /// arriving with `seq` beyond `last_seq() + 1`) before applying; this
    /// method rejects them to keep the follower a strict prefix of the leader.
    pub fn apply_replicated(&self, record: &Record) -> Result<bool> {
        let mut inner = self.inner.write();
        if record.seq < inner.version.next_seq {
            return Ok(false);
        }
        if record.seq > inner.version.next_seq {
            return Err(Error::InvalidState(format!(
                "replication gap: record seq {} but follower expects {}",
                record.seq, inner.version.next_seq
            )));
        }
        // Durability before visibility: only a record that reached the WAL
        // may advance the high-water mark. Bumping `next_seq` first would
        // make a failed append look applied — a re-ship would dedup and the
        // follower would silently diverge while still counting toward quorum.
        inner.wal.append(record)?;
        inner.memtable.apply(record);
        inner.version.next_seq = record.seq + 1;
        match record.kind {
            RecordKind::Put => self.stats.puts.fetch_add(1, Ordering::Relaxed),
            RecordKind::Delete => self.stats.deletes.fetch_add(1, Ordering::Relaxed),
        };
        if inner.memtable.approximate_bytes() >= self.config.memtable_bytes {
            self.flush_locked(&mut inner)?;
        }
        Ok(true)
    }

    /// Highest sequence number (replication LSN) applied so far; 0 when empty.
    pub fn last_seq(&self) -> u64 {
        self.inner.read().version.next_seq - 1
    }

    /// Flush buffered WAL frames to the OS so tail readers (replication
    /// binlogs) can observe them. Does not fsync.
    pub fn flush_wal(&self) -> Result<()> {
        self.inner.write().wal.flush()
    }

    /// Id of the WAL segment currently receiving appends.
    pub fn current_wal_segment(&self) -> u64 {
        self.inner.read().wal_id
    }

    /// Current append position of the live WAL, as a `(segment, byte
    /// offset)` pair — where a tail reader that has already applied every
    /// record should resume (planned leadership handover seeks caught-up
    /// followers here instead of re-polling the full retained log).
    pub fn wal_position(&self) -> (u64, u64) {
        let inner = self.inner.read();
        (inner.wal_id, inner.wal.appended_bytes())
    }

    /// The directory this database lives in (replication tails its WALs).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Copy a crash-consistent snapshot of the database into `dest_dir`
    /// (manifest, SSTs, and WALs), returning where the copy ends in the log.
    ///
    /// Used for full resynchronization: a follower too far behind for WAL
    /// shipping (its segments were rotated away) reopens from a checkpoint and
    /// resumes tailing at the returned `(wal_segment, wal_offset)` position.
    /// `on_chunk` is invoked with each copied chunk's size — reconstruction
    /// uses it to model per-node disk bandwidth.
    ///
    /// The write lock is held only to *pin* the snapshot: live files are
    /// hard-linked into a private pin directory and the log cursor recorded,
    /// all O(files). The byte copy then streams **without any lock**, reading
    /// the pinned inodes — concurrent writers, flushes, and compactions
    /// proceed during the transfer (a deleted original stays readable through
    /// its link), so seeding a replica does not stall the write path. The
    /// live WAL segment is copied only up to the recorded offset, keeping the
    /// clone byte-exact with the returned cursor even while the leader keeps
    /// appending.
    pub fn checkpoint_with(
        &self,
        dest_dir: &Path,
        on_chunk: &mut dyn FnMut(usize),
    ) -> Result<CheckpointInfo> {
        static PIN_SEQ: AtomicU64 = AtomicU64::new(0);
        let pin_timer = abase_obs::Timer::start();
        let pin_dir = self.dir.join(format!(
            ".ckpt-pin-{}-{}",
            std::process::id(),
            PIN_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        // Phase 1 — pin under the write lock. Cleanup of the pin directory on
        // *any* exit (including a failed hard link) happens below; a crashed
        // process's stale pin dirs are swept by `Db::open`.
        struct PinSnapshot {
            version: Version,
            wal_segment: u64,
            wal_offset: u64,
            /// `(pinned link, destination path)` per live file.
            files: Vec<(PathBuf, PathBuf)>,
        }
        let phase1 = || -> Result<PinSnapshot> {
            let mut inner = self.inner.write();
            inner.wal.flush()?;
            std::fs::create_dir_all(&pin_dir)?;
            let mut pinned: Vec<(PathBuf, PathBuf)> = Vec::new(); // (pin, dest name)
            let mut pin = |src: PathBuf, dest_name: PathBuf| -> Result<()> {
                let pinned_path = pin_dir.join(src.file_name().expect("data files have names"));
                std::fs::hard_link(&src, &pinned_path)?;
                pinned.push((pinned_path, dest_name));
                Ok(())
            };
            for files in &inner.version.levels {
                for meta in files {
                    pin(sst_path(&self.dir, meta.id), sst_path(dest_dir, meta.id))?;
                }
            }
            for id in Wal::list_segments(&self.dir)? {
                // Segments below the floor are retained backlog for tail
                // readers; their records are already in the pinned SSTs and
                // the clone would never replay them — copying them wastes
                // recovery bandwidth.
                if id < inner.version.wal_floor {
                    continue;
                }
                pin(wal_path(&self.dir, id), wal_path(dest_dir, id))?;
            }
            Ok(PinSnapshot {
                version: inner.version.clone(),
                wal_segment: inner.wal_id,
                wal_offset: inner.wal.appended_bytes(),
                files: pinned,
            })
        };
        let PinSnapshot {
            version,
            wal_segment,
            wal_offset,
            files: pinned,
        } = match phase1() {
            Ok(snapshot) => snapshot,
            Err(e) => {
                std::fs::remove_dir_all(&pin_dir).ok();
                return Err(e);
            }
        };
        // Phase 2 — stream the pinned bytes, lock-free.
        let result = (|| -> Result<u64> {
            std::fs::create_dir_all(dest_dir)?;
            let mut bytes_copied = 0u64;
            let fp_context = self.dir.display().to_string();
            let live_wal_name = wal_path(&self.dir, wal_segment);
            for (pinned_path, dest) in &pinned {
                // Cap the live segment at the recorded cursor; appends that
                // landed after the pin belong to the tail the follower ships.
                let limit = if pinned_path.file_name() == live_wal_name.file_name() {
                    Some(wal_offset)
                } else {
                    None
                };
                let mut reader = std::fs::File::open(pinned_path)?;
                let mut writer = std::fs::File::create(dest)?;
                let mut remaining = limit.unwrap_or(u64::MAX);
                let mut chunk = vec![0u8; 64 << 10];
                while remaining > 0 {
                    // Chaos site: a checkpoint source dying mid-copy (each
                    // chunk may be the one that fails or stalls).
                    if let Some(abase_util::failpoint::FaultAction::Error) =
                        abase_util::failpoint::check("db.checkpoint", &fp_context)
                    {
                        return Err(Error::Io(std::io::Error::other(
                            "injected fault: checkpoint source failed mid-copy",
                        )));
                    }
                    let want = chunk.len().min(remaining.min(u64::MAX >> 1) as usize);
                    let n = std::io::Read::read(&mut reader, &mut chunk[..want])?;
                    if n == 0 {
                        break;
                    }
                    std::io::Write::write_all(&mut writer, &chunk[..n])?;
                    bytes_copied += n as u64;
                    remaining = remaining.saturating_sub(n as u64);
                    on_chunk(n);
                }
            }
            version.save(dest_dir)?;
            Ok(bytes_copied)
        })();
        std::fs::remove_dir_all(&pin_dir).ok();
        pin_timer.observe(&crate::metrics::CHECKPOINT_PIN_MICROS);
        let bytes_copied = result?;
        crate::metrics::CHECKPOINTS.inc();
        Ok(CheckpointInfo {
            last_seq: version.next_seq - 1,
            wal_segment,
            wal_offset,
            bytes_copied,
        })
    }

    /// [`Db::checkpoint_with`] without a progress callback.
    pub fn checkpoint(&self, dest_dir: &Path) -> Result<CheckpointInfo> {
        self.checkpoint_with(dest_dir, &mut |_| {})
    }

    /// Point read at virtual time `now` (TTL-expired records read as absent).
    pub fn get(&self, key: &[u8], now: SimTime) -> Result<ReadResult> {
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.read();
        // 1. Memtable: the newest state, shadowing everything below.
        if let Some(entry) = inner.memtable.get(key) {
            self.stats.memtable_hits.fetch_add(1, Ordering::Relaxed);
            let value = match entry.kind {
                RecordKind::Delete => None,
                RecordKind::Put => {
                    if entry.expires_at != NO_EXPIRY && entry.expires_at <= now {
                        None
                    } else {
                        Some(entry.value.clone())
                    }
                }
            };
            return Ok(ReadResult {
                value,
                io_ops: 0,
                from_memtable: true,
            });
        }
        let mut io_ops = 0u32;
        // 2. L0, newest file first (files may overlap).
        for meta in &inner.version.levels[0] {
            let reader = &inner.readers[&meta.id];
            let (record, io) = reader.get(key)?;
            io_ops += io;
            if let Some(record) = record {
                self.stats
                    .block_reads
                    .fetch_add(u64::from(io), Ordering::Relaxed);
                return Ok(self.resolve(record, now, io_ops));
            }
        }
        // 3. L1+: at most one candidate file per level.
        for level in 1..inner.version.levels.len() {
            let files = &inner.version.levels[level];
            let idx = files.partition_point(|m| m.max_key.as_ref() < key);
            if let Some(meta) = files.get(idx) {
                if meta.min_key.as_ref() <= key {
                    let reader = &inner.readers[&meta.id];
                    let (record, io) = reader.get(key)?;
                    io_ops += io;
                    if let Some(record) = record {
                        self.stats
                            .block_reads
                            .fetch_add(u64::from(io_ops), Ordering::Relaxed);
                        return Ok(self.resolve(record, now, io_ops));
                    }
                }
            }
        }
        self.stats
            .block_reads
            .fetch_add(u64::from(io_ops), Ordering::Relaxed);
        Ok(ReadResult {
            value: None,
            io_ops,
            from_memtable: false,
        })
    }

    fn resolve(&self, record: Record, now: SimTime, io_ops: u32) -> ReadResult {
        let value = match record.kind {
            RecordKind::Delete => None,
            RecordKind::Put => {
                if record.is_expired(now) {
                    None
                } else {
                    Some(record.value)
                }
            }
        };
        ReadResult {
            value,
            io_ops,
            from_memtable: false,
        }
    }

    /// All live `(key, value)` pairs whose key starts with `prefix`, at
    /// virtual time `now`. Returns the pairs and the block I/Os used.
    pub fn scan_prefix(&self, prefix: &[u8], now: SimTime) -> Result<(Vec<(Bytes, Bytes)>, u32)> {
        let inner = self.inner.read();
        let mut sources = Vec::new();
        // Source 0 (newest): memtable.
        sources.push(
            inner
                .memtable
                .scan_prefix(prefix)
                .map(|(k, e)| Record {
                    key: k.clone(),
                    seq: e.seq,
                    kind: e.kind,
                    expires_at: e.expires_at,
                    value: e.value.clone(),
                })
                .collect::<Vec<_>>(),
        );
        let mut io_ops = 0u32;
        // L0 newest-first, then deeper levels.
        for level in 0..inner.version.levels.len() {
            for meta in &inner.version.levels[level] {
                if !meta.overlaps(prefix, upper_bound_for_prefix(prefix).as_ref()) {
                    continue;
                }
                let reader = &inner.readers[&meta.id];
                let (records, io) = reader.scan_prefix(prefix)?;
                io_ops += io;
                sources.push(records);
            }
        }
        self.stats
            .block_reads
            .fetch_add(u64::from(io_ops), Ordering::Relaxed);
        let merged = MergeIterator::new(sources).dedup_newest(now, true);
        let out = merged.into_iter().map(|r| (r.key, r.value)).collect();
        Ok((out, io_ops))
    }

    /// Force a memtable flush (no-op when empty).
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.write();
        self.flush_locked(&mut inner)
    }

    fn flush_locked(&self, inner: &mut Inner) -> Result<()> {
        if inner.memtable.is_empty() {
            return Ok(());
        }
        let flush_timer = abase_obs::Timer::start();
        let id = inner.version.allocate_file_id();
        let path = sst_path(&self.dir, id);
        let mut writer = SstWriter::create(
            &path,
            inner.memtable.len(),
            self.config.bloom_bits_per_key,
            self.config.block_bytes,
        )?;
        for record in inner.memtable.iter_records() {
            writer.add(&record)?;
        }
        let info = writer.finish()?;
        self.stats
            .sst_bytes_written
            .fetch_add(info.file_size, Ordering::Relaxed);
        crate::metrics::FLUSH_BYTES.add(info.file_size);
        inner.version.add_file(SstMeta {
            id,
            level: 0,
            min_key: info.min_key,
            max_key: info.max_key,
            file_size: info.file_size,
            record_count: info.record_count,
        });
        inner.readers.insert(id, Arc::new(SstReader::open(&path)?));
        // Rotate the WAL: new log first, then persist the version (raising
        // the floor past every flushed segment), then garbage-collect rotated
        // segments beyond the retention backlog.
        let wal_id = inner.version.allocate_file_id();
        let new_wal_path = wal_path(&self.dir, wal_id);
        inner.wal = Wal::create(&new_wal_path, self.config.sync_wal)?;
        inner.wal_id = wal_id;
        inner.wal_path = new_wal_path;
        inner.version.wal_floor = wal_id;
        inner.version.save(&self.dir)?;
        inner.memtable.clear();
        let rotated: Vec<u64> = Wal::list_segments(&self.dir)?
            .into_iter()
            .filter(|&id| id < wal_id)
            .collect();
        let excess = rotated
            .len()
            .saturating_sub(self.config.wal_retention_segments);
        for id in &rotated[..excess] {
            std::fs::remove_file(wal_path(&self.dir, *id)).ok();
        }
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        crate::metrics::FLUSHES.inc();
        flush_timer.observe(&crate::metrics::FLUSH_MICROS);
        Ok(())
    }

    /// Run at most one compaction round. Returns true if one executed.
    /// Expired records are dropped using virtual time `now`.
    pub fn compact_once(&self, now: SimTime) -> Result<bool> {
        let mut inner = self.inner.write();
        let Some(task) = pick_compaction(&inner.version, &self.config.compaction) else {
            return Ok(false);
        };
        // Collect input streams. Input ids arrive with the from-level files
        // first (newest sources first for L0), which matches the merge
        // iterator's tie-breaking contract.
        let mut sources = Vec::with_capacity(task.input_ids.len());
        for id in &task.input_ids {
            let reader = inner
                .readers
                .get(id)
                .ok_or_else(|| Error::InvalidState(format!("missing reader for sst {id}")))?;
            sources.push(reader.scan_all()?);
        }
        let merged = MergeIterator::new(sources).dedup_newest(now, task.is_bottom_level);
        // Write merged output, splitting at the target file size.
        let mut new_metas = Vec::new();
        let mut writer: Option<(u64, SstWriter, u64)> = None; // (id, writer, bytes)
        for record in &merged {
            if writer.is_none() {
                let id = inner.version.allocate_file_id();
                let w = SstWriter::create(
                    &sst_path(&self.dir, id),
                    merged.len(),
                    self.config.bloom_bits_per_key,
                    self.config.block_bytes,
                )?;
                writer = Some((id, w, 0));
            }
            let (_, w, bytes) = writer.as_mut().expect("writer just ensured");
            w.add(record)?;
            *bytes += record.approximate_size() as u64;
            if *bytes >= self.config.target_sst_bytes {
                let (id, w, _) = writer.take().expect("writer present");
                let info = w.finish()?;
                self.stats
                    .sst_bytes_written
                    .fetch_add(info.file_size, Ordering::Relaxed);
                new_metas.push(SstMeta {
                    id,
                    level: task.output_level as u32,
                    min_key: info.min_key,
                    max_key: info.max_key,
                    file_size: info.file_size,
                    record_count: info.record_count,
                });
            }
        }
        if let Some((id, w, _)) = writer.take() {
            let info = w.finish()?;
            self.stats
                .sst_bytes_written
                .fetch_add(info.file_size, Ordering::Relaxed);
            new_metas.push(SstMeta {
                id,
                level: task.output_level as u32,
                min_key: info.min_key,
                max_key: info.max_key,
                file_size: info.file_size,
                record_count: info.record_count,
            });
        }
        // Install the new version: remove inputs, add outputs, persist.
        for id in &task.input_ids {
            inner.version.remove_file(*id);
        }
        for meta in &new_metas {
            inner.readers.insert(
                meta.id,
                Arc::new(SstReader::open(&sst_path(&self.dir, meta.id))?),
            );
            inner.version.add_file(meta.clone());
        }
        inner.version.save(&self.dir)?;
        for id in &task.input_ids {
            inner.readers.remove(id);
            std::fs::remove_file(sst_path(&self.dir, *id)).ok();
        }
        self.stats.compactions.fetch_add(1, Ordering::Relaxed);
        crate::metrics::COMPACTIONS.inc();
        crate::metrics::COMPACTION_BYTES.add(new_metas.iter().map(|m| m.file_size).sum());
        Ok(true)
    }

    /// Run compactions until the tree is shaped (bounded rounds).
    pub fn compact_to_quiescence(&self, now: SimTime) -> Result<u32> {
        let mut rounds = 0;
        while rounds < 64 && self.compact_once(now)? {
            rounds += 1;
        }
        Ok(rounds)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DbStats {
        DbStats {
            gets: self.stats.gets.load(Ordering::Relaxed),
            puts: self.stats.puts.load(Ordering::Relaxed),
            deletes: self.stats.deletes.load(Ordering::Relaxed),
            block_reads: self.stats.block_reads.load(Ordering::Relaxed),
            memtable_hits: self.stats.memtable_hits.load(Ordering::Relaxed),
            flushes: self.stats.flushes.load(Ordering::Relaxed),
            compactions: self.stats.compactions.load(Ordering::Relaxed),
            sst_bytes_written: self.stats.sst_bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Total live SST bytes (storage utilization for the rescheduler).
    pub fn total_sst_bytes(&self) -> u64 {
        self.inner.read().version.total_bytes()
    }

    /// Live files per level, for diagnostics.
    pub fn level_file_counts(&self) -> Vec<usize> {
        self.inner
            .read()
            .version
            .levels
            .iter()
            .map(Vec::len)
            .collect()
    }
}

/// Smallest byte string strictly greater than every key with `prefix`
/// (used to bound overlap checks). Falls back to 0xFF-padding when the prefix
/// is all 0xFF.
fn upper_bound_for_prefix(prefix: &[u8]) -> Bytes {
    let mut upper = prefix.to_vec();
    while let Some(last) = upper.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Bytes::from(upper);
        }
        upper.pop();
    }
    // All-0xFF prefix: unbounded above; use a long max sentinel.
    Bytes::from(vec![0xFFu8; prefix.len() + 8])
}

#[cfg(test)]
mod tests {
    use super::*;
    use abase_util::TestDir;

    #[test]
    fn put_get_roundtrip() {
        let dir = TestDir::new("putget");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        db.put(b"k1", b"v1", None, 0).unwrap();
        let r = db.get(b"k1", 0).unwrap();
        assert_eq!(r.value.as_deref(), Some(&b"v1"[..]));
        assert!(r.from_memtable);
        assert!(db.get(b"missing", 0).unwrap().value.is_none());
    }

    #[test]
    fn overwrite_returns_latest() {
        let dir = TestDir::new("overwrite");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        db.put(b"k", b"v1", None, 0).unwrap();
        db.put(b"k", b"v2", None, 0).unwrap();
        assert_eq!(db.get(b"k", 0).unwrap().value.as_deref(), Some(&b"v2"[..]));
    }

    #[test]
    fn delete_hides_key_across_flush() {
        let dir = TestDir::new("delete");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        db.put(b"k", b"v", None, 0).unwrap();
        db.flush().unwrap();
        db.delete(b"k", 0).unwrap();
        assert!(db.get(b"k", 0).unwrap().value.is_none());
        db.flush().unwrap();
        assert!(db.get(b"k", 0).unwrap().value.is_none());
    }

    #[test]
    fn reads_span_memtable_and_multiple_ssts() {
        let dir = TestDir::new("layers");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        db.put(b"in-sst-1", b"a", None, 0).unwrap();
        db.flush().unwrap();
        db.put(b"in-sst-2", b"b", None, 0).unwrap();
        db.flush().unwrap();
        db.put(b"in-mem", b"c", None, 0).unwrap();
        assert_eq!(
            db.get(b"in-sst-1", 0).unwrap().value.as_deref(),
            Some(&b"a"[..])
        );
        assert_eq!(
            db.get(b"in-sst-2", 0).unwrap().value.as_deref(),
            Some(&b"b"[..])
        );
        let r = db.get(b"in-mem", 0).unwrap();
        assert!(r.from_memtable);
        // An SST read costs at least one block I/O.
        let r = db.get(b"in-sst-1", 0).unwrap();
        assert!(r.io_ops >= 1);
    }

    #[test]
    fn ttl_expires_reads() {
        let dir = TestDir::new("ttl");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        db.put(b"k", b"v", Some(1000), 0).unwrap();
        assert!(db.get(b"k", 999).unwrap().value.is_some());
        assert!(db.get(b"k", 1000).unwrap().value.is_none());
        // Also across a flush.
        db.flush().unwrap();
        assert!(db.get(b"k", 1000).unwrap().value.is_none());
        assert!(db.get(b"k", 999).unwrap().value.is_some());
    }

    #[test]
    fn automatic_flush_on_memtable_pressure() {
        let dir = TestDir::new("autoflush");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        for i in 0..200 {
            let key = format!("key-{i:04}");
            db.put(key.as_bytes(), &[0u8; 100], None, 0).unwrap();
        }
        assert!(db.stats().flushes >= 1, "no flush under pressure");
        // All keys remain readable.
        for i in 0..200 {
            let key = format!("key-{i:04}");
            assert!(
                db.get(key.as_bytes(), 0).unwrap().value.is_some(),
                "{key} lost"
            );
        }
    }

    #[test]
    fn compaction_preserves_data_and_reduces_l0() {
        let dir = TestDir::new("compact");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        for round in 0..5 {
            for i in 0..50 {
                let key = format!("key-{i:04}");
                let value = format!("v{round}-{i}");
                db.put(key.as_bytes(), value.as_bytes(), None, 0).unwrap();
            }
            db.flush().unwrap();
        }
        let l0_before = db.level_file_counts()[0];
        assert!(l0_before >= 3);
        let rounds = db.compact_to_quiescence(0).unwrap();
        assert!(rounds >= 1);
        assert!(db.level_file_counts()[0] < l0_before);
        // Latest values win after compaction.
        for i in 0..50 {
            let key = format!("key-{i:04}");
            let expect = format!("v4-{i}");
            assert_eq!(
                db.get(key.as_bytes(), 0).unwrap().value.as_deref(),
                Some(expect.as_bytes()),
                "{key}"
            );
        }
    }

    #[test]
    fn recovery_from_wal_after_drop() {
        let dir = TestDir::new("recover");
        {
            let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
            db.put(b"durable", b"yes", None, 0).unwrap();
            // No flush: data only in WAL + memtable.
        }
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        assert_eq!(
            db.get(b"durable", 0).unwrap().value.as_deref(),
            Some(&b"yes"[..])
        );
    }

    #[test]
    fn recovery_after_flush_and_more_writes() {
        let dir = TestDir::new("recover2");
        {
            let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
            db.put(b"a", b"1", None, 0).unwrap();
            db.flush().unwrap();
            db.put(b"b", b"2", None, 0).unwrap();
        }
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        assert_eq!(db.get(b"a", 0).unwrap().value.as_deref(), Some(&b"1"[..]));
        assert_eq!(db.get(b"b", 0).unwrap().value.as_deref(), Some(&b"2"[..]));
        // Sequence numbers continue: an overwrite after recovery wins.
        db.put(b"a", b"3", None, 0).unwrap();
        assert_eq!(db.get(b"a", 0).unwrap().value.as_deref(), Some(&b"3"[..]));
    }

    #[test]
    fn scan_prefix_merges_all_layers() {
        let dir = TestDir::new("scan");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        db.put(b"h:1", b"a", None, 0).unwrap();
        db.flush().unwrap();
        db.put(b"h:2", b"b", None, 0).unwrap();
        db.put(b"other", b"x", None, 0).unwrap();
        db.put(b"h:1", b"a2", None, 0).unwrap(); // overwrite in memtable
        let (pairs, _) = db.scan_prefix(b"h:", 0).unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], (Bytes::from("h:1"), Bytes::from("a2")));
        assert_eq!(pairs[1], (Bytes::from("h:2"), Bytes::from("b")));
    }

    #[test]
    fn scan_prefix_hides_tombstones_and_expired() {
        let dir = TestDir::new("scan2");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        db.put(b"p:live", b"1", None, 0).unwrap();
        db.put(b"p:dead", b"2", None, 0).unwrap();
        db.put(b"p:ttl", b"3", Some(500), 0).unwrap();
        db.delete(b"p:dead", 0).unwrap();
        let (pairs, _) = db.scan_prefix(b"p:", 1000).unwrap();
        let keys: Vec<_> = pairs.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![Bytes::from("p:live")]);
    }

    #[test]
    fn bottom_compaction_drops_tombstones_and_expired() {
        let dir = TestDir::new("gc");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        // Three flushes reach the L0 compaction trigger.
        for round in 0..3 {
            for i in 0..30 {
                db.put(format!("k{i:02}-{round}").as_bytes(), b"v", Some(100), 0)
                    .unwrap();
            }
            db.delete(format!("k00-{round}").as_bytes(), 0).unwrap();
            db.flush().unwrap();
        }
        let before = db.total_sst_bytes();
        // Compact well past expiry: everything is GC-able.
        db.compact_to_quiescence(1_000_000).unwrap();
        let after = db.total_sst_bytes();
        assert!(
            after < before,
            "GC did not shrink storage ({before} -> {after})"
        );
    }

    #[test]
    fn stats_move() {
        let dir = TestDir::new("stats");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        db.put(b"k", b"v", None, 0).unwrap();
        db.get(b"k", 0).unwrap();
        db.delete(b"k", 0).unwrap();
        let s = db.stats();
        assert_eq!(s.puts, 1);
        assert_eq!(s.gets, 1);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.memtable_hits, 1);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let dir = TestDir::new("concurrent");
        let db = Arc::new(Db::open(dir.path(), DbConfig::small_for_tests()).unwrap());
        for i in 0..100 {
            db.put(format!("k{i:03}").as_bytes(), b"v", None, 0)
                .unwrap();
        }
        db.flush().unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let key = format!("k{:03}", (i * 7 + t) % 100);
                    assert!(db.get(key.as_bytes(), 0).unwrap().value.is_some());
                }
            }));
        }
        for i in 100..150 {
            db.put(format!("k{i:03}").as_bytes(), b"v", None, 0)
                .unwrap();
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn apply_replicated_preserves_seq_and_dedups() {
        let dir = TestDir::new("apply-repl");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        let r1 = crate::record::Record::put("k", "v1", 1, None);
        let r2 = crate::record::Record::put("k", "v2", 2, None);
        assert!(db.apply_replicated(&r1).unwrap());
        assert!(db.apply_replicated(&r2).unwrap());
        // Re-shipping an old record is a no-op, not a regression.
        assert!(!db.apply_replicated(&r1).unwrap());
        assert_eq!(db.get(b"k", 0).unwrap().value.as_deref(), Some(&b"v2"[..]));
        assert_eq!(db.last_seq(), 2);
        // A gap (seq 9 when 3 is expected) is rejected loudly.
        let gap = crate::record::Record::put("x", "y", 9, None);
        assert!(db.apply_replicated(&gap).is_err());
        // Local writes continue the same sequence domain.
        db.put(b"k2", b"v", None, 0).unwrap();
        assert_eq!(db.last_seq(), 3);
    }

    #[test]
    fn checkpoint_clones_database_state() {
        let src_dir = TestDir::new("ckpt-src");
        let dst_dir = TestDir::new("ckpt-dst");
        let db = Db::open(src_dir.path(), DbConfig::small_for_tests()).unwrap();
        for i in 0..120 {
            db.put(format!("key-{i:04}").as_bytes(), &[7u8; 64], None, 0)
                .unwrap();
        }
        db.flush().unwrap();
        for i in 120..140 {
            db.put(format!("key-{i:04}").as_bytes(), &[7u8; 64], None, 0)
                .unwrap();
        }
        let mut chunks = 0usize;
        let info = db
            .checkpoint_with(dst_dir.path(), &mut |n| chunks += n)
            .unwrap();
        assert_eq!(info.last_seq, db.last_seq());
        assert_eq!(info.bytes_copied, chunks as u64);
        assert!(info.bytes_copied > 0);
        let clone = Db::open(dst_dir.path(), DbConfig::small_for_tests()).unwrap();
        assert_eq!(clone.last_seq(), db.last_seq());
        for i in 0..140 {
            let key = format!("key-{i:04}");
            assert!(
                clone.get(key.as_bytes(), 0).unwrap().value.is_some(),
                "{key} missing"
            );
        }
    }

    #[test]
    fn upper_bound_helper() {
        assert_eq!(upper_bound_for_prefix(b"abc"), Bytes::from("abd"));
        assert_eq!(
            upper_bound_for_prefix(&[0x01, 0xFF]),
            Bytes::from(vec![0x02])
        );
        let ub = upper_bound_for_prefix(&[0xFF, 0xFF]);
        assert!(ub.as_ref() > &[0xFFu8, 0xFF][..]);
    }
}
