//! The engine facade: a crash-safe, TTL-aware LSM key-value store, striped
//! across independent shards for multi-core write throughput.
//!
//! Writes go WAL → memtable; a full memtable flushes to an L0 SST; leveled
//! compaction keeps read amplification bounded and garbage-collects tombstones
//! and expired records. Reads report their block-I/O count so the ABase data
//! node can price them into the I/O-WFQ.
//!
//! # Striping
//!
//! Keys hash across `n_stripes` stripes, each with its own memtable, L0, and
//! deeper levels under its own `RwLock` — so concurrent writers to different
//! stripes never contend, and a stripe's memtable flush (the expensive SST
//! write) blocks only that stripe. One shared group-commit [`Wal`] fronts all
//! stripes and is the engine's **single LSN allocator**: frames enter the log
//! in sequence order regardless of which stripe they land in, so replication
//! tailing, `apply_replicated`'s gap/dedup logic, torn-tail recovery, and
//! checkpoint cursors all observe one monotone LSN stream, exactly as in the
//! single-lock engine.
//!
//! Because stripes flush independently, a rotated WAL segment may still hold
//! the only durable copy of another stripe's recent records. Each rotated
//! segment therefore remembers the last sequence number it contains, and the
//! manifest's `wal_floor` only advances past a segment once **every** stripe
//! has flushed its records at or below that point (see
//! [`Db::advance_floor_locked`]).

use crate::block_cache::BlockCache;
use crate::compaction::{pick_compaction, CompactionConfig};
use crate::error::{Error, Result};
use crate::iter::MergeIterator;
use crate::memtable::MemTable;
use crate::record::{Record, RecordKind, NO_EXPIRY};
use crate::sstable::{BlockIo, SstReader, SstWriter};
use crate::version::{SstMeta, Version};
use crate::wal::{Wal, WalOptions};
use abase_util::clock::SimTime;
use abase_util::lockrank::{rank, RankedMutex, RankedRwLock};
use bytes::Bytes;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct DbConfig {
    /// Memtable flush threshold in bytes, across all stripes (each stripe
    /// flushes at `memtable_bytes / n_stripes`).
    pub memtable_bytes: usize,
    /// Target uncompressed data-block size.
    pub block_bytes: usize,
    /// Target size for SST files written by flush/compaction.
    pub target_sst_bytes: u64,
    /// Bloom filter density.
    pub bloom_bits_per_key: usize,
    /// fsync the WAL on every append (durability vs. throughput). With
    /// concurrent writers, one group-commit fsync covers the whole batch.
    pub sync_wal: bool,
    /// Rotated WAL segments to retain as a replication backlog. Segments
    /// below the manifest's `wal_floor` are fully flushed into SSTs and never
    /// replayed; keeping a few lets binlog tail readers (followers) finish
    /// reading a closed segment instead of forcing a full resync.
    pub wal_retention_segments: usize,
    /// Compaction policy knobs.
    pub compaction: CompactionConfig,
    /// Number of independent engine stripes (fixed at database creation; a
    /// reopen uses the manifest's value).
    pub n_stripes: u32,
    /// Buffered WAL bytes that trigger a flush to the OS on a non-durable
    /// commit (group-commit byte threshold).
    pub group_commit_bytes: usize,
    /// Time since the last WAL flush that triggers one on a non-durable
    /// commit (group-commit interval trigger).
    pub group_commit_interval_ms: u64,
    /// Byte budget for the shared data-block cache (one cache across **all**
    /// stripes; `0` disables caching entirely). SST files are immutable, so
    /// the cache needs no invalidation — only eviction.
    pub block_cache_bytes: usize,
}

impl Default for DbConfig {
    fn default() -> Self {
        Self {
            memtable_bytes: 4 << 20,
            block_bytes: 4 << 10,
            target_sst_bytes: 8 << 20,
            bloom_bits_per_key: 10,
            sync_wal: false,
            wal_retention_segments: 2,
            compaction: CompactionConfig::default(),
            n_stripes: 8,
            group_commit_bytes: 64 << 10,
            group_commit_interval_ms: 5,
            block_cache_bytes: 64 << 20,
        }
    }
}

impl DbConfig {
    /// Tiny limits that force flush/compaction activity in unit tests.
    pub fn small_for_tests() -> Self {
        Self {
            memtable_bytes: 4 << 10,
            block_bytes: 512,
            target_sst_bytes: 8 << 10,
            bloom_bits_per_key: 10,
            sync_wal: false,
            wal_retention_segments: 2,
            compaction: CompactionConfig {
                l0_trigger: 3,
                level_base_bytes: 16 << 10,
                level_growth: 4,
                n_levels: 4,
            },
            n_stripes: 4,
            group_commit_bytes: 16 << 10,
            group_commit_interval_ms: 5,
            // Small enough that tests exercise eviction, on by default so the
            // whole suite runs through the cached read path.
            block_cache_bytes: 64 << 10,
        }
    }

    fn wal_options(&self) -> WalOptions {
        WalOptions {
            sync_on_append: self.sync_wal,
            group_commit_bytes: self.group_commit_bytes,
            group_commit_interval: Duration::from_millis(self.group_commit_interval_ms),
        }
    }
}

/// Outcome of a point read.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadResult {
    /// The live value, if the key exists and has not expired.
    pub value: Option<Bytes>,
    /// Data-block accesses performed (0 when served by memtable/bloom).
    /// Cache hits count: Rule 1 prices logical block I/O, and a request's
    /// cost must not depend on cache luck. `io_ops - cache_hits` of these
    /// actually reached the disk.
    pub io_ops: u32,
    /// Of `io_ops`, the accesses served by the block cache without disk I/O.
    pub cache_hits: u32,
    /// True when the memtable answered.
    pub from_memtable: bool,
}

/// Monotonic counters exposed by the engine.
#[derive(Debug, Default)]
struct StatsInner {
    gets: AtomicU64,
    puts: AtomicU64,
    deletes: AtomicU64,
    block_reads: AtomicU64,
    memtable_hits: AtomicU64,
    flushes: AtomicU64,
    compactions: AtomicU64,
    sst_bytes_written: AtomicU64,
}

/// Snapshot of the engine counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbStats {
    /// Point reads served.
    pub gets: u64,
    /// Put operations applied.
    pub puts: u64,
    /// Delete operations applied.
    pub deletes: u64,
    /// Data-block reads across all SSTs.
    pub block_reads: u64,
    /// Reads answered from the memtable.
    pub memtable_hits: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions executed.
    pub compactions: u64,
    /// Bytes written into SST files (flush + compaction).
    pub sst_bytes_written: u64,
}

/// One engine stripe: a memtable plus this stripe's slice of the LSM tree.
struct Stripe {
    memtable: MemTable,
    /// This stripe's files per level (same ordering rules as
    /// [`Version::add_file`]); the union across stripes equals the manifest.
    levels: Vec<Vec<SstMeta>>,
    readers: HashMap<u64, Arc<SstReader>>,
}

impl Stripe {
    fn new(n_levels: usize) -> Self {
        Self {
            memtable: MemTable::new(),
            levels: vec![Vec::new(); n_levels],
            readers: HashMap::new(),
        }
    }

    fn add_file(&mut self, meta: SstMeta, reader: Arc<SstReader>) {
        self.readers.insert(meta.id, reader);
        let level = meta.level as usize;
        let files = &mut self.levels[level];
        files.push(meta);
        if level == 0 {
            // L0: newest (largest id) first — read path checks newest first.
            files.sort_by_key(|m| Reverse(m.id));
        } else {
            files.sort_by(|a, b| a.min_key.cmp(&b.min_key));
        }
    }

    fn remove_file(&mut self, id: u64) {
        for files in &mut self.levels {
            if let Some(pos) = files.iter().position(|m| m.id == id) {
                files.remove(pos);
            }
        }
        self.readers.remove(&id);
    }
}

/// Per-stripe durability watermarks, read lock-free during floor advancement.
struct StripeMarks {
    /// Every record of this stripe with seq ≤ this is in an SST.
    flushed_through: AtomicU64,
    /// Highest seq applied to this stripe's memtable.
    highest_applied: AtomicU64,
}

/// Tracks the highest *contiguous* applied sequence number across stripes.
///
/// Appends allocate seqs under the WAL lock but apply to their stripes
/// concurrently, so seq N+1 can finish applying before seq N. `last_seq()`
/// (the replication high-water mark) must never report a seq whose
/// predecessors are still in flight — a follower acking N promises it has
/// everything ≤ N. Completed seqs that arrive out of order park in a heap
/// until the gap below them closes.
struct ApplyTracker {
    visible: AtomicU64,
    /// Number of seqs parked out of order. The common case (in-order
    /// completion) advances `visible` by CAS and reads this as zero — no
    /// lock on the write path. SeqCst throughout: the fast path's
    /// CAS-then-load-parked and the park path's store-parked-then-load-
    /// visible form a Dekker pair, and one side missing the other's store
    /// would strand a parked seq below an advanced watermark forever.
    parked: AtomicU64,
    pending: RankedMutex<BinaryHeap<Reverse<u64>>>,
}

impl ApplyTracker {
    fn new(visible: u64) -> Self {
        Self {
            visible: AtomicU64::new(visible),
            parked: AtomicU64::new(0),
            pending: RankedMutex::new(rank::APPLY_PENDING, BinaryHeap::new()),
        }
    }

    fn visible(&self) -> u64 {
        // ORDER: Acquire pairs with the SeqCst publishes of `visible` in
        // `complete`/`drain_locked`; a reader that observes seq N also
        // observes every memtable apply that preceded N's completion.
        self.visible.load(Ordering::Acquire)
    }

    fn complete(&self, seq: u64) {
        loop {
            // ORDER: SeqCst; all `visible`/`parked` accesses in this tracker
            // share one total order (the Dekker pairing described above).
            let v = self.visible.load(Ordering::SeqCst);
            if seq <= v {
                return;
            }
            if seq == v + 1 {
                if self
                    .visible
                    // ORDER: SeqCst CAS pairs with the park path's
                    // store-parked-then-load-visible below: whoever is
                    // ordered second in the single total order sees the
                    // other's write, so no parked seq is stranded.
                    .compare_exchange(v, seq, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    // Our advance may have unblocked parked successors.
                    // ORDER: SeqCst load, the second half of the fast path's
                    // CAS-then-load-parked Dekker arm.
                    if self.parked.load(Ordering::SeqCst) > 0 {
                        let mut pending = self.pending.lock();
                        self.drain_locked(&mut pending);
                    }
                    return;
                }
                // Lost the race; visible only grows, so re-read and retry.
            } else {
                let mut pending = self.pending.lock();
                pending.push(Reverse(seq));
                // ORDER: SeqCst store-parked precedes the load-visible in
                // `drain_locked` — the park path's Dekker arm against the
                // fast path's CAS-then-load-parked above.
                self.parked.store(pending.len() as u64, Ordering::SeqCst);
                // Re-check under the lock: `visible` may have reached
                // `seq - 1` while we were parking, and that completer may
                // have read `parked` before our store.
                self.drain_locked(&mut pending);
                return;
            }
        }
    }

    /// Pop every contiguous successor of `visible` off the heap and publish.
    /// Plain stores are safe here: the only thread that could CAS `visible`
    /// to `v + 1` is the completer of `v + 1`, and while `v + 1` sits in the
    /// heap that completer has already been and gone (each seq completes
    /// exactly once) — no concurrent advance can interleave.
    fn drain_locked(&self, pending: &mut BinaryHeap<Reverse<u64>>) {
        loop {
            // ORDER: SeqCst load-visible after the caller's store-parked —
            // the second half of the park path's Dekker arm.
            let v = self.visible.load(Ordering::SeqCst);
            if pending.peek() == Some(&Reverse(v + 1)) {
                pending.pop();
                // ORDER: SeqCst publish; pairs with the Acquire in
                // `visible()` and the SeqCst loads in `complete`.
                self.visible.store(v + 1, Ordering::SeqCst);
            } else {
                break;
            }
        }
        // ORDER: SeqCst; keeps `parked` in the tracker's single total order
        // so a racing completer cannot miss a still-parked seq.
        self.parked.store(pending.len() as u64, Ordering::SeqCst);
    }
}

/// Cross-stripe state: the manifest and the WAL segment bookkeeping.
struct Shared {
    version: Version,
    /// Segment currently receiving appends.
    live_segment: u64,
    /// Rotated-but-not-yet-covered segments as `(segment, last seq held)`,
    /// oldest first. The floor may pass a segment only once every stripe has
    /// flushed through its `last seq held`.
    rotated: Vec<(u64, u64)>,
}

/// Where a [`Db::checkpoint`] snapshot ends in the source's log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// Highest sequence number contained in the snapshot.
    pub last_seq: u64,
    /// WAL segment that was current when the snapshot was taken.
    pub wal_segment: u64,
    /// Byte offset within that segment covered by the snapshot.
    pub wal_offset: u64,
    /// Total bytes copied (SSTs + WALs).
    pub bytes_copied: u64,
}

/// A LavaStore database instance rooted at a directory.
pub struct Db {
    dir: PathBuf,
    config: DbConfig,
    n_stripes: usize,
    /// The shared group-commit WAL — also the engine's one LSN allocator.
    log: Wal,
    stripes: Vec<RankedRwLock<Stripe>>,
    marks: Vec<StripeMarks>,
    tracker: ApplyTracker,
    shared: RankedMutex<Shared>,
    stats: StatsInner,
    /// One data-block cache shared by every stripe's readers (None = off).
    block_cache: Option<Arc<BlockCache>>,
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db").field("dir", &self.dir).finish()
    }
}

fn sst_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("{id:010}.sst"))
}

fn wal_path(dir: &Path, id: u64) -> PathBuf {
    Wal::segment_path(dir, id)
}

/// FNV-1a over the key; stable across restarts (stripe assignment must be).
fn stripe_of_key(key: &[u8], n_stripes: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % n_stripes as u64) as usize
}

impl Db {
    /// Open (or create) a database at `dir`, recovering from the manifest and
    /// any write-ahead logs present.
    pub fn open(dir: impl AsRef<Path>, config: DbConfig) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // Sweep checkpoint pin directories a crashed process left behind:
        // their hard links would otherwise keep deleted SSTs' disk space
        // pinned forever.
        for entry in std::fs::read_dir(&dir)?.filter_map(|e| e.ok()) {
            if entry
                .file_name()
                .to_string_lossy()
                .starts_with(".ckpt-pin-")
            {
                std::fs::remove_dir_all(entry.path()).ok();
            }
        }
        let mut version = match Version::load(&dir)? {
            Some(v) => v,
            None => {
                let mut v = Version::new(config.compaction.n_levels);
                v.n_stripes = config.n_stripes.max(1);
                v
            }
        };
        if version.levels.len() != config.compaction.n_levels {
            return Err(Error::InvalidState(format!(
                "manifest has {} levels, config expects {}",
                version.levels.len(),
                config.compaction.n_levels
            )));
        }
        // The stripe count is a property of the data (keys were hashed with
        // it), so the manifest always wins over the caller's config.
        let n_stripes = version.n_stripes.max(1) as usize;
        let block_cache = if config.block_cache_bytes > 0 {
            Some(Arc::new(BlockCache::new(config.block_cache_bytes)))
        } else {
            None
        };
        let mut stripes: Vec<Stripe> = (0..n_stripes)
            .map(|_| Stripe::new(version.levels.len()))
            .collect();
        for files in &version.levels {
            for meta in files {
                let reader = Arc::new(SstReader::open_cached(
                    &sst_path(&dir, meta.id),
                    block_cache.clone(),
                )?);
                let s = (meta.stripe as usize).min(n_stripes - 1);
                stripes[s].add_file(meta.clone(), reader);
            }
        }
        // Replay surviving WALs (ascending id = chronological), routing each
        // record to its stripe. Segments below the floor are retained
        // replication backlog: every stripe's records there already live in
        // SSTs, so they are skipped. Each replayed segment re-enters the
        // rotated list with the last seq it holds, so the floor logic resumes
        // exactly where the previous process left off.
        let mut next_seq = version.next_seq;
        let mut rotated: Vec<(u64, u64)> = Vec::new();
        let mut stripe_min: Vec<Option<u64>> = vec![None; n_stripes];
        let mut stripe_max: Vec<u64> = vec![0; n_stripes];
        let mut last_end = version.next_seq.saturating_sub(1);
        for id in Wal::list_segments(&dir)? {
            if id < version.wal_floor {
                continue;
            }
            let mut seg_end = last_end;
            for record in Wal::replay(&wal_path(&dir, id))? {
                next_seq = next_seq.max(record.seq + 1);
                seg_end = seg_end.max(record.seq);
                let s = stripe_of_key(&record.key, n_stripes);
                stripe_min[s] = Some(stripe_min[s].unwrap_or(record.seq).min(record.seq));
                stripe_max[s] = stripe_max[s].max(record.seq);
                stripes[s].memtable.apply(&record);
            }
            rotated.push((id, seg_end));
            last_end = seg_end;
        }
        let marks: Vec<StripeMarks> = (0..n_stripes)
            .map(|s| StripeMarks {
                // A stripe with replayed records is flushed only up to just
                // before its oldest replayed seq; an idle stripe constrains
                // nothing below the recovered high-water mark.
                flushed_through: AtomicU64::new(match stripe_min[s] {
                    Some(min) => min - 1,
                    None => next_seq - 1,
                }),
                highest_applied: AtomicU64::new(stripe_max[s]),
            })
            .collect();
        // New writes land in a fresh WAL segment.
        let live_segment = version.allocate_file_id();
        let log = Wal::create(
            &wal_path(&dir, live_segment),
            live_segment,
            next_seq,
            config.wal_options(),
        )?;
        version.next_seq = next_seq;
        version.save(&dir)?;
        Ok(Self {
            dir,
            config,
            n_stripes,
            log,
            stripes: stripes
                .into_iter()
                .map(|s| RankedRwLock::new(rank::LAVASTORE_STRIPE, s))
                .collect(),
            marks,
            tracker: ApplyTracker::new(next_seq - 1),
            shared: RankedMutex::new(
                rank::LAVASTORE_SHARED,
                Shared {
                    version,
                    live_segment,
                    rotated,
                },
            ),
            stats: StatsInner::default(),
            block_cache,
        })
    }

    /// The shared block cache, when one is configured.
    pub fn block_cache(&self) -> Option<&Arc<BlockCache>> {
        self.block_cache.as_ref()
    }

    /// The engine configuration.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// Number of stripes this database was created with.
    pub fn n_stripes(&self) -> usize {
        self.n_stripes
    }

    fn stripe_of(&self, key: &[u8]) -> usize {
        stripe_of_key(key, self.n_stripes)
    }

    fn per_stripe_memtable_bytes(&self) -> usize {
        (self.config.memtable_bytes / self.n_stripes).max(1)
    }

    /// The shared WAL-then-memtable write path for local puts and deletes.
    /// Returns the record's sequence number (its replication LSN).
    fn write_record(&self, mut record: Record) -> Result<u64> {
        let seq = self.log.append_next(&mut record)?;
        if self.config.sync_wal {
            // Durability before visibility: a failed group commit poisons
            // the log and this record never reaches a memtable, so no
            // reader (or replica counting it toward quorum) can observe a
            // write that was never made durable.
            self.log.commit(seq)?;
        }
        let s = self.stripe_of(&record.key);
        let over_threshold = {
            let mut stripe = self.stripes[s].write();
            stripe.memtable.apply(&record);
            stripe.memtable.approximate_bytes() >= self.per_stripe_memtable_bytes()
        };
        self.marks[s]
            .highest_applied
            // ORDER: AcqRel; the Release half publishes the memtable apply
            // above to `advance_floor_locked`'s Acquire load, so a floor
            // computed from this mark never outruns the stripe's contents.
            .fetch_max(seq, Ordering::AcqRel);
        self.tracker.complete(seq);
        if over_threshold {
            self.flush_stripe(s)?;
        }
        Ok(seq)
    }

    /// Insert or overwrite `key` with `value`, optionally expiring at the
    /// absolute virtual time `expires_at`. Returns the write's sequence
    /// number — with concurrent writers this is the only fence-free way to
    /// learn one's own LSN (`last_seq()` may lag behind it while an earlier
    /// seq is still applying).
    pub fn put(
        &self,
        key: &[u8],
        value: &[u8],
        expires_at: Option<SimTime>,
        _now: SimTime,
    ) -> Result<u64> {
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.write_record(Record::put(
            Bytes::copy_from_slice(key),
            Bytes::copy_from_slice(value),
            0,
            expires_at,
        ))
    }

    /// Delete `key` (writes a tombstone). Returns the tombstone's sequence
    /// number.
    pub fn delete(&self, key: &[u8], _now: SimTime) -> Result<u64> {
        self.stats.deletes.fetch_add(1, Ordering::Relaxed);
        self.write_record(Record::delete(Bytes::copy_from_slice(key), 0))
    }

    /// Apply a record shipped from a replication leader, preserving its
    /// sequence number (the replication LSN).
    ///
    /// This is the follower half of WAL shipping: the record goes through the
    /// exact same WAL-then-memtable path as a local write, so follower
    /// durability and crash recovery are identical to the leader's. Returns
    /// `Ok(false)` when the record was already applied (`seq` at or below the
    /// follower's high-water mark) — shipping is therefore idempotent and
    /// at-least-once delivery is safe. Callers detect *gaps* (a record
    /// arriving with `seq` beyond `last_seq() + 1`) before applying; this
    /// method rejects them to keep the follower a strict prefix of the leader.
    pub fn apply_replicated(&self, record: &Record) -> Result<bool> {
        // Durability before visibility: only a record that reached the WAL
        // may advance the high-water mark. Applying first would make a failed
        // append look applied — a re-ship would dedup and the follower would
        // silently diverge while still counting toward quorum.
        if !self.log.append_at(record)? {
            return Ok(false);
        }
        if self.config.sync_wal {
            self.log.commit(record.seq)?;
        }
        let s = self.stripe_of(&record.key);
        let over_threshold = {
            let mut stripe = self.stripes[s].write();
            stripe.memtable.apply(record);
            stripe.memtable.approximate_bytes() >= self.per_stripe_memtable_bytes()
        };
        self.marks[s]
            .highest_applied
            // ORDER: AcqRel; same pairing as `write_record` — publishes the
            // apply to `advance_floor_locked`'s Acquire load.
            .fetch_max(record.seq, Ordering::AcqRel);
        self.tracker.complete(record.seq);
        match record.kind {
            RecordKind::Put => self.stats.puts.fetch_add(1, Ordering::Relaxed),
            RecordKind::Delete => self.stats.deletes.fetch_add(1, Ordering::Relaxed),
        };
        if over_threshold {
            self.flush_stripe(s)?;
        }
        Ok(true)
    }

    /// Highest sequence number (replication LSN) applied so far; 0 when
    /// empty. This is the highest *contiguous* applied seq: with concurrent
    /// writers it may momentarily trail an individual writer's own seq
    /// (returned by [`Db::put`]) while earlier seqs finish applying.
    pub fn last_seq(&self) -> u64 {
        self.tracker.visible()
    }

    /// Flush buffered WAL frames to the OS so tail readers (replication
    /// binlogs) can observe them. Does not fsync.
    pub fn flush_wal(&self) -> Result<()> {
        self.log.flush()
    }

    /// Id of the WAL segment currently receiving appends.
    pub fn current_wal_segment(&self) -> u64 {
        self.log.segment()
    }

    /// Current position of the live WAL, as a `(segment, byte offset)` pair —
    /// where a tail reader that has already applied every record should
    /// resume (planned leadership handover seeks caught-up followers here
    /// instead of re-polling the full retained log). The offset counts only
    /// *flushed* bytes — never frames still in the group-commit buffer, which
    /// a tail reader cannot see yet.
    pub fn wal_position(&self) -> (u64, u64) {
        self.log.position()
    }

    /// The directory this database lives in (replication tails its WALs).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Copy a crash-consistent snapshot of the database into `dest_dir`
    /// (manifest, SSTs, and WALs), returning where the copy ends in the log.
    ///
    /// Used for full resynchronization: a follower too far behind for WAL
    /// shipping (its segments were rotated away) reopens from a checkpoint and
    /// resumes tailing at the returned `(wal_segment, wal_offset)` position.
    /// `on_chunk` is invoked with each copied chunk's size — reconstruction
    /// uses it to model per-node disk bandwidth.
    ///
    /// Only the cross-stripe `shared` lock is held to *pin* the snapshot:
    /// live files are hard-linked into a private pin directory and the log
    /// cursor recorded, all O(files) — writers keep writing to every stripe
    /// during the pin. The byte copy then streams **without any lock**,
    /// reading the pinned inodes (a deleted original stays readable through
    /// its link), so seeding a replica does not stall the write path. The
    /// live WAL segment is copied only up to the recorded offset — which
    /// counts only flushed complete frames, so the cursor can never point
    /// into a torn or still-buffered frame — keeping the clone byte-exact
    /// with the returned cursor even while the leader keeps appending.
    pub fn checkpoint_with(
        &self,
        dest_dir: &Path,
        on_chunk: &mut dyn FnMut(usize),
    ) -> Result<CheckpointInfo> {
        static PIN_SEQ: AtomicU64 = AtomicU64::new(0);
        let pin_timer = abase_obs::Timer::start();
        let pin_dir = self.dir.join(format!(
            ".ckpt-pin-{}-{}",
            std::process::id(),
            PIN_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        // Phase 1 — pin under the shared lock. Cleanup of the pin directory
        // on *any* exit (including a failed hard link) happens below; a
        // crashed process's stale pin dirs are swept by `Db::open`.
        struct PinSnapshot {
            version: Version,
            wal_segment: u64,
            wal_offset: u64,
            last_seq: u64,
            /// `(pinned link, destination path)` per live file.
            files: Vec<(PathBuf, PathBuf)>,
        }
        let phase1 = || -> Result<PinSnapshot> {
            let shared = self.shared.lock();
            // Drains the group-commit buffer and returns a cursor on a
            // flushed frame boundary: every seq ≤ last_seq is either in a
            // pinned SST or in pinned WAL bytes at or below wal_offset.
            let (wal_segment, wal_offset, last_seq) = self.log.checkpoint_cursor()?;
            std::fs::create_dir_all(&pin_dir)?;
            let mut pinned: Vec<(PathBuf, PathBuf)> = Vec::new(); // (pin, dest name)
            let mut pin = |src: PathBuf, dest_name: PathBuf| -> Result<()> {
                // INVARIANT: every pinned path is built by sst_path/wal_path,
                // which always append a file name component.
                let pinned_path = pin_dir.join(src.file_name().expect("data files have names"));
                std::fs::hard_link(&src, &pinned_path)?;
                pinned.push((pinned_path, dest_name));
                Ok(())
            };
            for files in &shared.version.levels {
                for meta in files {
                    pin(sst_path(&self.dir, meta.id), sst_path(dest_dir, meta.id))?;
                }
            }
            for id in Wal::list_segments(&self.dir)? {
                // Segments below the floor are retained backlog for tail
                // readers; their records are already in the pinned SSTs and
                // the clone would never replay them — copying them wastes
                // recovery bandwidth.
                if id < shared.version.wal_floor {
                    continue;
                }
                pin(wal_path(&self.dir, id), wal_path(dest_dir, id))?;
            }
            let mut version = shared.version.clone();
            version.next_seq = last_seq + 1;
            Ok(PinSnapshot {
                version,
                wal_segment,
                wal_offset,
                last_seq,
                files: pinned,
            })
        };
        let PinSnapshot {
            version,
            wal_segment,
            wal_offset,
            last_seq,
            files: pinned,
        } = match phase1() {
            Ok(snapshot) => snapshot,
            Err(e) => {
                std::fs::remove_dir_all(&pin_dir).ok();
                return Err(e);
            }
        };
        // Phase 2 — stream the pinned bytes, lock-free.
        let result = (|| -> Result<u64> {
            std::fs::create_dir_all(dest_dir)?;
            let mut bytes_copied = 0u64;
            let fp_context = self.dir.display().to_string();
            let live_wal_name = wal_path(&self.dir, wal_segment);
            for (pinned_path, dest) in &pinned {
                // Cap the live segment at the recorded cursor; appends that
                // landed after the pin belong to the tail the follower ships.
                let limit = if pinned_path.file_name() == live_wal_name.file_name() {
                    Some(wal_offset)
                } else {
                    None
                };
                let mut reader = std::fs::File::open(pinned_path)?;
                let mut writer = std::fs::File::create(dest)?;
                let mut remaining = limit.unwrap_or(u64::MAX);
                let mut chunk = vec![0u8; 64 << 10];
                while remaining > 0 {
                    // Chaos site: a checkpoint source dying mid-copy (each
                    // chunk may be the one that fails or stalls).
                    if let Some(abase_util::failpoint::FaultAction::Error) =
                        abase_util::failpoint::check("db.checkpoint", &fp_context)
                    {
                        return Err(Error::Io(std::io::Error::other(
                            "injected fault: checkpoint source failed mid-copy",
                        )));
                    }
                    let want = chunk.len().min(remaining.min(u64::MAX >> 1) as usize);
                    let n = std::io::Read::read(&mut reader, &mut chunk[..want])?;
                    if n == 0 {
                        break;
                    }
                    std::io::Write::write_all(&mut writer, &chunk[..n])?;
                    bytes_copied += n as u64;
                    remaining = remaining.saturating_sub(n as u64);
                    on_chunk(n);
                }
            }
            version.save(dest_dir)?;
            Ok(bytes_copied)
        })();
        std::fs::remove_dir_all(&pin_dir).ok();
        pin_timer.observe(&crate::metrics::CHECKPOINT_PIN_MICROS);
        let bytes_copied = result?;
        crate::metrics::CHECKPOINTS.inc();
        Ok(CheckpointInfo {
            last_seq,
            wal_segment,
            wal_offset,
            bytes_copied,
        })
    }

    /// [`Db::checkpoint_with`] without a progress callback.
    pub fn checkpoint(&self, dest_dir: &Path) -> Result<CheckpointInfo> {
        self.checkpoint_with(dest_dir, &mut |_| {})
    }

    /// Point read at virtual time `now` (TTL-expired records read as absent).
    /// Touches exactly one stripe's lock.
    pub fn get(&self, key: &[u8], now: SimTime) -> Result<ReadResult> {
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        let stripe = self.stripes[self.stripe_of(key)].read();
        // 1. Memtable: the newest state, shadowing everything below.
        if let Some(entry) = stripe.memtable.get(key) {
            self.stats.memtable_hits.fetch_add(1, Ordering::Relaxed);
            let value = match entry.kind {
                RecordKind::Delete => None,
                RecordKind::Put => {
                    if entry.expires_at != NO_EXPIRY && entry.expires_at <= now {
                        None
                    } else {
                        Some(entry.value.clone())
                    }
                }
            };
            return Ok(ReadResult {
                value,
                io_ops: 0,
                cache_hits: 0,
                from_memtable: true,
            });
        }
        let mut io = BlockIo::default();
        // 2. L0, newest file first (files may overlap).
        for meta in &stripe.levels[0] {
            let reader = &stripe.readers[&meta.id];
            let (record, file_io) = reader.get(key)?;
            io.absorb(file_io);
            if let Some(record) = record {
                self.stats
                    .block_reads
                    .fetch_add(u64::from(io.disk), Ordering::Relaxed);
                return Ok(self.resolve(record, now, io));
            }
        }
        // 3. L1+: at most one candidate file per level.
        for level in 1..stripe.levels.len() {
            let files = &stripe.levels[level];
            let idx = files.partition_point(|m| m.max_key.as_ref() < key);
            if let Some(meta) = files.get(idx) {
                if meta.min_key.as_ref() <= key {
                    let reader = &stripe.readers[&meta.id];
                    let (record, file_io) = reader.get(key)?;
                    io.absorb(file_io);
                    if let Some(record) = record {
                        self.stats
                            .block_reads
                            .fetch_add(u64::from(io.disk), Ordering::Relaxed);
                        return Ok(self.resolve(record, now, io));
                    }
                }
            }
        }
        self.stats
            .block_reads
            .fetch_add(u64::from(io.disk), Ordering::Relaxed);
        Ok(ReadResult {
            value: None,
            io_ops: io.total(),
            cache_hits: io.cached,
            from_memtable: false,
        })
    }

    fn resolve(&self, record: Record, now: SimTime, io: BlockIo) -> ReadResult {
        let value = match record.kind {
            RecordKind::Delete => None,
            RecordKind::Put => {
                if record.is_expired(now) {
                    None
                } else {
                    Some(record.value)
                }
            }
        };
        ReadResult {
            value,
            io_ops: io.total(),
            cache_hits: io.cached,
            from_memtable: false,
        }
    }

    /// All live `(key, value)` pairs whose key starts with `prefix`, at
    /// virtual time `now`. Returns the pairs and the block I/Os used.
    ///
    /// Takes every stripe's read lock (in index order, so concurrent scans
    /// cannot deadlock) to get a point-in-time view across stripes, then
    /// merges by key with newest-seq-wins — sequence numbers are globally
    /// unique, so the merge is unambiguous regardless of source order.
    pub fn scan_prefix(&self, prefix: &[u8], now: SimTime) -> Result<(Vec<(Bytes, Bytes)>, u32)> {
        let guards: Vec<_> = self.stripes.iter().map(|s| s.read()).collect();
        let mut sources = Vec::new();
        let mut io = BlockIo::default();
        let upper = upper_bound_for_prefix(prefix);
        for stripe in &guards {
            sources.push(
                stripe
                    .memtable
                    .scan_prefix(prefix)
                    .map(|(k, e)| Record {
                        key: k.clone(),
                        seq: e.seq,
                        kind: e.kind,
                        expires_at: e.expires_at,
                        value: e.value.clone(),
                    })
                    .collect::<Vec<_>>(),
            );
            for level in 0..stripe.levels.len() {
                for meta in &stripe.levels[level] {
                    if !meta.overlaps(prefix, upper.as_ref()) {
                        continue;
                    }
                    let reader = &stripe.readers[&meta.id];
                    let (records, file_io) = reader.scan_prefix(prefix)?;
                    io.absorb(file_io);
                    sources.push(records);
                }
            }
        }
        self.stats
            .block_reads
            .fetch_add(u64::from(io.disk), Ordering::Relaxed);
        let merged = MergeIterator::new(sources).dedup_newest(now, true);
        let out = merged.into_iter().map(|r| (r.key, r.value)).collect();
        Ok((out, io.total()))
    }

    /// Force a memtable flush of every stripe (no-op for empty stripes).
    pub fn flush(&self) -> Result<()> {
        for s in 0..self.n_stripes {
            self.flush_stripe(s)?;
        }
        Ok(())
    }

    /// Flush one stripe's memtable into an L0 SST, rotate the shared WAL,
    /// and advance the floor as far as cross-stripe coverage allows.
    fn flush_stripe(&self, s: usize) -> Result<()> {
        let mut stripe = self.stripes[s].write();
        // Everything this stripe holds with seq ≤ v is in its memtable right
        // now (we hold the stripe write lock, and `visible` only advances
        // after a record's apply completes), so after writing the memtable
        // out, this stripe is flushed through v.
        let v = self.tracker.visible();
        if stripe.memtable.is_empty() {
            // ORDER: AcqRel; Release publishes "flushed through v" to the
            // Acquire load in `advance_floor_locked` before the floor moves.
            self.marks[s].flushed_through.fetch_max(v, Ordering::AcqRel);
            let mut shared = self.shared.lock();
            return self.advance_floor_locked(&mut shared);
        }
        let flush_timer = abase_obs::Timer::start();
        let id = self.shared.lock().version.allocate_file_id();
        // The SST write — the expensive part — happens under only this
        // stripe's lock: writes to other stripes proceed untouched.
        let path = sst_path(&self.dir, id);
        let mut writer = SstWriter::create(
            &path,
            stripe.memtable.len(),
            self.config.bloom_bits_per_key,
            self.config.block_bytes,
        )?;
        for record in stripe.memtable.iter_records() {
            writer.add(&record)?;
        }
        let info = writer.finish()?;
        self.stats
            .sst_bytes_written
            .fetch_add(info.file_size, Ordering::Relaxed);
        crate::metrics::FLUSH_BYTES.add(info.file_size);
        let meta = SstMeta {
            id,
            level: 0,
            stripe: s as u32,
            min_key: info.min_key,
            max_key: info.max_key,
            file_size: info.file_size,
            record_count: info.record_count,
        };
        let reader = Arc::new(SstReader::open_cached(&path, self.block_cache.clone())?);
        {
            let mut shared = self.shared.lock();
            shared.version.add_file(meta.clone());
            // Rotate the shared WAL so the flushed records' segment can age
            // out once every stripe catches up. Skip when nothing was
            // appended (another stripe's flush just rotated) or the log is
            // poisoned (the simulated crash already ended this log's life;
            // recovery happens at reopen).
            if !self.log.is_poisoned() && self.log.appended_bytes() > 0 {
                let new_segment = shared.version.allocate_file_id();
                // `rotate` returns the last seq the old segment holds,
                // captured under the log lock at the swap — no append can
                // slip into the old segment after this watermark.
                let end_seq = self
                    .log
                    .rotate(&wal_path(&self.dir, new_segment), new_segment)?;
                let old = shared.live_segment;
                shared.rotated.push((old, end_seq));
                shared.live_segment = new_segment;
            }
            // ORDER: AcqRel; Release publishes the completed SST write to
            // the Acquire load in `advance_floor_locked`.
            self.marks[s].flushed_through.fetch_max(v, Ordering::AcqRel);
            self.advance_floor_locked(&mut shared)?;
        }
        stripe.add_file(meta, reader);
        stripe.memtable.clear();
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        crate::metrics::FLUSHES.inc();
        flush_timer.observe(&crate::metrics::FLUSH_MICROS);
        Ok(())
    }

    /// Advance `wal_floor` past every rotated segment whose records all
    /// stripes have flushed, persist the manifest, and garbage-collect
    /// segments beyond the retention backlog. Caller holds the shared lock.
    fn advance_floor_locked(&self, shared: &mut Shared) -> Result<()> {
        // Read the visible watermark FIRST: a seq that completes after this
        // read is simply not credited this round (conservative), whereas
        // reading it last could credit a fully-flushed stripe with coverage
        // of records that raced into it after its flush.
        let v = self.tracker.visible();
        let mut min_cov = u64::MAX;
        for marks in &self.marks {
            // ORDER: Acquire pair with the AcqRel fetch_max publishes in
            // `flush_stripe`/`write_record`: a mark observed here implies
            // the flush/apply it describes is visible too.
            let ft = marks.flushed_through.load(Ordering::Acquire);
            let ha = marks.highest_applied.load(Ordering::Acquire);
            // A stripe with nothing unflushed covers the whole visible
            // stream (anything ≤ v it holds is flushed); one with unflushed
            // records covers only through its own flush mark.
            let cov = if ha <= ft { ft.max(v) } else { ft };
            min_cov = min_cov.min(cov);
        }
        let drop_count = shared
            .rotated
            .iter()
            .take_while(|&&(_, end_seq)| end_seq <= min_cov)
            .count();
        shared.rotated.drain(..drop_count);
        let new_floor = shared
            .rotated
            .first()
            .map(|&(segment, _)| segment)
            .unwrap_or(shared.live_segment);
        shared.version.wal_floor = shared.version.wal_floor.max(new_floor);
        shared.version.next_seq = shared.version.next_seq.max(self.log.next_seq());
        shared.version.save(&self.dir)?;
        // Segments below the floor are a retained replication backlog;
        // delete the oldest beyond the retention budget.
        let old: Vec<u64> = Wal::list_segments(&self.dir)?
            .into_iter()
            .filter(|&id| id < shared.version.wal_floor)
            .collect();
        let excess = old.len().saturating_sub(self.config.wal_retention_segments);
        for id in &old[..excess] {
            std::fs::remove_file(wal_path(&self.dir, *id)).ok();
        }
        Ok(())
    }

    /// Run at most one compaction round (first stripe with work wins).
    /// Returns true if one executed. Expired records are dropped using
    /// virtual time `now`.
    pub fn compact_once(&self, now: SimTime) -> Result<bool> {
        for s in 0..self.n_stripes {
            let mut stripe = self.stripes[s].write();
            let Some(task) = pick_compaction(&stripe.levels, &self.config.compaction) else {
                continue;
            };
            // Collect input streams. Input ids arrive with the from-level
            // files first (newest sources first for L0), which matches the
            // merge iterator's tie-breaking contract.
            let mut sources = Vec::with_capacity(task.input_ids.len());
            for id in &task.input_ids {
                let reader = stripe
                    .readers
                    .get(id)
                    .ok_or_else(|| Error::InvalidState(format!("missing reader for sst {id}")))?;
                sources.push(reader.scan_all()?);
            }
            let merged = MergeIterator::new(sources).dedup_newest(now, task.is_bottom_level);
            // Write merged output, splitting at the target file size. File
            // ids come from the shared counter (brief lock); the writes
            // themselves run under only this stripe's lock.
            let mut new_metas = Vec::new();
            let mut writer: Option<(u64, SstWriter, u64)> = None; // (id, writer, bytes)
            let finish = |id: u64, w: SstWriter, new_metas: &mut Vec<SstMeta>| -> Result<()> {
                let info = w.finish()?;
                self.stats
                    .sst_bytes_written
                    .fetch_add(info.file_size, Ordering::Relaxed);
                new_metas.push(SstMeta {
                    id,
                    level: task.output_level as u32,
                    stripe: s as u32,
                    min_key: info.min_key,
                    max_key: info.max_key,
                    file_size: info.file_size,
                    record_count: info.record_count,
                });
                Ok(())
            };
            for record in &merged {
                if writer.is_none() {
                    let id = self.shared.lock().version.allocate_file_id();
                    let w = SstWriter::create(
                        &sst_path(&self.dir, id),
                        merged.len(),
                        self.config.bloom_bits_per_key,
                        self.config.block_bytes,
                    )?;
                    writer = Some((id, w, 0));
                }
                // INVARIANT: the block above creates the writer when None;
                // it is Some on every path reaching here.
                let (_, w, bytes) = writer.as_mut().expect("writer just ensured");
                w.add(record)?;
                *bytes += record.approximate_size() as u64;
                if *bytes >= self.config.target_sst_bytes {
                    // INVARIANT: guarded by the same writer.is_some() flow.
                    let (id, w, _) = writer.take().expect("writer present");
                    finish(id, w, &mut new_metas)?;
                }
            }
            if let Some((id, w, _)) = writer.take() {
                finish(id, w, &mut new_metas)?;
            }
            // Install: update the manifest under the shared lock (input
            // deletion also happens there, so a concurrent checkpoint pin
            // can never see a version whose files are already unlinked),
            // then mirror into this stripe's view.
            let mut new_readers = Vec::with_capacity(new_metas.len());
            for meta in &new_metas {
                new_readers.push(Arc::new(SstReader::open_cached(
                    &sst_path(&self.dir, meta.id),
                    self.block_cache.clone(),
                )?));
            }
            {
                let mut shared = self.shared.lock();
                for id in &task.input_ids {
                    shared.version.remove_file(*id);
                }
                for meta in &new_metas {
                    shared.version.add_file(meta.clone());
                }
                shared.version.save(&self.dir)?;
                for id in &task.input_ids {
                    std::fs::remove_file(sst_path(&self.dir, *id)).ok();
                }
            }
            for id in &task.input_ids {
                stripe.remove_file(*id);
            }
            for (meta, reader) in new_metas.iter().zip(new_readers) {
                stripe.add_file(meta.clone(), reader);
            }
            self.stats.compactions.fetch_add(1, Ordering::Relaxed);
            crate::metrics::COMPACTIONS.inc();
            crate::metrics::COMPACTION_BYTES.add(new_metas.iter().map(|m| m.file_size).sum());
            return Ok(true);
        }
        Ok(false)
    }

    /// Run compactions until the tree is shaped (bounded rounds).
    pub fn compact_to_quiescence(&self, now: SimTime) -> Result<u32> {
        let mut rounds = 0;
        while rounds < 64 && self.compact_once(now)? {
            rounds += 1;
        }
        Ok(rounds)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DbStats {
        DbStats {
            gets: self.stats.gets.load(Ordering::Relaxed),
            puts: self.stats.puts.load(Ordering::Relaxed),
            deletes: self.stats.deletes.load(Ordering::Relaxed),
            block_reads: self.stats.block_reads.load(Ordering::Relaxed),
            memtable_hits: self.stats.memtable_hits.load(Ordering::Relaxed),
            flushes: self.stats.flushes.load(Ordering::Relaxed),
            compactions: self.stats.compactions.load(Ordering::Relaxed),
            sst_bytes_written: self.stats.sst_bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Total live SST bytes (storage utilization for the rescheduler).
    pub fn total_sst_bytes(&self) -> u64 {
        self.shared.lock().version.total_bytes()
    }

    /// Live files per level across all stripes, for diagnostics.
    pub fn level_file_counts(&self) -> Vec<usize> {
        self.shared
            .lock()
            .version
            .levels
            .iter()
            .map(Vec::len)
            .collect()
    }
}

/// Smallest byte string strictly greater than every key with `prefix`
/// (used to bound overlap checks). Falls back to 0xFF-padding when the prefix
/// is all 0xFF.
fn upper_bound_for_prefix(prefix: &[u8]) -> Bytes {
    let mut upper = prefix.to_vec();
    while let Some(last) = upper.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Bytes::from(upper);
        }
        upper.pop();
    }
    // All-0xFF prefix: unbounded above; use a long max sentinel.
    Bytes::from(vec![0xFFu8; prefix.len() + 8])
}

#[cfg(test)]
mod tests {
    use super::*;
    use abase_util::TestDir;

    #[test]
    fn put_get_roundtrip() {
        let dir = TestDir::new("putget");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        db.put(b"k1", b"v1", None, 0).unwrap();
        let r = db.get(b"k1", 0).unwrap();
        assert_eq!(r.value.as_deref(), Some(&b"v1"[..]));
        assert!(r.from_memtable);
        assert!(db.get(b"missing", 0).unwrap().value.is_none());
    }

    #[test]
    fn overwrite_returns_latest() {
        let dir = TestDir::new("overwrite");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        db.put(b"k", b"v1", None, 0).unwrap();
        db.put(b"k", b"v2", None, 0).unwrap();
        assert_eq!(db.get(b"k", 0).unwrap().value.as_deref(), Some(&b"v2"[..]));
    }

    #[test]
    fn delete_hides_key_across_flush() {
        let dir = TestDir::new("delete");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        db.put(b"k", b"v", None, 0).unwrap();
        db.flush().unwrap();
        db.delete(b"k", 0).unwrap();
        assert!(db.get(b"k", 0).unwrap().value.is_none());
        db.flush().unwrap();
        assert!(db.get(b"k", 0).unwrap().value.is_none());
    }

    #[test]
    fn reads_span_memtable_and_multiple_ssts() {
        let dir = TestDir::new("layers");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        db.put(b"in-sst-1", b"a", None, 0).unwrap();
        db.flush().unwrap();
        db.put(b"in-sst-2", b"b", None, 0).unwrap();
        db.flush().unwrap();
        db.put(b"in-mem", b"c", None, 0).unwrap();
        assert_eq!(
            db.get(b"in-sst-1", 0).unwrap().value.as_deref(),
            Some(&b"a"[..])
        );
        assert_eq!(
            db.get(b"in-sst-2", 0).unwrap().value.as_deref(),
            Some(&b"b"[..])
        );
        let r = db.get(b"in-mem", 0).unwrap();
        assert!(r.from_memtable);
        // An SST read costs at least one block I/O.
        let r = db.get(b"in-sst-1", 0).unwrap();
        assert!(r.io_ops >= 1);
    }

    #[test]
    fn ttl_expires_reads() {
        let dir = TestDir::new("ttl");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        db.put(b"k", b"v", Some(1000), 0).unwrap();
        assert!(db.get(b"k", 999).unwrap().value.is_some());
        assert!(db.get(b"k", 1000).unwrap().value.is_none());
        // Also across a flush.
        db.flush().unwrap();
        assert!(db.get(b"k", 1000).unwrap().value.is_none());
        assert!(db.get(b"k", 999).unwrap().value.is_some());
    }

    #[test]
    fn automatic_flush_on_memtable_pressure() {
        let dir = TestDir::new("autoflush");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        for i in 0..200 {
            let key = format!("key-{i:04}");
            db.put(key.as_bytes(), &[0u8; 100], None, 0).unwrap();
        }
        assert!(db.stats().flushes >= 1, "no flush under pressure");
        // All keys remain readable.
        for i in 0..200 {
            let key = format!("key-{i:04}");
            assert!(
                db.get(key.as_bytes(), 0).unwrap().value.is_some(),
                "{key} lost"
            );
        }
    }

    #[test]
    fn compaction_preserves_data_and_reduces_l0() {
        let dir = TestDir::new("compact");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        for round in 0..5 {
            for i in 0..50 {
                let key = format!("key-{i:04}");
                let value = format!("v{round}-{i}");
                db.put(key.as_bytes(), value.as_bytes(), None, 0).unwrap();
            }
            db.flush().unwrap();
        }
        let l0_before = db.level_file_counts()[0];
        assert!(l0_before >= 3);
        let rounds = db.compact_to_quiescence(0).unwrap();
        assert!(rounds >= 1);
        assert!(db.level_file_counts()[0] < l0_before);
        // Latest values win after compaction.
        for i in 0..50 {
            let key = format!("key-{i:04}");
            let expect = format!("v4-{i}");
            assert_eq!(
                db.get(key.as_bytes(), 0).unwrap().value.as_deref(),
                Some(expect.as_bytes()),
                "{key}"
            );
        }
    }

    #[test]
    fn recovery_from_wal_after_drop() {
        let dir = TestDir::new("recover");
        {
            let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
            db.put(b"durable", b"yes", None, 0).unwrap();
            // No flush: data only in WAL + memtable.
        }
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        assert_eq!(
            db.get(b"durable", 0).unwrap().value.as_deref(),
            Some(&b"yes"[..])
        );
    }

    #[test]
    fn recovery_after_flush_and_more_writes() {
        let dir = TestDir::new("recover2");
        {
            let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
            db.put(b"a", b"1", None, 0).unwrap();
            db.flush().unwrap();
            db.put(b"b", b"2", None, 0).unwrap();
        }
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        assert_eq!(db.get(b"a", 0).unwrap().value.as_deref(), Some(&b"1"[..]));
        assert_eq!(db.get(b"b", 0).unwrap().value.as_deref(), Some(&b"2"[..]));
        // Sequence numbers continue: an overwrite after recovery wins.
        db.put(b"a", b"3", None, 0).unwrap();
        assert_eq!(db.get(b"a", 0).unwrap().value.as_deref(), Some(&b"3"[..]));
    }

    #[test]
    fn scan_prefix_merges_all_layers() {
        let dir = TestDir::new("scan");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        db.put(b"h:1", b"a", None, 0).unwrap();
        db.flush().unwrap();
        db.put(b"h:2", b"b", None, 0).unwrap();
        db.put(b"other", b"x", None, 0).unwrap();
        db.put(b"h:1", b"a2", None, 0).unwrap(); // overwrite in memtable
        let (pairs, _) = db.scan_prefix(b"h:", 0).unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], (Bytes::from("h:1"), Bytes::from("a2")));
        assert_eq!(pairs[1], (Bytes::from("h:2"), Bytes::from("b")));
    }

    #[test]
    fn scan_prefix_hides_tombstones_and_expired() {
        let dir = TestDir::new("scan2");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        db.put(b"p:live", b"1", None, 0).unwrap();
        db.put(b"p:dead", b"2", None, 0).unwrap();
        db.put(b"p:ttl", b"3", Some(500), 0).unwrap();
        db.delete(b"p:dead", 0).unwrap();
        let (pairs, _) = db.scan_prefix(b"p:", 1000).unwrap();
        let keys: Vec<_> = pairs.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![Bytes::from("p:live")]);
    }

    #[test]
    fn bottom_compaction_drops_tombstones_and_expired() {
        let dir = TestDir::new("gc");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        // Three flushes reach the L0 compaction trigger.
        for round in 0..3 {
            for i in 0..30 {
                db.put(format!("k{i:02}-{round}").as_bytes(), b"v", Some(100), 0)
                    .unwrap();
            }
            db.delete(format!("k00-{round}").as_bytes(), 0).unwrap();
            db.flush().unwrap();
        }
        let before = db.total_sst_bytes();
        // Compact well past expiry: everything is GC-able.
        db.compact_to_quiescence(1_000_000).unwrap();
        let after = db.total_sst_bytes();
        assert!(
            after < before,
            "GC did not shrink storage ({before} -> {after})"
        );
    }

    #[test]
    fn stats_move() {
        let dir = TestDir::new("stats");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        db.put(b"k", b"v", None, 0).unwrap();
        db.get(b"k", 0).unwrap();
        db.delete(b"k", 0).unwrap();
        let s = db.stats();
        assert_eq!(s.puts, 1);
        assert_eq!(s.gets, 1);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.memtable_hits, 1);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let dir = TestDir::new("concurrent");
        let db = Arc::new(Db::open(dir.path(), DbConfig::small_for_tests()).unwrap());
        for i in 0..100 {
            db.put(format!("k{i:03}").as_bytes(), b"v", None, 0)
                .unwrap();
        }
        db.flush().unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let key = format!("k{:03}", (i * 7 + t) % 100);
                    assert!(db.get(key.as_bytes(), 0).unwrap().value.is_some());
                }
            }));
        }
        for i in 100..150 {
            db.put(format!("k{i:03}").as_bytes(), b"v", None, 0)
                .unwrap();
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_writers_keep_one_gapless_lsn_stream() {
        // The striped engine's core invariant: N writers on distinct keys
        // still produce one dense, monotone seq stream, and every write is
        // readable afterwards — including after a reopen that redistributes
        // replayed records to their stripes.
        let dir = TestDir::new("striped-lsn");
        const WRITERS: u64 = 4;
        const PER: u64 = 100;
        {
            let db = Arc::new(Db::open(dir.path(), DbConfig::small_for_tests()).unwrap());
            let mut handles = Vec::new();
            for t in 0..WRITERS {
                let db = Arc::clone(&db);
                handles.push(std::thread::spawn(move || {
                    for i in 0..PER {
                        let key = format!("w{t}-{i:04}");
                        let seq = db.put(key.as_bytes(), b"v", None, 0).unwrap();
                        assert!(seq >= 1);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            // All seqs applied and contiguous: the visible watermark reached
            // the last allocated seq with no parked gaps.
            assert_eq!(db.last_seq(), WRITERS * PER);
        }
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        assert_eq!(db.last_seq(), WRITERS * PER);
        for t in 0..WRITERS {
            for i in 0..PER {
                let key = format!("w{t}-{i:04}");
                assert!(
                    db.get(key.as_bytes(), 0).unwrap().value.is_some(),
                    "{key} lost across striped recovery"
                );
            }
        }
    }

    #[test]
    fn stripe_assignment_is_stable_and_spread() {
        let keys: Vec<String> = (0..256).map(|i| format!("key-{i:04}")).collect();
        let mut counts = [0usize; 4];
        for k in &keys {
            let s = stripe_of_key(k.as_bytes(), 4);
            assert_eq!(s, stripe_of_key(k.as_bytes(), 4), "unstable hash");
            counts[s] += 1;
        }
        // FNV over distinct keys should not collapse into one stripe.
        assert!(counts.iter().all(|&c| c > 0), "dead stripe: {counts:?}");
    }

    #[test]
    fn apply_replicated_preserves_seq_and_dedups() {
        let dir = TestDir::new("apply-repl");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        let r1 = crate::record::Record::put("k", "v1", 1, None);
        let r2 = crate::record::Record::put("k", "v2", 2, None);
        assert!(db.apply_replicated(&r1).unwrap());
        assert!(db.apply_replicated(&r2).unwrap());
        // Re-shipping an old record is a no-op, not a regression.
        assert!(!db.apply_replicated(&r1).unwrap());
        assert_eq!(db.get(b"k", 0).unwrap().value.as_deref(), Some(&b"v2"[..]));
        assert_eq!(db.last_seq(), 2);
        // A gap (seq 9 when 3 is expected) is rejected loudly.
        let gap = crate::record::Record::put("x", "y", 9, None);
        assert!(db.apply_replicated(&gap).is_err());
        // Local writes continue the same sequence domain.
        db.put(b"k2", b"v", None, 0).unwrap();
        assert_eq!(db.last_seq(), 3);
    }

    #[test]
    fn checkpoint_clones_database_state() {
        let src_dir = TestDir::new("ckpt-src");
        let dst_dir = TestDir::new("ckpt-dst");
        let db = Db::open(src_dir.path(), DbConfig::small_for_tests()).unwrap();
        for i in 0..120 {
            db.put(format!("key-{i:04}").as_bytes(), &[7u8; 64], None, 0)
                .unwrap();
        }
        db.flush().unwrap();
        for i in 120..140 {
            db.put(format!("key-{i:04}").as_bytes(), &[7u8; 64], None, 0)
                .unwrap();
        }
        let mut chunks = 0usize;
        let info = db
            .checkpoint_with(dst_dir.path(), &mut |n| chunks += n)
            .unwrap();
        assert_eq!(info.last_seq, db.last_seq());
        assert_eq!(info.bytes_copied, chunks as u64);
        assert!(info.bytes_copied > 0);
        let clone = Db::open(dst_dir.path(), DbConfig::small_for_tests()).unwrap();
        assert_eq!(clone.last_seq(), db.last_seq());
        for i in 0..140 {
            let key = format!("key-{i:04}");
            assert!(
                clone.get(key.as_bytes(), 0).unwrap().value.is_some(),
                "{key} missing"
            );
        }
    }

    #[test]
    fn upper_bound_helper() {
        assert_eq!(upper_bound_for_prefix(b"abc"), Bytes::from("abd"));
        assert_eq!(
            upper_bound_for_prefix(&[0x01, 0xFF]),
            Bytes::from(vec![0x02])
        );
        let ub = upper_bound_for_prefix(&[0xFF, 0xFF]);
        assert!(ub.as_ref() > &[0xFFu8, 0xFF][..]);
    }
}
