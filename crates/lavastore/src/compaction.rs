//! Leveled compaction policy.
//!
//! Pure decision logic over a per-level file listing (no I/O), so the policy
//! is testable in isolation; [`crate::db::Db`] executes the chosen task. The
//! striped engine runs the policy independently over each stripe's levels —
//! the slice passed in is one stripe's view, and the resulting task never
//! crosses stripes. Two triggers:
//!
//! * **L0 trigger** — when L0 accumulates `l0_trigger` files, all of L0 plus
//!   the overlapping span of L1 compacts into fresh L1 files.
//! * **Size trigger** — when level `n ≥ 1` exceeds its byte budget
//!   (`level_base_bytes · level_growth^(n-1)`), its oldest file plus the
//!   overlapping span of level `n+1` compacts down one level.
//!
//! Tombstones are garbage-collected when the output level is the bottom level
//! and expired records are dropped at any level — the TTL-heavy workloads of
//! Table 1 (3-hour advertisement joins, 1-day LLM caches) reclaim space purely
//! through this path.

use crate::version::SstMeta;

/// Compaction tuning knobs (subset of [`crate::db::DbConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct CompactionConfig {
    /// L0 file count that triggers an L0→L1 compaction.
    pub l0_trigger: usize,
    /// Byte budget of L1.
    pub level_base_bytes: u64,
    /// Budget multiplier per level below L1.
    pub level_growth: u64,
    /// Total number of levels.
    pub n_levels: usize,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        Self {
            l0_trigger: 4,
            level_base_bytes: 8 << 20,
            level_growth: 10,
            n_levels: 5,
        }
    }
}

/// A chosen compaction: merge `input_ids` (across `from_level` and
/// `from_level + 1`) and write the result at `output_level`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionTask {
    /// Level being compacted down.
    pub from_level: usize,
    /// Level receiving the merged output.
    pub output_level: usize,
    /// Ids of every input file (from both levels).
    pub input_ids: Vec<u64>,
    /// True when `output_level` is the bottom level (tombstones may drop).
    pub is_bottom_level: bool,
}

/// Byte budget for level `n ≥ 1`.
pub fn level_target_bytes(config: &CompactionConfig, level: usize) -> u64 {
    debug_assert!(level >= 1);
    config.level_base_bytes * config.level_growth.pow(level as u32 - 1)
}

/// Choose the next compaction over one stripe's levels, if any is warranted.
pub fn pick_compaction(
    levels: &[Vec<SstMeta>],
    config: &CompactionConfig,
) -> Option<CompactionTask> {
    // Priority 1: L0 backlog (it blocks reads the most — every L0 file is a
    // potential extra I/O per point read).
    if levels[0].len() >= config.l0_trigger {
        let l0 = &levels[0];
        let mut min = l0[0].min_key.clone();
        let mut max = l0[0].max_key.clone();
        for m in &l0[1..] {
            if m.min_key < min {
                min = m.min_key.clone();
            }
            if m.max_key > max {
                max = m.max_key.clone();
            }
        }
        let mut input_ids: Vec<u64> = l0.iter().map(|m| m.id).collect();
        if levels.len() > 1 {
            input_ids.extend(overlapping(levels, 1, &min, &max).map(|m| m.id));
        }
        let output_level = 1.min(levels.len() - 1);
        return Some(CompactionTask {
            from_level: 0,
            output_level,
            input_ids,
            is_bottom_level: output_level == levels.len() - 1
                || deeper_levels_empty(levels, output_level),
        });
    }
    // Priority 2: oversized intermediate level.
    for level in 1..levels.len().saturating_sub(1) {
        if level_bytes(levels, level) > level_target_bytes(config, level)
            && !levels[level].is_empty()
        {
            // Oldest file (smallest id) rotates down, plus next-level overlap.
            let Some(victim) = levels[level].iter().min_by_key(|m| m.id) else {
                continue;
            };
            let mut input_ids = vec![victim.id];
            input_ids.extend(
                overlapping(levels, level + 1, &victim.min_key, &victim.max_key).map(|m| m.id),
            );
            let output_level = level + 1;
            return Some(CompactionTask {
                from_level: level,
                output_level,
                input_ids,
                is_bottom_level: output_level == levels.len() - 1
                    || deeper_levels_empty(levels, output_level),
            });
        }
    }
    None
}

/// Files at `level` intersecting `[min, max]`.
fn overlapping<'a>(
    levels: &'a [Vec<SstMeta>],
    level: usize,
    min: &'a [u8],
    max: &'a [u8],
) -> impl Iterator<Item = &'a SstMeta> {
    levels[level].iter().filter(move |m| m.overlaps(min, max))
}

/// Total bytes at `level`.
fn level_bytes(levels: &[Vec<SstMeta>], level: usize) -> u64 {
    levels[level].iter().map(|m| m.file_size).sum()
}

/// True when every level strictly below `level` holds no files — a record
/// surviving at `level` is then the oldest version in the tree, so tombstones
/// may be dropped safely.
fn deeper_levels_empty(levels: &[Vec<SstMeta>], level: usize) -> bool {
    levels[level + 1..].iter().all(Vec::is_empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::Version;
    use bytes::Bytes;

    fn meta(id: u64, level: u32, min: &str, max: &str, size: u64) -> SstMeta {
        SstMeta {
            id,
            level,
            stripe: 0,
            min_key: Bytes::copy_from_slice(min.as_bytes()),
            max_key: Bytes::copy_from_slice(max.as_bytes()),
            file_size: size,
            record_count: 1,
        }
    }

    fn config() -> CompactionConfig {
        CompactionConfig {
            l0_trigger: 3,
            level_base_bytes: 1000,
            level_growth: 10,
            n_levels: 4,
        }
    }

    #[test]
    fn no_compaction_when_quiet() {
        let v = Version::new(4);
        assert_eq!(pick_compaction(&v.levels, &config()), None);
    }

    #[test]
    fn l0_trigger_fires_at_threshold() {
        let mut v = Version::new(4);
        v.add_file(meta(1, 0, "a", "m", 100));
        v.add_file(meta(2, 0, "b", "n", 100));
        assert!(pick_compaction(&v.levels, &config()).is_none());
        v.add_file(meta(3, 0, "c", "o", 100));
        let task = pick_compaction(&v.levels, &config()).unwrap();
        assert_eq!(task.from_level, 0);
        assert_eq!(task.output_level, 1);
        assert_eq!(task.input_ids.len(), 3);
    }

    #[test]
    fn l0_compaction_pulls_overlapping_l1() {
        let mut v = Version::new(4);
        v.add_file(meta(1, 0, "c", "f", 100));
        v.add_file(meta(2, 0, "d", "g", 100));
        v.add_file(meta(3, 0, "e", "h", 100));
        v.add_file(meta(10, 1, "a", "d", 100)); // overlaps
        v.add_file(meta(11, 1, "x", "z", 100)); // disjoint
        let task = pick_compaction(&v.levels, &config()).unwrap();
        assert!(task.input_ids.contains(&10));
        assert!(!task.input_ids.contains(&11));
    }

    #[test]
    fn size_trigger_compacts_oversized_level() {
        let mut v = Version::new(4);
        // L1 budget is 1000 bytes; stuff 3 files of 600.
        v.add_file(meta(1, 1, "a", "c", 600));
        v.add_file(meta(2, 1, "d", "f", 600));
        v.add_file(meta(3, 1, "g", "i", 600));
        v.add_file(meta(9, 2, "a", "e", 100)); // overlaps file 1 and 2
        let task = pick_compaction(&v.levels, &config()).unwrap();
        assert_eq!(task.from_level, 1);
        assert_eq!(task.output_level, 2);
        // Oldest file (id 1) chosen; L2 overlap (id 9) included.
        assert_eq!(task.input_ids, vec![1, 9]);
    }

    #[test]
    fn bottom_level_flag_allows_tombstone_gc() {
        let mut v = Version::new(3);
        v.add_file(meta(1, 1, "a", "c", 5000));
        let task = pick_compaction(&v.levels, &config()).unwrap();
        assert_eq!(task.output_level, 2);
        assert!(task.is_bottom_level);
    }

    #[test]
    fn l0_to_l1_is_bottom_when_deeper_levels_empty() {
        let mut v = Version::new(4);
        for i in 0..3 {
            v.add_file(meta(i + 1, 0, "a", "z", 100));
        }
        let task = pick_compaction(&v.levels, &config()).unwrap();
        assert!(task.is_bottom_level, "no deeper data ⇒ GC tombstones");
    }

    #[test]
    fn level_targets_grow_geometrically() {
        let c = config();
        assert_eq!(level_target_bytes(&c, 1), 1000);
        assert_eq!(level_target_bytes(&c, 2), 10_000);
        assert_eq!(level_target_bytes(&c, 3), 100_000);
    }
}
