//! Hierarchical request restriction (paper §4.2).
//!
//! Traffic is controlled **before** it reaches the shared request queue, at two
//! levels:
//!
//! * **Proxy level** — each of a tenant's `N` proxies gets
//!   `proxy_quota = tenant_quota / N` and may autonomously serve up to **2×**
//!   that rate. The meta server monitors the tenant's aggregate traffic
//!   asynchronously and, when the aggregate exceeds the tenant quota, directs
//!   proxies to *revert to their standard quota* — an asynchronous traffic
//!   control loop that avoids DynamoDB-style synchronous admission calls.
//! * **Partition level** — each partition gets
//!   `partition_quota = tenant_quota / num_partitions`, and a data node rejects
//!   requests that would push a partition beyond **3×** its quota, at the entry
//!   of the request queue. (Hash partitioning spreads keys evenly, so 3× slack
//!   absorbs statistical skew while preventing one partition from eating the
//!   whole tenant quota as DynamoDB permits.)

use crate::bucket::TokenBucket;
use abase_util::clock::SimTime;
use abase_util::stats::WindowedRate;
use std::collections::HashMap;

/// Outcome of an admission check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaDecision {
    /// The request may proceed.
    Admit,
    /// The request exceeds the quota and must be rejected.
    Reject,
}

/// The boost multiplier proxies may apply autonomously ("up to double").
pub const PROXY_BOOST_FACTOR: f64 = 2.0;
/// The partition-level slack multiplier ("no single partition surpasses three
/// times its partition_quota").
pub const PARTITION_SLACK_FACTOR: f64 = 3.0;

/// Per-proxy quota enforcement with autonomous 2× boost.
#[derive(Debug, Clone)]
pub struct ProxyQuota {
    standard_rate: f64,
    boosted: bool,
    bucket: TokenBucket,
}

impl ProxyQuota {
    /// A proxy quota of `standard_rate` RU/s, starting in boosted mode (the
    /// default until the meta server claws the boost back).
    pub fn new(standard_rate: f64, now: SimTime) -> Self {
        let boosted = true;
        let mut q = Self {
            standard_rate,
            boosted,
            // One second of burst at the boosted rate.
            bucket: TokenBucket::new(0.0, (standard_rate * PROXY_BOOST_FACTOR).max(1.0), now),
        };
        q.apply_rate(now);
        q
    }

    fn apply_rate(&mut self, now: SimTime) {
        let rate = if self.boosted {
            self.standard_rate * PROXY_BOOST_FACTOR
        } else {
            self.standard_rate
        };
        self.bucket.set_rate(rate, now);
        self.bucket.set_burst(rate.max(1.0), now);
    }

    /// The standard (un-boosted) RU/s rate.
    pub fn standard_rate(&self) -> f64 {
        self.standard_rate
    }

    /// Whether the proxy is currently allowed the 2× boost.
    pub fn is_boosted(&self) -> bool {
        self.boosted
    }

    /// Re-assign the standard rate (tenant quota changed or proxy fleet
    /// resized); preserves the current boost state.
    pub fn set_standard_rate(&mut self, rate: f64, now: SimTime) {
        self.standard_rate = rate;
        self.apply_rate(now);
    }

    /// Meta-server directive: enable or revoke the autonomous boost.
    pub fn set_boost(&mut self, boosted: bool, now: SimTime) {
        if self.boosted != boosted {
            self.boosted = boosted;
            self.apply_rate(now);
        }
    }

    /// Try to admit a request of `ru` request units at time `now`.
    pub fn admit(&mut self, now: SimTime, ru: f64) -> QuotaDecision {
        if self.bucket.try_consume(now, ru) {
            QuotaDecision::Admit
        } else {
            QuotaDecision::Reject
        }
    }

    /// Post-hoc charge adjustment: debit the difference between the actual
    /// charge and the estimate that was admitted (may create a deficit).
    pub fn settle(&mut self, now: SimTime, delta_ru: f64) {
        if delta_ru > 0.0 {
            self.bucket.consume_saturating(now, delta_ru);
        }
    }
}

/// Per-partition quota enforcement with the 3× slack cap.
#[derive(Debug, Clone)]
pub struct PartitionQuota {
    partition_quota: f64,
    bucket: TokenBucket,
    /// When false, admission always succeeds (Figure 7's "partition quota
    /// disabled" phase).
    enabled: bool,
}

impl PartitionQuota {
    /// A partition quota of `partition_quota` RU/s (enforced at 3×).
    pub fn new(partition_quota: f64, now: SimTime) -> Self {
        let cap = partition_quota * PARTITION_SLACK_FACTOR;
        Self {
            partition_quota,
            bucket: TokenBucket::new(cap, cap.max(1.0), now),
            enabled: true,
        }
    }

    /// The partition's share of the tenant quota (RU/s, before the 3× slack).
    pub fn partition_quota(&self) -> f64 {
        self.partition_quota
    }

    /// Update the quota after tenant scaling or a partition split.
    pub fn set_partition_quota(&mut self, quota: f64, now: SimTime) {
        self.partition_quota = quota;
        let cap = quota * PARTITION_SLACK_FACTOR;
        self.bucket.set_rate(cap, now);
        self.bucket.set_burst(cap.max(1.0), now);
    }

    /// Enable/disable enforcement (ablation experiments).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether enforcement is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Try to admit a request of `ru` request units at time `now`.
    pub fn admit(&mut self, now: SimTime, ru: f64) -> QuotaDecision {
        if !self.enabled {
            // Keep the bucket draining so re-enabling is seamless.
            self.bucket.try_consume(now, ru);
            return QuotaDecision::Admit;
        }
        if self.bucket.try_consume(now, ru) {
            QuotaDecision::Admit
        } else {
            QuotaDecision::Reject
        }
    }
}

/// Meta-server side monitor implementing the asynchronous clawback loop:
/// aggregate per-tenant traffic is observed over a sliding window; while the
/// aggregate exceeds the tenant quota, proxies are directed to revert to their
/// standard quota (boost revoked); once it falls back below, boost is restored.
#[derive(Debug)]
pub struct TenantQuotaMonitor {
    window: SimTime,
    /// Tenant quota in RU/s.
    quotas: HashMap<u32, f64>,
    rates: HashMap<u32, WindowedRate>,
}

impl TenantQuotaMonitor {
    /// A monitor observing traffic over the given sliding window.
    pub fn new(window: SimTime) -> Self {
        Self {
            window,
            quotas: HashMap::new(),
            rates: HashMap::new(),
        }
    }

    /// Register (or update) a tenant's total quota in RU/s.
    pub fn set_tenant_quota(&mut self, tenant: u32, quota_ru_per_sec: f64) {
        self.quotas.insert(tenant, quota_ru_per_sec);
    }

    /// The registered quota for `tenant`, if any.
    pub fn tenant_quota(&self, tenant: u32) -> Option<f64> {
        self.quotas.get(&tenant).copied()
    }

    /// Record `ru` units of admitted traffic for `tenant` at `now` (reported
    /// asynchronously by proxies).
    pub fn record_traffic(&mut self, tenant: u32, now: SimTime, ru: f64) {
        let window = self.window;
        self.rates
            .entry(tenant)
            .or_insert_with(|| WindowedRate::new(window))
            .record(now, ru);
    }

    /// Observed aggregate RU/s for `tenant` over the trailing window.
    pub fn observed_rate(&mut self, tenant: u32, now: SimTime) -> f64 {
        self.rates
            .get_mut(&tenant)
            .map(|r| r.rate_per_sec(now))
            .unwrap_or(0.0)
    }

    /// The directive the meta server issues to the tenant's proxies: `true`
    /// means the 2× boost may stay on, `false` means revert to standard quota.
    pub fn boost_allowed(&mut self, tenant: u32, now: SimTime) -> bool {
        let quota = self.quotas.get(&tenant).copied().unwrap_or(f64::INFINITY);
        self.observed_rate(tenant, now) <= quota
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abase_util::clock::{ms, secs};

    #[test]
    fn proxy_allows_double_when_boosted() {
        let mut p = ProxyQuota::new(100.0, 0);
        assert!(p.is_boosted());
        // Drain the initial burst, then measure steady-state over one second.
        p.admit(0, 200.0);
        let mut admitted = 0.0f64;
        for t in 1..=100 {
            if p.admit(secs(1) / 100 * t, 2.0) == QuotaDecision::Admit {
                admitted += 2.0;
            }
        }
        assert!((admitted - 200.0).abs() <= 4.0, "admitted {admitted}");
    }

    #[test]
    fn proxy_reverts_to_standard_on_clawback() {
        let mut p = ProxyQuota::new(100.0, 0);
        p.set_boost(false, 0);
        while p.admit(0, 1.0) == QuotaDecision::Admit {} // drain the burst
        let mut admitted = 0.0f64;
        for t in 1..=100 {
            if p.admit(secs(1) / 100 * t, 2.0) == QuotaDecision::Admit {
                admitted += 2.0;
            }
        }
        assert!((admitted - 100.0).abs() <= 4.0, "admitted {admitted}");
    }

    #[test]
    fn partition_caps_at_three_times_quota() {
        let mut q = PartitionQuota::new(1000.0, 0);
        // Burst bucket starts full at 3×quota.
        assert_eq!(q.admit(0, 3000.0), QuotaDecision::Admit);
        assert_eq!(q.admit(0, 1.0), QuotaDecision::Reject);
        // Steady state: ~3000 RU/s admitted.
        let mut admitted = 0.0f64;
        for t in 1..=1000 {
            if q.admit(ms(t), 3.5) == QuotaDecision::Admit {
                admitted += 3.5;
            }
        }
        assert!((admitted - 3000.0).abs() < 50.0, "admitted {admitted}");
    }

    #[test]
    fn disabled_partition_quota_admits_everything() {
        let mut q = PartitionQuota::new(10.0, 0);
        q.set_enabled(false);
        for t in 0..100 {
            assert_eq!(q.admit(ms(t), 1000.0), QuotaDecision::Admit);
        }
    }

    #[test]
    fn monitor_revokes_boost_above_quota() {
        let mut m = TenantQuotaMonitor::new(secs(1));
        m.set_tenant_quota(7, 500.0);
        // 300 RU/s: within quota.
        for t in 0..10 {
            m.record_traffic(7, ms(t * 100), 30.0);
        }
        assert!(m.boost_allowed(7, secs(1)));
        // Burst to 2000 RU/s: boost revoked.
        for t in 0..10 {
            m.record_traffic(7, secs(1) + ms(t * 100), 200.0);
        }
        assert!(!m.boost_allowed(7, secs(2)));
        // Traffic stops; after the window empties, boost returns.
        assert!(m.boost_allowed(7, secs(4)));
    }

    #[test]
    fn monitor_unknown_tenant_defaults_to_allowed() {
        let mut m = TenantQuotaMonitor::new(secs(1));
        assert!(m.boost_allowed(99, 0));
    }

    #[test]
    fn settle_deficit_throttles_next_requests() {
        let mut p = ProxyQuota::new(10.0, 0);
        p.set_boost(false, 0);
        p.admit(0, 10.0);
        // The read turned out 10× larger than estimated.
        p.settle(0, 90.0);
        assert_eq!(p.admit(secs(1), 1.0), QuotaDecision::Reject);
        // Deficit (~90) pays back at 10 RU/s.
        assert_eq!(p.admit(secs(11), 1.0), QuotaDecision::Admit);
    }
}
