//! Virtual-time token buckets — the quota enforcement primitive.

use abase_util::clock::SimTime;

/// A token bucket over virtual time.
///
/// Tokens accrue continuously at `rate_per_sec` up to `burst` capacity.
/// `try_consume` either debits the requested amount or rejects atomically, so
/// a burst can momentarily exceed the steady rate by at most `burst` tokens —
/// exactly the slack ABase's proxy uses to absorb sub-second jitter.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec`, holding at most `burst` tokens,
    /// starting full at virtual time `now`.
    ///
    /// # Panics
    /// Panics if `rate_per_sec` is negative or `burst` is non-positive.
    pub fn new(rate_per_sec: f64, burst: f64, now: SimTime) -> Self {
        assert!(rate_per_sec >= 0.0, "rate must be non-negative");
        assert!(burst > 0.0, "burst must be positive");
        Self {
            rate_per_sec,
            burst,
            tokens: burst,
            last_refill: now,
        }
    }

    /// Steady refill rate (tokens per virtual second).
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// Change the refill rate (quota scaling); takes effect from `now`.
    pub fn set_rate(&mut self, rate_per_sec: f64, now: SimTime) {
        assert!(rate_per_sec >= 0.0, "rate must be non-negative");
        self.refill(now);
        self.rate_per_sec = rate_per_sec;
    }

    /// Change the burst capacity; excess stored tokens are clipped.
    pub fn set_burst(&mut self, burst: f64, now: SimTime) {
        assert!(burst > 0.0, "burst must be positive");
        self.refill(now);
        self.burst = burst;
        self.tokens = self.tokens.min(burst);
    }

    /// Tokens available at `now`.
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Attempt to debit `amount` tokens at `now`. Returns `true` on success;
    /// on failure the bucket is left unchanged.
    pub fn try_consume(&mut self, now: SimTime, amount: f64) -> bool {
        self.refill(now);
        if self.tokens >= amount {
            self.tokens -= amount;
            true
        } else {
            false
        }
    }

    /// Debit `amount` unconditionally (may drive the balance negative). Used
    /// when a charge is determined only after execution — e.g. a read whose
    /// actual returned size exceeded the estimate; the deficit throttles
    /// subsequent requests.
    pub fn consume_saturating(&mut self, now: SimTime, amount: f64) {
        self.refill(now);
        self.tokens -= amount;
    }

    fn refill(&mut self, now: SimTime) {
        if now <= self.last_refill {
            return;
        }
        let elapsed_sec = (now - self.last_refill) as f64 / 1_000_000.0;
        self.tokens = (self.tokens + elapsed_sec * self.rate_per_sec).min(self.burst);
        self.last_refill = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abase_util::clock::secs;

    #[test]
    fn starts_full_and_consumes() {
        let mut b = TokenBucket::new(10.0, 100.0, 0);
        assert!(b.try_consume(0, 100.0));
        assert!(!b.try_consume(0, 0.1));
    }

    #[test]
    fn refills_at_rate() {
        let mut b = TokenBucket::new(10.0, 100.0, 0);
        assert!(b.try_consume(0, 100.0));
        // After 5 s, 50 tokens accrued.
        assert!((b.available(secs(5)) - 50.0).abs() < 1e-9);
        assert!(b.try_consume(secs(5), 50.0));
        assert!(!b.try_consume(secs(5), 1.0));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(1000.0, 50.0, 0);
        assert!((b.available(secs(60)) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn failed_consume_leaves_balance() {
        let mut b = TokenBucket::new(0.0, 10.0, 0);
        assert!(!b.try_consume(0, 11.0));
        assert!((b.available(0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn saturating_consume_creates_deficit() {
        let mut b = TokenBucket::new(10.0, 10.0, 0);
        b.consume_saturating(0, 25.0);
        assert!(b.available(0) < 0.0);
        // Deficit of 15 takes 1.5 s to pay back before new work admits.
        assert!(!b.try_consume(secs(1), 0.1));
        assert!(b.try_consume(secs(2), 0.1));
    }

    #[test]
    fn rate_change_takes_effect_forward_only() {
        let mut b = TokenBucket::new(10.0, 1000.0, 0);
        b.try_consume(0, 1000.0);
        b.set_rate(100.0, secs(1)); // first second accrues at 10/s
        let avail = b.available(secs(2)); // second second at 100/s
        assert!((avail - 110.0).abs() < 1e-9, "got {avail}");
    }

    #[test]
    fn burst_shrink_clips_tokens() {
        let mut b = TokenBucket::new(1.0, 100.0, 0);
        b.set_burst(10.0, 0);
        assert!((b.available(0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn time_never_rewinds_refill() {
        let mut b = TokenBucket::new(10.0, 100.0, secs(10));
        b.try_consume(secs(10), 100.0);
        // A stale timestamp must not mint tokens.
        assert_eq!(b.available(secs(5)), 0.0);
    }
}
