//! Normalized Request Units (paper §4.1).
//!
//! RUs quantify "a request's consumption of CPU, memory, and disk I/O" and are
//! both the billing unit and the isolation currency. The cache-aware twist is
//! that a read expected to hit cache is much cheaper than one expected to miss:
//!
//! ```text
//! RU_write = r · S_write / U                      (r replicas, U = 2 KB)
//! RU_read  = E[S_read] · (1 − E[R_hit]) / U       (moving averages, last k)
//! ```
//!
//! Estimated RU is used for *traffic control* (admission); the *charge* is
//! based on the actual size returned and the actual cache outcome. Requests
//! that hit the **proxy** cache are returned without throttling or charges.

use abase_util::stats::MovingAverage;

/// The unit byte size `U`, "empirically set to 2KB".
pub const UNIT_BYTES: usize = 2048;

/// Where a read was ultimately served from — determines its real resource cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Served by the proxy cache: never reached the data node. No charge.
    ProxyCacheHit,
    /// Served by the data-node cache: CPU + memory only, no disk I/O.
    NodeCacheHit,
    /// Served from the storage engine: CPU + memory + disk I/O.
    Miss,
}

/// Tunables for the RU model.
#[derive(Debug, Clone, Copy)]
pub struct RuConfig {
    /// The unit byte size `U` (2 KB in the paper).
    pub unit_bytes: usize,
    /// Window length `k` for the moving-average estimators.
    pub window: usize,
    /// Minimum RU charged for any request that reaches a data node — the pure
    /// CPU/dispatch cost that even a cache hit consumes. (The paper folds this
    /// into "consume only CPU and memory resources"; we make it explicit so a
    /// 100 %-hit tenant still registers non-zero load.)
    pub min_ru: f64,
    /// Fraction of the byte cost charged when the data-node cache serves the
    /// read (memory bandwidth instead of disk I/O).
    pub node_hit_cost_factor: f64,
    /// Prior mean read size (bytes) before any sample is observed.
    pub prior_read_size: f64,
    /// Prior hit ratio before any sample is observed.
    pub prior_hit_ratio: f64,
}

impl Default for RuConfig {
    fn default() -> Self {
        Self {
            unit_bytes: UNIT_BYTES,
            window: 128,
            min_ru: 0.05,
            node_hit_cost_factor: 0.3,
            prior_read_size: UNIT_BYTES as f64,
            prior_hit_ratio: 0.0,
        }
    }
}

/// Per-tenant (or per-table) RU estimator and charger.
#[derive(Debug, Clone)]
pub struct RuEstimator {
    config: RuConfig,
    /// `E[S_read]`: moving average of returned read sizes.
    read_size: MovingAverage,
    /// `E[R_hit]`: moving average of cache-hit indicators (post-proxy).
    hit_ratio: MovingAverage,
    /// Historical hash-table field count, for `HLen`/`HGetAll` estimation.
    hash_len: MovingAverage,
    /// Historical per-field byte size for hash scans.
    hash_field_size: MovingAverage,
}

impl RuEstimator {
    /// An estimator with the given configuration.
    pub fn new(config: RuConfig) -> Self {
        Self {
            read_size: MovingAverage::new(config.window, config.prior_read_size),
            hit_ratio: MovingAverage::new(config.window, config.prior_hit_ratio),
            hash_len: MovingAverage::new(config.window, 8.0),
            hash_field_size: MovingAverage::new(config.window, 64.0),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RuConfig {
        &self.config
    }

    /// RU for a write of `size` bytes replicated `replicas` times: one direct
    /// write plus `r − 1` synchronizations, each costing `S/U` — a total of
    /// `r · S/U`.
    pub fn write_ru(&self, size: usize, replicas: u32) -> f64 {
        let per_replica = (size as f64 / self.config.unit_bytes as f64).max(self.config.min_ru);
        per_replica * replicas as f64
    }

    /// *Estimated* RU of an upcoming read, used for admission control:
    /// `E[S_read] · (1 − E[R_hit]) / U`, floored at the CPU cost.
    pub fn estimate_read_ru(&self) -> f64 {
        let s = self.read_size.mean();
        let h = self.hit_ratio.mean().clamp(0.0, 1.0);
        (s * (1.0 - h) / self.config.unit_bytes as f64).max(self.config.min_ru)
    }

    /// *Actual* RU charged once a read completes, based on the real size
    /// returned and the real cache outcome.
    pub fn charge_read(&self, actual_size: usize, outcome: ReadOutcome) -> f64 {
        let byte_cost = actual_size as f64 / self.config.unit_bytes as f64;
        match outcome {
            ReadOutcome::ProxyCacheHit => 0.0,
            ReadOutcome::NodeCacheHit => {
                (byte_cost * self.config.node_hit_cost_factor).max(self.config.min_ru)
            }
            ReadOutcome::Miss => byte_cost.max(self.config.min_ru),
        }
    }

    /// Record a completed read so the moving averages track the workload.
    /// Proxy-cache hits never reach the estimator (they bypass the node).
    pub fn record_read(&mut self, actual_size: usize, outcome: ReadOutcome) {
        debug_assert!(
            outcome != ReadOutcome::ProxyCacheHit,
            "proxy hits bypass the data node and its estimator"
        );
        self.read_size.record(actual_size as f64);
        self.hit_ratio
            .record(if outcome == ReadOutcome::NodeCacheHit {
                1.0
            } else {
                0.0
            });
    }

    /// Record an observed hash table (field count and mean field size), the
    /// "historical data on the length of the HashSet".
    pub fn record_hash_shape(&mut self, fields: usize, mean_field_bytes: usize) {
        self.hash_len.record(fields as f64);
        self.hash_field_size.record(mean_field_bytes as f64);
    }

    /// Estimated RU for `HLen`: a metadata lookup whose cost scales with the
    /// (historically estimated) table length only logarithmically; dominated
    /// by the dispatch cost for all but enormous tables.
    pub fn estimate_hlen_ru(&self) -> f64 {
        let len = self.hash_len.mean().max(1.0);
        (self.config.min_ru * len.log2().max(1.0)).max(self.config.min_ru)
    }

    /// Estimated RU for `HGetAll`, decomposed as `HLen` followed by a scan of
    /// the estimated `len · field_size` bytes (§4.1), discounted by the
    /// expected hit ratio.
    pub fn estimate_hgetall_ru(&self) -> f64 {
        let scan_bytes = self.hash_len.mean() * self.hash_field_size.mean();
        let h = self.hit_ratio.mean().clamp(0.0, 1.0);
        self.estimate_hlen_ru() + (scan_bytes * (1.0 - h) / self.config.unit_bytes as f64).max(0.0)
    }

    /// Current `E[S_read]` (bytes).
    pub fn expected_read_size(&self) -> f64 {
        self.read_size.mean()
    }

    /// Current `E[R_hit]`.
    pub fn expected_hit_ratio(&self) -> f64 {
        self.hit_ratio.mean().clamp(0.0, 1.0)
    }
}

impl Default for RuEstimator {
    fn default() -> Self {
        Self::new(RuConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_ru_scales_with_size_and_replicas() {
        let e = RuEstimator::default();
        // 2 KB write, 3 replicas → 3 RU.
        assert!((e.write_ru(2048, 3) - 3.0).abs() < 1e-12);
        // 1 KB write, 1 replica → 0.5 RU.
        assert!((e.write_ru(1024, 1) - 0.5).abs() < 1e-12);
        // Tiny writes floor at min_ru per replica.
        assert!((e.write_ru(1, 2) - 2.0 * 0.05).abs() < 1e-12);
    }

    #[test]
    fn read_estimate_tracks_hit_ratio() {
        let mut e = RuEstimator::default();
        // 4 KB reads, all missing: estimate → 2 RU.
        for _ in 0..50 {
            e.record_read(4096, ReadOutcome::Miss);
        }
        assert!((e.estimate_read_ru() - 2.0).abs() < 0.01);
        // Now the same reads always hit the node cache: estimate decays
        // toward the floor as E[R_hit] → 1.
        for _ in 0..200 {
            e.record_read(4096, ReadOutcome::NodeCacheHit);
        }
        assert!(e.estimate_read_ru() < 0.1, "got {}", e.estimate_read_ru());
        assert!(e.expected_hit_ratio() > 0.95);
    }

    #[test]
    fn charges_differ_by_outcome() {
        let e = RuEstimator::default();
        let miss = e.charge_read(4096, ReadOutcome::Miss);
        let hit = e.charge_read(4096, ReadOutcome::NodeCacheHit);
        let proxy = e.charge_read(4096, ReadOutcome::ProxyCacheHit);
        assert!((miss - 2.0).abs() < 1e-12);
        assert!((hit - 0.6).abs() < 1e-12); // 0.3 × 2 RU
        assert_eq!(proxy, 0.0);
        assert!(hit < miss);
    }

    #[test]
    fn cold_estimator_uses_priors() {
        let e = RuEstimator::default();
        // Prior: 2 KB reads, 0 % hit → 1 RU.
        assert!((e.estimate_read_ru() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hgetall_decomposes_into_hlen_plus_scan() {
        let mut e = RuEstimator::default();
        for _ in 0..20 {
            e.record_hash_shape(100, 200); // 100 fields × 200 B = 20 000 B scans
        }
        let hlen = e.estimate_hlen_ru();
        let hgetall = e.estimate_hgetall_ru();
        assert!(hgetall > hlen, "scan must add cost");
        // Scan bytes 20 000 / 2048 ≈ 9.77 RU at 0 % hit.
        assert!((hgetall - hlen - 9.765625).abs() < 0.01);
    }

    #[test]
    fn hgetall_scan_discounted_by_hit_ratio() {
        let mut e = RuEstimator::default();
        for _ in 0..20 {
            e.record_hash_shape(100, 200);
            e.record_read(2048, ReadOutcome::NodeCacheHit);
        }
        let discounted = e.estimate_hgetall_ru();
        assert!(
            discounted < 1.0,
            "fully-hitting scan should be nearly free, got {discounted}"
        );
    }

    #[test]
    fn hlen_grows_slowly_with_table_size() {
        let mut small = RuEstimator::default();
        let mut big = RuEstimator::default();
        for _ in 0..20 {
            small.record_hash_shape(4, 64);
            big.record_hash_shape(1 << 20, 64);
        }
        assert!(big.estimate_hlen_ru() > small.estimate_hlen_ru());
        assert!(big.estimate_hlen_ru() < 2.0, "HLen is metadata-cheap");
    }
}
