//! # abase-quota
//!
//! The cache-aware Request Unit (RU) model and the hierarchical request
//! restriction of ABase (paper §4.1–4.2).
//!
//! * [`ru`] — RU estimation: `RU_write = r · S/U`, `RU_read = E[S_read] ·
//!   (1 − E[R_hit]) / U` with moving-average estimators, plus the decomposition
//!   of complex operations (`HLen`, `HGetAll`) into estimable stages.
//! * [`bucket`] — virtual-time token buckets, the enforcement primitive.
//! * [`admission`] — the two restriction levels: per-proxy quotas with
//!   asynchronous clawback by the meta server, and per-partition quotas capped
//!   at 3× the partition's share.

#![deny(missing_docs)]

pub mod admission;
pub mod bucket;
pub mod ru;

pub use admission::{PartitionQuota, ProxyQuota, QuotaDecision, TenantQuotaMonitor};
pub use bucket::TokenBucket;
pub use ru::{RuConfig, RuEstimator, UNIT_BYTES};
