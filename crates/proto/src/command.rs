//! The typed ABase command set.
//!
//! String commands plus the hash commands whose RU estimation the paper treats
//! specially (§4.1): `HLEN` has an unpredictable scan size estimated from
//! history, and `HGETALL` decomposes into `HLen` followed by a scan.

use crate::resp::RespValue;
use bytes::Bytes;
use std::fmt;

/// A parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `GET key`
    Get {
        /// Key to read.
        key: Bytes,
    },
    /// `SET key value` with optional `EX seconds`.
    Set {
        /// Key to write.
        key: Bytes,
        /// Value to store.
        value: Bytes,
        /// Relative TTL in seconds, if given (`SET … EX n` / `SETEX`).
        ttl_secs: Option<u64>,
    },
    /// `DEL key [key …]`
    Del {
        /// Keys to delete.
        keys: Vec<Bytes>,
    },
    /// `EXISTS key`
    Exists {
        /// Key to probe.
        key: Bytes,
    },
    /// `EXPIRE key seconds`
    Expire {
        /// Key to re-arm.
        key: Bytes,
        /// Relative TTL in seconds.
        secs: u64,
    },
    /// `HSET key field value [field value …]`
    HSet {
        /// Hash key.
        key: Bytes,
        /// Field/value pairs.
        pairs: Vec<(Bytes, Bytes)>,
    },
    /// `HGET key field`
    HGet {
        /// Hash key.
        key: Bytes,
        /// Field to read.
        field: Bytes,
    },
    /// `HDEL key field [field …]`
    HDel {
        /// Hash key.
        key: Bytes,
        /// Fields to remove.
        fields: Vec<Bytes>,
    },
    /// `HLEN key` — a complex read: scan size unknown a priori.
    HLen {
        /// Hash key.
        key: Bytes,
    },
    /// `HGETALL key` — a complex read: `HLen` + scan.
    HGetAll {
        /// Hash key.
        key: Bytes,
    },
    /// `WAIT numreplicas timeout-ms` — block until that many replicas have
    /// acknowledged the *connection's* last write (Redis replication
    /// semantics; the reply is the number of replicas that actually have —
    /// a session that never wrote has nothing to fence on and gets the
    /// current ack count immediately).
    Wait {
        /// Follower acknowledgements required.
        numreplicas: u64,
        /// Wait budget in milliseconds. `0` means "no client-imposed limit":
        /// the server substitutes its own max-wait cap (it never blocks a
        /// connection forever on a dead follower).
        timeout_ms: u64,
    },
    /// `REPLCONF key value [key value …]` — replication handshake chatter
    /// (`listening-port`, `replica-id`, `ack <lsn>`). Accepted and
    /// acknowledged; on a replica connection, `ack` feeds the leader's
    /// per-follower acked-LSN accounting.
    ReplConf {
        /// Key/value option pairs as sent.
        pairs: Vec<(Bytes, Bytes)>,
    },
    /// `PSYNC segment offset` — a follower asks the leader to stream framed
    /// binlog records starting at `(segment, offset)` of the leader's WAL.
    /// `PSYNC ? -1` requests a full resynchronization (the follower has no
    /// usable position). The leader replies `+CONTINUE` and streams, or
    /// `+FULLRESYNC` when the asked position fell off retention — the
    /// follower then pulls a checkpoint and re-issues PSYNC at its edge.
    PSync {
        /// Resume position in the leader's WAL; `None` asks for a full
        /// resync (`PSYNC ? -1`).
        position: Option<(u64, u64)>,
    },
    /// `CONSISTENCY [level]` — set the connection's read-consistency level
    /// (`eventual`, `readyourwrites`/`ryw`, `leader`); without an argument,
    /// report the current level. Routed reads at `eventual`/`ryw` may be
    /// served by follower replicas.
    Consistency {
        /// Requested level name, when setting.
        level: Option<Bytes>,
    },
    /// `INFO [section]` — human-readable server status, redis-style: named
    /// sections (`server`, `replication`, `keyspace`, `stats`, `latency`) of
    /// `key:value` lines. Without an argument every section is returned.
    Info {
        /// Requested section name, when given.
        section: Option<Bytes>,
    },
    /// `SLOWLOG GET [count] | RESET | LEN` — query the server's ring of
    /// operations that exceeded the slow-op threshold.
    Slowlog {
        /// Which subcommand was requested.
        sub: SlowlogSub,
    },
    /// `METRICS` — dump the whole metrics registry as Prometheus text
    /// exposition (one bulk string), for scraping.
    Metrics,
    /// `PING`
    Ping,
}

/// The `SLOWLOG` subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowlogSub {
    /// `SLOWLOG GET [count]` — most recent entries, newest first.
    Get {
        /// Entry cap; server default when absent.
        count: Option<u64>,
    },
    /// `SLOWLOG RESET` — drop every captured entry.
    Reset,
    /// `SLOWLOG LEN` — number of captured entries.
    Len,
}

/// Coarse classification used by quotas and the WFQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// Point read with predictable shape.
    SimpleRead,
    /// Multi-stage read with history-estimated cost (`HLEN`, `HGETALL`).
    ComplexRead,
    /// Any mutation.
    Write,
    /// Control-plane chatter (`PING`).
    Control,
}

/// Command parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCommandError(pub String);

impl fmt::Display for ParseCommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad command: {}", self.0)
    }
}

impl std::error::Error for ParseCommandError {}

fn err(msg: impl Into<String>) -> ParseCommandError {
    ParseCommandError(msg.into())
}

fn as_bulk(v: &RespValue) -> Result<Bytes, ParseCommandError> {
    match v {
        RespValue::Bulk(Some(b)) => Ok(b.clone()),
        other => Err(err(format!("expected bulk string, got {other:?}"))),
    }
}

fn as_u64(v: &RespValue) -> Result<u64, ParseCommandError> {
    let raw = as_bulk(v)?;
    std::str::from_utf8(&raw)
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| err("expected unsigned integer"))
}

impl Command {
    /// Parse a client RESP array (`*N` of bulk strings) into a command.
    pub fn from_resp(value: &RespValue) -> Result<Command, ParseCommandError> {
        let RespValue::Array(Some(items)) = value else {
            return Err(err("commands must be RESP arrays"));
        };
        if items.is_empty() {
            return Err(err("empty command array"));
        }
        let name_raw = as_bulk(&items[0])?;
        let name = std::str::from_utf8(&name_raw)
            .map_err(|_| err("command name must be UTF-8"))?
            .to_ascii_uppercase();
        let args = &items[1..];
        let want = |n: usize| -> Result<(), ParseCommandError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(err(format!(
                    "{name} expects {n} arguments, got {}",
                    args.len()
                )))
            }
        };
        match name.as_str() {
            "PING" => {
                want(0)?;
                Ok(Command::Ping)
            }
            "GET" => {
                want(1)?;
                Ok(Command::Get {
                    key: as_bulk(&args[0])?,
                })
            }
            "SET" => {
                if args.len() == 2 {
                    Ok(Command::Set {
                        key: as_bulk(&args[0])?,
                        value: as_bulk(&args[1])?,
                        ttl_secs: None,
                    })
                } else if args.len() == 4 {
                    let opt = as_bulk(&args[2])?;
                    if !opt.eq_ignore_ascii_case(b"EX") {
                        return Err(err("SET only supports the EX option"));
                    }
                    Ok(Command::Set {
                        key: as_bulk(&args[0])?,
                        value: as_bulk(&args[1])?,
                        ttl_secs: Some(as_u64(&args[3])?),
                    })
                } else {
                    Err(err("SET expects: key value [EX seconds]"))
                }
            }
            "SETEX" => {
                want(3)?;
                Ok(Command::Set {
                    key: as_bulk(&args[0])?,
                    value: as_bulk(&args[2])?,
                    ttl_secs: Some(as_u64(&args[1])?),
                })
            }
            "DEL" => {
                if args.is_empty() {
                    return Err(err("DEL expects at least one key"));
                }
                Ok(Command::Del {
                    keys: args.iter().map(as_bulk).collect::<Result<_, _>>()?,
                })
            }
            "EXISTS" => {
                want(1)?;
                Ok(Command::Exists {
                    key: as_bulk(&args[0])?,
                })
            }
            "EXPIRE" => {
                want(2)?;
                Ok(Command::Expire {
                    key: as_bulk(&args[0])?,
                    secs: as_u64(&args[1])?,
                })
            }
            "HSET" => {
                if args.len() < 3 || args.len() % 2 == 0 {
                    return Err(err("HSET expects key followed by field/value pairs"));
                }
                let key = as_bulk(&args[0])?;
                let mut pairs = Vec::with_capacity((args.len() - 1) / 2);
                for pair in args[1..].chunks_exact(2) {
                    pairs.push((as_bulk(&pair[0])?, as_bulk(&pair[1])?));
                }
                Ok(Command::HSet { key, pairs })
            }
            "HGET" => {
                want(2)?;
                Ok(Command::HGet {
                    key: as_bulk(&args[0])?,
                    field: as_bulk(&args[1])?,
                })
            }
            "HDEL" => {
                if args.len() < 2 {
                    return Err(err("HDEL expects key and at least one field"));
                }
                Ok(Command::HDel {
                    key: as_bulk(&args[0])?,
                    fields: args[1..].iter().map(as_bulk).collect::<Result<_, _>>()?,
                })
            }
            "HLEN" => {
                want(1)?;
                Ok(Command::HLen {
                    key: as_bulk(&args[0])?,
                })
            }
            "HGETALL" => {
                want(1)?;
                Ok(Command::HGetAll {
                    key: as_bulk(&args[0])?,
                })
            }
            "WAIT" => {
                want(2)?;
                Ok(Command::Wait {
                    numreplicas: as_u64(&args[0])?,
                    timeout_ms: as_u64(&args[1])?,
                })
            }
            "REPLCONF" => {
                if args.is_empty() || args.len() % 2 != 0 {
                    return Err(err("REPLCONF expects key/value pairs"));
                }
                let mut pairs = Vec::with_capacity(args.len() / 2);
                for pair in args.chunks_exact(2) {
                    pairs.push((as_bulk(&pair[0])?, as_bulk(&pair[1])?));
                }
                Ok(Command::ReplConf { pairs })
            }
            "PSYNC" => {
                want(2)?;
                let seg = as_bulk(&args[0])?;
                let off = as_bulk(&args[1])?;
                if seg.as_ref() == b"?" || off.as_ref() == b"-1" {
                    return Ok(Command::PSync { position: None });
                }
                let parse_u64 = |raw: &Bytes| {
                    std::str::from_utf8(raw)
                        .ok()
                        .and_then(|s| s.parse::<u64>().ok())
                        .ok_or_else(|| err("PSYNC expects `segment offset` or `? -1`"))
                };
                Ok(Command::PSync {
                    position: Some((parse_u64(&seg)?, parse_u64(&off)?)),
                })
            }
            "CONSISTENCY" => {
                if args.len() > 1 {
                    return Err(err("CONSISTENCY expects at most one level argument"));
                }
                Ok(Command::Consistency {
                    level: args.first().map(as_bulk).transpose()?,
                })
            }
            "INFO" => {
                if args.len() > 1 {
                    return Err(err("INFO expects at most one section argument"));
                }
                Ok(Command::Info {
                    section: args.first().map(as_bulk).transpose()?,
                })
            }
            "SLOWLOG" => {
                let Some(sub_raw) = args.first() else {
                    return Err(err("SLOWLOG expects GET|RESET|LEN"));
                };
                let sub_name = as_bulk(sub_raw)?.to_ascii_uppercase();
                let sub = match sub_name.as_slice() {
                    b"GET" => {
                        if args.len() > 2 {
                            return Err(err("SLOWLOG GET expects at most one count"));
                        }
                        SlowlogSub::Get {
                            count: args.get(1).map(as_u64).transpose()?,
                        }
                    }
                    b"RESET" => {
                        want(1)?;
                        SlowlogSub::Reset
                    }
                    b"LEN" => {
                        want(1)?;
                        SlowlogSub::Len
                    }
                    _ => return Err(err("SLOWLOG expects GET|RESET|LEN")),
                };
                Ok(Command::Slowlog { sub })
            }
            "METRICS" => {
                want(0)?;
                Ok(Command::Metrics)
            }
            other => Err(err(format!("unknown command {other}"))),
        }
    }

    /// Serialize the command back to its RESP array form.
    pub fn to_resp(&self) -> RespValue {
        let mut items: Vec<RespValue> = Vec::new();
        let mut push = |s: &[u8]| items.push(RespValue::bulk(Bytes::copy_from_slice(s)));
        match self {
            Command::Ping => push(b"PING"),
            Command::Get { key } => {
                push(b"GET");
                push(key);
            }
            Command::Set {
                key,
                value,
                ttl_secs,
            } => {
                push(b"SET");
                push(key);
                push(value);
                if let Some(ttl) = ttl_secs {
                    push(b"EX");
                    push(ttl.to_string().as_bytes());
                }
            }
            Command::Del { keys } => {
                push(b"DEL");
                for k in keys {
                    push(k);
                }
            }
            Command::Exists { key } => {
                push(b"EXISTS");
                push(key);
            }
            Command::Expire { key, secs } => {
                push(b"EXPIRE");
                push(key);
                push(secs.to_string().as_bytes());
            }
            Command::HSet { key, pairs } => {
                push(b"HSET");
                push(key);
                for (f, v) in pairs {
                    push(f);
                    push(v);
                }
            }
            Command::HGet { key, field } => {
                push(b"HGET");
                push(key);
                push(field);
            }
            Command::HDel { key, fields } => {
                push(b"HDEL");
                push(key);
                for f in fields {
                    push(f);
                }
            }
            Command::HLen { key } => {
                push(b"HLEN");
                push(key);
            }
            Command::HGetAll { key } => {
                push(b"HGETALL");
                push(key);
            }
            Command::Wait {
                numreplicas,
                timeout_ms,
            } => {
                push(b"WAIT");
                push(numreplicas.to_string().as_bytes());
                push(timeout_ms.to_string().as_bytes());
            }
            Command::ReplConf { pairs } => {
                push(b"REPLCONF");
                for (k, v) in pairs {
                    push(k);
                    push(v);
                }
            }
            Command::PSync { position } => {
                push(b"PSYNC");
                match position {
                    Some((seg, off)) => {
                        push(seg.to_string().as_bytes());
                        push(off.to_string().as_bytes());
                    }
                    None => {
                        push(b"?");
                        push(b"-1");
                    }
                }
            }
            Command::Consistency { level } => {
                push(b"CONSISTENCY");
                if let Some(level) = level {
                    push(level);
                }
            }
            Command::Info { section } => {
                push(b"INFO");
                if let Some(section) = section {
                    push(section);
                }
            }
            Command::Slowlog { sub } => {
                push(b"SLOWLOG");
                match sub {
                    SlowlogSub::Get { count } => {
                        push(b"GET");
                        if let Some(count) = count {
                            push(count.to_string().as_bytes());
                        }
                    }
                    SlowlogSub::Reset => push(b"RESET"),
                    SlowlogSub::Len => push(b"LEN"),
                }
            }
            Command::Metrics => push(b"METRICS"),
        }
        RespValue::array(items)
    }

    /// The canonical uppercase command name (the metrics `command` label).
    pub fn name(&self) -> &'static str {
        match self {
            Command::Get { .. } => "GET",
            Command::Set { .. } => "SET",
            Command::Del { .. } => "DEL",
            Command::Exists { .. } => "EXISTS",
            Command::Expire { .. } => "EXPIRE",
            Command::HSet { .. } => "HSET",
            Command::HGet { .. } => "HGET",
            Command::HDel { .. } => "HDEL",
            Command::HLen { .. } => "HLEN",
            Command::HGetAll { .. } => "HGETALL",
            Command::Wait { .. } => "WAIT",
            Command::ReplConf { .. } => "REPLCONF",
            Command::PSync { .. } => "PSYNC",
            Command::Consistency { .. } => "CONSISTENCY",
            Command::Info { .. } => "INFO",
            Command::Slowlog { .. } => "SLOWLOG",
            Command::Metrics => "METRICS",
            Command::Ping => "PING",
        }
    }

    /// Coarse classification for quotas and queue selection.
    pub fn kind(&self) -> CommandKind {
        match self {
            Command::Get { .. } | Command::Exists { .. } | Command::HGet { .. } => {
                CommandKind::SimpleRead
            }
            Command::HLen { .. } | Command::HGetAll { .. } => CommandKind::ComplexRead,
            Command::Set { .. }
            | Command::Del { .. }
            | Command::Expire { .. }
            | Command::HSet { .. }
            | Command::HDel { .. } => CommandKind::Write,
            Command::Ping
            | Command::Wait { .. }
            | Command::ReplConf { .. }
            | Command::PSync { .. }
            | Command::Consistency { .. }
            | Command::Info { .. }
            | Command::Slowlog { .. }
            | Command::Metrics => CommandKind::Control,
        }
    }

    /// True for mutations.
    pub fn is_write(&self) -> bool {
        self.kind() == CommandKind::Write
    }

    /// The primary key the command routes by (None for `PING`).
    pub fn routing_key(&self) -> Option<&Bytes> {
        match self {
            Command::Get { key }
            | Command::Exists { key }
            | Command::Expire { key, .. }
            | Command::Set { key, .. }
            | Command::HSet { key, .. }
            | Command::HGet { key, .. }
            | Command::HDel { key, .. }
            | Command::HLen { key }
            | Command::HGetAll { key } => Some(key),
            Command::Del { keys } => keys.first(),
            Command::Ping
            | Command::Wait { .. }
            | Command::ReplConf { .. }
            | Command::PSync { .. }
            | Command::Consistency { .. }
            | Command::Info { .. }
            | Command::Slowlog { .. }
            | Command::Metrics => None,
        }
    }

    /// Build the `REPLCONF ack <lsn>` frame a follower sends after applying
    /// shipped records.
    pub fn replconf_ack(lsn: u64) -> Command {
        Command::ReplConf {
            pairs: vec![(
                Bytes::copy_from_slice(b"ack"),
                Bytes::copy_from_slice(lsn.to_string().as_bytes()),
            )],
        }
    }

    /// The acked LSN carried by a `REPLCONF ack <lsn>` frame, if this is one.
    pub fn replconf_ack_lsn(&self) -> Option<u64> {
        let Command::ReplConf { pairs } = self else {
            return None;
        };
        pairs.iter().find_map(|(k, v)| {
            if k.eq_ignore_ascii_case(b"ack") {
                std::str::from_utf8(v).ok().and_then(|s| s.parse().ok())
            } else {
                None
            }
        })
    }

    /// The value of a named `REPLCONF` option (`listening-port`,
    /// `replica-id`), parsed as an unsigned integer.
    pub fn replconf_option(&self, name: &str) -> Option<u64> {
        let Command::ReplConf { pairs } = self else {
            return None;
        };
        pairs.iter().find_map(|(k, v)| {
            if k.eq_ignore_ascii_case(name.as_bytes()) {
                std::str::from_utf8(v).ok().and_then(|s| s.parse().ok())
            } else {
                None
            }
        })
    }

    /// Payload bytes carried by the request (for write sizing / size class).
    pub fn payload_size(&self) -> usize {
        match self {
            Command::Set { key, value, .. } => key.len() + value.len(),
            Command::HSet { key, pairs } => {
                key.len() + pairs.iter().map(|(f, v)| f.len() + v.len()).sum::<usize>()
            }
            Command::Del { keys } => keys.iter().map(Bytes::len).sum(),
            Command::HDel { key, fields } => {
                key.len() + fields.iter().map(Bytes::len).sum::<usize>()
            }
            Command::Get { key }
            | Command::Exists { key }
            | Command::Expire { key, .. }
            | Command::HGet { key, .. }
            | Command::HLen { key }
            | Command::HGetAll { key } => key.len(),
            Command::ReplConf { pairs } => {
                pairs.iter().map(|(k, v)| k.len() + v.len()).sum::<usize>()
            }
            Command::Consistency { level } => level.as_ref().map(Bytes::len).unwrap_or(0),
            Command::Info { section } => section.as_ref().map(Bytes::len).unwrap_or(0),
            Command::Ping
            | Command::Wait { .. }
            | Command::PSync { .. }
            | Command::Slowlog { .. }
            | Command::Metrics => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<Command, ParseCommandError> {
        let items = parts
            .iter()
            .map(|p| RespValue::bulk(Bytes::copy_from_slice(p.as_bytes())))
            .collect();
        Command::from_resp(&RespValue::array(items))
    }

    #[test]
    fn parses_string_commands() {
        assert_eq!(
            parse(&["GET", "k"]).unwrap(),
            Command::Get { key: "k".into() }
        );
        assert_eq!(
            parse(&["set", "k", "v"]).unwrap(),
            Command::Set {
                key: "k".into(),
                value: "v".into(),
                ttl_secs: None
            }
        );
        assert_eq!(
            parse(&["SET", "k", "v", "EX", "30"]).unwrap(),
            Command::Set {
                key: "k".into(),
                value: "v".into(),
                ttl_secs: Some(30)
            }
        );
        assert_eq!(
            parse(&["SETEX", "k", "60", "v"]).unwrap(),
            Command::Set {
                key: "k".into(),
                value: "v".into(),
                ttl_secs: Some(60)
            }
        );
    }

    #[test]
    fn parses_hash_commands() {
        assert_eq!(
            parse(&["HSET", "h", "f1", "v1", "f2", "v2"]).unwrap(),
            Command::HSet {
                key: "h".into(),
                pairs: vec![("f1".into(), "v1".into()), ("f2".into(), "v2".into())]
            }
        );
        assert_eq!(
            parse(&["HGETALL", "h"]).unwrap(),
            Command::HGetAll { key: "h".into() }
        );
        assert_eq!(
            parse(&["HLEN", "h"]).unwrap(),
            Command::HLen { key: "h".into() }
        );
    }

    #[test]
    fn rejects_malformed_commands() {
        assert!(parse(&["GET"]).is_err());
        assert!(parse(&["SET", "k"]).is_err());
        assert!(parse(&["HSET", "h", "f1"]).is_err());
        assert!(parse(&["EXPIRE", "k", "soon"]).is_err());
        assert!(parse(&["NOSUCH", "x"]).is_err());
        assert!(Command::from_resp(&RespValue::Integer(1)).is_err());
    }

    #[test]
    fn resp_roundtrip() {
        let cmds = vec![
            Command::Get { key: "k".into() },
            Command::Set {
                key: "k".into(),
                value: "v".into(),
                ttl_secs: Some(5),
            },
            Command::Del {
                keys: vec!["a".into(), "b".into()],
            },
            Command::HSet {
                key: "h".into(),
                pairs: vec![("f".into(), "v".into())],
            },
            Command::HGetAll { key: "h".into() },
            Command::Ping,
        ];
        for cmd in cmds {
            let round = Command::from_resp(&cmd.to_resp()).unwrap();
            assert_eq!(round, cmd);
        }
    }

    #[test]
    fn parses_consistency_command() {
        assert_eq!(
            parse(&["CONSISTENCY", "eventual"]).unwrap(),
            Command::Consistency {
                level: Some("eventual".into())
            }
        );
        assert_eq!(
            parse(&["consistency"]).unwrap(),
            Command::Consistency { level: None }
        );
        assert!(parse(&["CONSISTENCY", "a", "b"]).is_err());
        let cmd = parse(&["CONSISTENCY", "ryw"]).unwrap();
        assert_eq!(cmd.kind(), CommandKind::Control);
        assert_eq!(cmd.routing_key(), None);
        assert_eq!(Command::from_resp(&cmd.to_resp()).unwrap(), cmd);
    }

    #[test]
    fn parses_psync_and_replconf_ack() {
        assert_eq!(
            parse(&["PSYNC", "3", "128"]).unwrap(),
            Command::PSync {
                position: Some((3, 128))
            }
        );
        assert_eq!(
            parse(&["psync", "?", "-1"]).unwrap(),
            Command::PSync { position: None }
        );
        assert!(parse(&["PSYNC", "3"]).is_err());
        assert!(parse(&["PSYNC", "x", "y"]).is_err());
        for cmd in [
            Command::PSync {
                position: Some((7, 42)),
            },
            Command::PSync { position: None },
        ] {
            assert_eq!(Command::from_resp(&cmd.to_resp()).unwrap(), cmd);
            assert_eq!(cmd.kind(), CommandKind::Control);
            assert_eq!(cmd.routing_key(), None);
        }
        let ack = Command::replconf_ack(99);
        assert_eq!(ack.replconf_ack_lsn(), Some(99));
        assert_eq!(Command::from_resp(&ack.to_resp()).unwrap(), ack);
        let hs = parse(&["REPLCONF", "listening-port", "6380", "replica-id", "7"]).unwrap();
        assert_eq!(hs.replconf_option("listening-port"), Some(6380));
        assert_eq!(hs.replconf_option("replica-id"), Some(7));
        assert_eq!(hs.replconf_ack_lsn(), None);
    }

    #[test]
    fn parses_observability_commands() {
        assert_eq!(parse(&["INFO"]).unwrap(), Command::Info { section: None });
        assert_eq!(
            parse(&["info", "replication"]).unwrap(),
            Command::Info {
                section: Some("replication".into())
            }
        );
        assert!(parse(&["INFO", "a", "b"]).is_err());
        assert_eq!(
            parse(&["SLOWLOG", "GET"]).unwrap(),
            Command::Slowlog {
                sub: SlowlogSub::Get { count: None }
            }
        );
        assert_eq!(
            parse(&["slowlog", "get", "5"]).unwrap(),
            Command::Slowlog {
                sub: SlowlogSub::Get { count: Some(5) }
            }
        );
        assert_eq!(
            parse(&["SLOWLOG", "RESET"]).unwrap(),
            Command::Slowlog {
                sub: SlowlogSub::Reset
            }
        );
        assert_eq!(
            parse(&["SLOWLOG", "len"]).unwrap(),
            Command::Slowlog {
                sub: SlowlogSub::Len
            }
        );
        assert!(parse(&["SLOWLOG"]).is_err());
        assert!(parse(&["SLOWLOG", "TRUNCATE"]).is_err());
        assert!(parse(&["SLOWLOG", "RESET", "1"]).is_err());
        assert_eq!(parse(&["METRICS"]).unwrap(), Command::Metrics);
        assert!(parse(&["METRICS", "x"]).is_err());
        for cmd in [
            Command::Info {
                section: Some("stats".into()),
            },
            Command::Slowlog {
                sub: SlowlogSub::Get { count: Some(3) },
            },
            Command::Slowlog {
                sub: SlowlogSub::Len,
            },
            Command::Metrics,
        ] {
            assert_eq!(Command::from_resp(&cmd.to_resp()).unwrap(), cmd);
            assert_eq!(cmd.kind(), CommandKind::Control);
            assert_eq!(cmd.routing_key(), None);
        }
    }

    #[test]
    fn names_match_wire_spelling() {
        for (cmd, want) in [
            (parse(&["GET", "k"]).unwrap(), "GET"),
            (parse(&["set", "k", "v"]).unwrap(), "SET"),
            (parse(&["hgetall", "h"]).unwrap(), "HGETALL"),
            (parse(&["INFO"]).unwrap(), "INFO"),
            (parse(&["SLOWLOG", "LEN"]).unwrap(), "SLOWLOG"),
            (parse(&["METRICS"]).unwrap(), "METRICS"),
            (parse(&["PING"]).unwrap(), "PING"),
        ] {
            assert_eq!(cmd.name(), want);
        }
    }

    #[test]
    fn classification() {
        assert_eq!(
            parse(&["GET", "k"]).unwrap().kind(),
            CommandKind::SimpleRead
        );
        assert_eq!(
            parse(&["HGETALL", "h"]).unwrap().kind(),
            CommandKind::ComplexRead
        );
        assert_eq!(
            parse(&["SET", "k", "v"]).unwrap().kind(),
            CommandKind::Write
        );
        assert!(parse(&["DEL", "k"]).unwrap().is_write());
        assert_eq!(parse(&["PING"]).unwrap().kind(), CommandKind::Control);
    }

    #[test]
    fn routing_key_and_sizes() {
        let set = parse(&["SET", "key", "0123456789"]).unwrap();
        assert_eq!(set.routing_key().unwrap(), &Bytes::from("key"));
        assert_eq!(set.payload_size(), 13);
        assert_eq!(parse(&["PING"]).unwrap().routing_key(), None);
        let del = parse(&["DEL", "a", "b"]).unwrap();
        assert_eq!(del.routing_key().unwrap(), &Bytes::from("a"));
    }
}
