//! RESP2 (REdis Serialization Protocol) values.
//!
//! The five RESP2 types with an incremental parser: `parse` returns
//! `Ok(None)` on incomplete input so a network layer can accumulate bytes and
//! retry, and `Err` only on genuinely malformed frames.

use bytes::Bytes;
use std::fmt;

/// A RESP2 protocol value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RespValue {
    /// `+OK\r\n`
    Simple(String),
    /// `-ERR message\r\n`
    Error(String),
    /// `:42\r\n`
    Integer(i64),
    /// `$5\r\nhello\r\n`; `None` is the null bulk string `$-1\r\n`.
    Bulk(Option<Bytes>),
    /// `*2\r\n...`; `None` is the null array `*-1\r\n`.
    Array(Option<Vec<RespValue>>),
}

/// Why a frame failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Unknown type byte.
    BadType(u8),
    /// A length or integer field did not parse.
    BadInteger,
    /// Line framing (`\r\n`) violated.
    BadFraming,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadType(b) => write!(f, "unknown RESP type byte 0x{b:02x}"),
            ParseError::BadInteger => write!(f, "malformed RESP integer"),
            ParseError::BadFraming => write!(f, "malformed RESP framing"),
        }
    }
}

impl std::error::Error for ParseError {}

impl RespValue {
    /// Shorthand for a non-null bulk string.
    pub fn bulk(data: impl Into<Bytes>) -> Self {
        RespValue::Bulk(Some(data.into()))
    }

    /// Shorthand for a non-null array.
    pub fn array(items: Vec<RespValue>) -> Self {
        RespValue::Array(Some(items))
    }

    /// The conventional OK reply.
    pub fn ok() -> Self {
        RespValue::Simple("OK".to_string())
    }

    /// Serialize into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RespValue::Simple(s) => {
                out.push(b'+');
                out.extend_from_slice(s.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Error(s) => {
                out.push(b'-');
                out.extend_from_slice(s.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Integer(i) => {
                out.push(b':');
                out.extend_from_slice(i.to_string().as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Bulk(None) => out.extend_from_slice(b"$-1\r\n"),
            RespValue::Bulk(Some(data)) => {
                out.push(b'$');
                out.extend_from_slice(data.len().to_string().as_bytes());
                out.extend_from_slice(b"\r\n");
                out.extend_from_slice(data);
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Array(None) => out.extend_from_slice(b"*-1\r\n"),
            RespValue::Array(Some(items)) => {
                out.push(b'*');
                out.extend_from_slice(items.len().to_string().as_bytes());
                out.extend_from_slice(b"\r\n");
                for item in items {
                    item.encode(out);
                }
            }
        }
    }

    /// Serialize into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Parse one value from the head of `input`.
    ///
    /// Returns `Ok(Some((value, consumed)))` on success, `Ok(None)` when the
    /// input is a valid prefix of a frame (read more bytes), or `Err` when the
    /// input can never become a valid frame.
    pub fn parse(input: &[u8]) -> Result<Option<(RespValue, usize)>, ParseError> {
        let Some(&type_byte) = input.first() else {
            return Ok(None);
        };
        match type_byte {
            b'+' | b'-' | b':' => {
                let Some((line, consumed)) = read_line(&input[1..]) else {
                    return Ok(None);
                };
                let total = 1 + consumed;
                let text = std::str::from_utf8(line).map_err(|_| ParseError::BadFraming)?;
                let value = match type_byte {
                    b'+' => RespValue::Simple(text.to_string()),
                    b'-' => RespValue::Error(text.to_string()),
                    _ => {
                        RespValue::Integer(text.parse::<i64>().map_err(|_| ParseError::BadInteger)?)
                    }
                };
                Ok(Some((value, total)))
            }
            b'$' => {
                let Some((line, consumed)) = read_line(&input[1..]) else {
                    return Ok(None);
                };
                let header = 1 + consumed;
                let len = parse_len(line)?;
                let Some(len) = len else {
                    return Ok(Some((RespValue::Bulk(None), header)));
                };
                let need = header + len + 2;
                if input.len() < need {
                    return Ok(None);
                }
                if &input[header + len..need] != b"\r\n" {
                    return Err(ParseError::BadFraming);
                }
                let data = Bytes::copy_from_slice(&input[header..header + len]);
                Ok(Some((RespValue::Bulk(Some(data)), need)))
            }
            b'*' => {
                let Some((line, consumed)) = read_line(&input[1..]) else {
                    return Ok(None);
                };
                let mut pos = 1 + consumed;
                let len = parse_len(line)?;
                let Some(len) = len else {
                    return Ok(Some((RespValue::Array(None), pos)));
                };
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    match RespValue::parse(&input[pos..])? {
                        None => return Ok(None),
                        Some((item, used)) => {
                            items.push(item);
                            pos += used;
                        }
                    }
                }
                Ok(Some((RespValue::Array(Some(items)), pos)))
            }
            other => Err(ParseError::BadType(other)),
        }
    }

    /// Parse **every** complete frame at the head of `input` — the
    /// pipelining entry point: one readable event drains one buffer into a
    /// whole batch of commands, executed together and answered with a single
    /// vectored write.
    ///
    /// Returns the parsed frames plus the total byte count they consumed
    /// (the caller drains exactly that prefix and keeps the partial-frame
    /// tail for the next read). A malformed frame surfaces as `Err` only
    /// after the frames preceding it — the caller serves those, then reports
    /// the protocol error in order.
    pub fn parse_batch(input: &[u8]) -> (Batch, Result<(), ParseError>) {
        let mut frames = Vec::new();
        let mut consumed = 0;
        loop {
            match RespValue::parse(&input[consumed..]) {
                Ok(Some((value, used))) => {
                    frames.push(value);
                    consumed += used;
                }
                Ok(None) => return (Batch { frames, consumed }, Ok(())),
                Err(e) => return (Batch { frames, consumed }, Err(e)),
            }
        }
    }
}

/// The complete frames [`RespValue::parse_batch`] drained from a buffer and
/// how many bytes of that buffer they covered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Every complete frame, in wire order.
    pub frames: Vec<RespValue>,
    /// Total bytes the frames consumed (the partial-frame tail, if any,
    /// starts here).
    pub consumed: usize,
}

/// Read up to the first CRLF; returns (line content, bytes consumed incl CRLF).
fn read_line(input: &[u8]) -> Option<(&[u8], usize)> {
    let pos = input.windows(2).position(|w| w == b"\r\n")?;
    Some((&input[..pos], pos + 2))
}

/// Parse a RESP length field; `-1` means null.
fn parse_len(line: &[u8]) -> Result<Option<usize>, ParseError> {
    let text = std::str::from_utf8(line).map_err(|_| ParseError::BadInteger)?;
    let n = text.parse::<i64>().map_err(|_| ParseError::BadInteger)?;
    match n {
        -1 => Ok(None),
        n if n >= 0 => Ok(Some(n as usize)),
        _ => Err(ParseError::BadInteger),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &RespValue) {
        let encoded = v.to_bytes();
        let (parsed, consumed) = RespValue::parse(&encoded).unwrap().unwrap();
        assert_eq!(&parsed, v);
        assert_eq!(consumed, encoded.len());
    }

    #[test]
    fn roundtrips_all_types() {
        roundtrip(&RespValue::Simple("OK".into()));
        roundtrip(&RespValue::Error("ERR boom".into()));
        roundtrip(&RespValue::Integer(-42));
        roundtrip(&RespValue::bulk("hello"));
        roundtrip(&RespValue::Bulk(None));
        roundtrip(&RespValue::Array(None));
        roundtrip(&RespValue::array(vec![
            RespValue::bulk("GET"),
            RespValue::bulk("key"),
            RespValue::Integer(7),
            RespValue::array(vec![RespValue::ok()]),
        ]));
    }

    #[test]
    fn known_wire_formats() {
        assert_eq!(RespValue::ok().to_bytes(), b"+OK\r\n");
        assert_eq!(RespValue::bulk("ab").to_bytes(), b"$2\r\nab\r\n");
        assert_eq!(RespValue::Bulk(None).to_bytes(), b"$-1\r\n");
        assert_eq!(RespValue::Integer(10).to_bytes(), b":10\r\n");
    }

    #[test]
    fn incomplete_input_returns_none() {
        let full = RespValue::array(vec![RespValue::bulk("GET"), RespValue::bulk("k")]).to_bytes();
        for cut in 0..full.len() {
            let r = RespValue::parse(&full[..cut]).unwrap();
            assert!(r.is_none(), "prefix of {cut} bytes parsed as complete");
        }
    }

    #[test]
    fn parse_consumes_exactly_one_frame() {
        let mut buf = RespValue::Integer(1).to_bytes();
        buf.extend_from_slice(&RespValue::Integer(2).to_bytes());
        let (v1, used) = RespValue::parse(&buf).unwrap().unwrap();
        assert_eq!(v1, RespValue::Integer(1));
        let (v2, _) = RespValue::parse(&buf[used..]).unwrap().unwrap();
        assert_eq!(v2, RespValue::Integer(2));
    }

    #[test]
    fn bad_type_byte_is_error() {
        assert_eq!(
            RespValue::parse(b"!oops\r\n"),
            Err(ParseError::BadType(b'!'))
        );
    }

    #[test]
    fn bad_bulk_framing_is_error() {
        // Declared 2 bytes but terminator is wrong.
        assert_eq!(RespValue::parse(b"$2\r\nabXY"), Err(ParseError::BadFraming));
    }

    #[test]
    fn bad_integer_is_error() {
        assert_eq!(RespValue::parse(b":4x\r\n"), Err(ParseError::BadInteger));
        assert_eq!(RespValue::parse(b"$-5\r\n"), Err(ParseError::BadInteger));
    }

    #[test]
    fn binary_safe_bulk() {
        let v = RespValue::bulk(vec![0u8, 13, 10, 255]);
        roundtrip(&v);
    }

    #[test]
    fn parse_batch_drains_every_complete_frame_and_keeps_the_tail() {
        let mut buf =
            RespValue::array(vec![RespValue::bulk("GET"), RespValue::bulk("a")]).to_bytes();
        buf.extend_from_slice(&RespValue::Integer(5).to_bytes());
        let full_len = buf.len();
        // A partial third frame: batch parsing must stop cleanly before it.
        buf.extend_from_slice(b"*2\r\n$3\r\nGET");
        let (batch, status) = RespValue::parse_batch(&buf);
        status.unwrap();
        assert_eq!(batch.frames.len(), 2);
        assert_eq!(batch.consumed, full_len);
        assert_eq!(batch.frames[1], RespValue::Integer(5));
    }

    #[test]
    fn parse_batch_reports_frames_before_a_protocol_error() {
        let mut buf = RespValue::Integer(1).to_bytes();
        buf.extend_from_slice(b"!bogus\r\n");
        let (batch, status) = RespValue::parse_batch(&buf);
        assert_eq!(batch.frames, vec![RespValue::Integer(1)]);
        assert_eq!(batch.consumed, 4);
        assert_eq!(status, Err(ParseError::BadType(b'!')));
    }

    #[test]
    fn parse_batch_of_empty_input_is_empty() {
        let (batch, status) = RespValue::parse_batch(b"");
        status.unwrap();
        assert!(batch.frames.is_empty());
        assert_eq!(batch.consumed, 0);
    }
}
