//! # abase-proto
//!
//! The Redis wire protocol (RESP2) and the command subset ABase exposes.
//!
//! "ABase supports the Redis protocol to ease adoption for users familiar with
//! Redis" (paper §3.1). This crate provides:
//!
//! * [`resp`] — RESP2 value model with an incremental parser and serializer.
//! * [`command`] — the typed command set, including the string commands whose
//!   RU estimation §4.1 discusses (`GET`/`SET`) and the complex hash commands
//!   (`HLEN`, `HGETALL`) whose costs are decomposed into stages.

#![deny(missing_docs)]

pub mod command;
pub mod resp;

pub use command::{Command, CommandKind, ParseCommandError, SlowlogSub};
pub use resp::{Batch, ParseError, RespValue};
