//! Incremental-parse torture tests for the RESP parser.
//!
//! The network layer's contract is: `parse` returns `Ok(None)` on any strict
//! prefix of a valid frame (accumulate and retry), `Ok(Some)` consuming
//! exactly one frame, and `Err` only on input that can never become valid.
//! These tests pin that contract by splitting frames at every byte boundary,
//! feeding byte-at-a-time streams, pipelining frames back-to-back, and
//! throwing malformed lengths/framing at the parser.

use abase_proto::{Command, ParseError, RespValue};
use bytes::Bytes;

fn sample_values() -> Vec<RespValue> {
    vec![
        RespValue::Simple("OK".into()),
        RespValue::Error("ERR something went wrong".into()),
        RespValue::Integer(i64::MIN),
        RespValue::Integer(i64::MAX),
        RespValue::bulk(""),
        RespValue::bulk("hello world"),
        RespValue::bulk(vec![0u8, 255, 13, 10, 7]), // binary incl. CRLF bytes
        RespValue::Bulk(None),
        RespValue::Array(None),
        RespValue::array(vec![]),
        RespValue::array(vec![
            RespValue::bulk("SET"),
            RespValue::bulk("key"),
            RespValue::bulk("value"),
        ]),
        // Deep nesting with mixed types.
        RespValue::array(vec![
            RespValue::Integer(1),
            RespValue::array(vec![
                RespValue::bulk("inner"),
                RespValue::array(vec![RespValue::Bulk(None), RespValue::ok()]),
                RespValue::Array(None),
            ]),
            RespValue::Error("E".into()),
        ]),
    ]
}

#[test]
fn every_prefix_of_every_frame_is_incomplete() {
    for value in sample_values() {
        let wire = value.to_bytes();
        for cut in 0..wire.len() {
            match RespValue::parse(&wire[..cut]) {
                Ok(None) => {}
                other => panic!(
                    "prefix {cut}/{} of {value:?} parsed as {other:?}",
                    wire.len()
                ),
            }
        }
        let (parsed, consumed) = RespValue::parse(&wire).unwrap().unwrap();
        assert_eq!(parsed, value);
        assert_eq!(consumed, wire.len());
    }
}

#[test]
fn byte_at_a_time_stream_reassembles() {
    // Simulate a network layer receiving one byte per read.
    let values = sample_values();
    let mut wire = Vec::new();
    for v in &values {
        v.encode(&mut wire);
    }
    let mut buffer = Vec::new();
    let mut decoded = Vec::new();
    for &byte in &wire {
        buffer.push(byte);
        while let Some((value, used)) = RespValue::parse(&buffer).unwrap() {
            decoded.push(value);
            buffer.drain(..used);
        }
    }
    assert!(buffer.is_empty(), "undrained bytes: {buffer:?}");
    assert_eq!(decoded, values);
}

#[test]
fn pipelined_frames_split_at_every_boundary() {
    // Two commands pipelined; split the stream at every position and feed the
    // two halves — the parser must produce the same two frames regardless.
    let a = Command::Set {
        key: Bytes::from("k"),
        value: Bytes::from("v1"),
        ttl_secs: Some(30),
    }
    .to_resp();
    let b = Command::HSet {
        key: Bytes::from("h"),
        pairs: vec![(Bytes::from("f"), Bytes::from("v2"))],
    }
    .to_resp();
    let mut wire = a.to_bytes();
    wire.extend_from_slice(&b.to_bytes());
    for split in 0..=wire.len() {
        let mut buffer = Vec::new();
        let mut decoded = Vec::new();
        for half in [&wire[..split], &wire[split..]] {
            buffer.extend_from_slice(half);
            while let Some((value, used)) = RespValue::parse(&buffer).unwrap() {
                decoded.push(value);
                buffer.drain(..used);
            }
        }
        assert_eq!(decoded.len(), 2, "split at {split}");
        assert_eq!(decoded[0], a);
        assert_eq!(decoded[1], b);
    }
}

#[test]
fn malformed_lengths_are_errors_not_incomplete() {
    // A parser that treated these as "need more bytes" would hang the
    // connection forever.
    assert_eq!(RespValue::parse(b"$abc\r\n"), Err(ParseError::BadInteger));
    assert_eq!(RespValue::parse(b"$-2\r\n"), Err(ParseError::BadInteger));
    assert_eq!(RespValue::parse(b"*-7\r\n"), Err(ParseError::BadInteger));
    assert_eq!(
        RespValue::parse(b"*1x\r\n$1\r\na\r\n"),
        Err(ParseError::BadInteger)
    );
    assert_eq!(RespValue::parse(b":12.5\r\n"), Err(ParseError::BadInteger));
    assert_eq!(RespValue::parse(b":\r\n"), Err(ParseError::BadInteger));
}

#[test]
fn bulk_payload_framing_violations_are_errors() {
    // Declared length 2 but the terminator is displaced.
    assert_eq!(RespValue::parse(b"$2\r\nabcd"), Err(ParseError::BadFraming));
    // Nested inside an array: the error must surface through recursion.
    assert_eq!(
        RespValue::parse(b"*2\r\n$1\r\na\r\n$2\r\nabXY"),
        Err(ParseError::BadFraming)
    );
}

#[test]
fn unknown_type_bytes_rejected_at_any_depth() {
    assert_eq!(
        RespValue::parse(b"!boom\r\n"),
        Err(ParseError::BadType(b'!'))
    );
    assert_eq!(
        RespValue::parse(b"*2\r\n:1\r\n?x\r\n"),
        Err(ParseError::BadType(b'?'))
    );
}

#[test]
fn huge_declared_bulk_stays_incomplete() {
    // A length header promising a megabyte with only a few payload bytes on
    // the wire is incomplete, not an error.
    let r = RespValue::parse(b"$1048576\r\nabc").unwrap();
    assert!(r.is_none());
    let r = RespValue::parse(b"*100000\r\n:1\r\n").unwrap();
    assert!(r.is_none());
}

#[test]
fn deeply_nested_arrays_roundtrip_incrementally() {
    let mut value = RespValue::Integer(42);
    for _ in 0..16 {
        value = RespValue::array(vec![value]);
    }
    let wire = value.to_bytes();
    for cut in 0..wire.len() {
        assert!(
            RespValue::parse(&wire[..cut]).unwrap().is_none(),
            "cut {cut}"
        );
    }
    let (parsed, used) = RespValue::parse(&wire).unwrap().unwrap();
    assert_eq!(parsed, value);
    assert_eq!(used, wire.len());
}

#[test]
fn replication_commands_parse() {
    let wait = Command::from_resp(&RespValue::array(vec![
        RespValue::bulk("WAIT"),
        RespValue::bulk("2"),
        RespValue::bulk("500"),
    ]))
    .unwrap();
    assert_eq!(
        wait,
        Command::Wait {
            numreplicas: 2,
            timeout_ms: 500
        }
    );
    let replconf = Command::from_resp(&RespValue::array(vec![
        RespValue::bulk("replconf"),
        RespValue::bulk("listening-port"),
        RespValue::bulk("6380"),
    ]))
    .unwrap();
    match &replconf {
        Command::ReplConf { pairs } => assert_eq!(pairs.len(), 1),
        other => panic!("{other:?}"),
    }
    // Both are control-plane commands and roundtrip through RESP.
    for cmd in [wait, replconf] {
        assert_eq!(cmd.kind(), abase_proto::CommandKind::Control);
        assert_eq!(Command::from_resp(&cmd.to_resp()).unwrap(), cmd);
    }
    // Malformed variants are rejected.
    assert!(Command::from_resp(&RespValue::array(vec![RespValue::bulk("WAIT")])).is_err());
    assert!(Command::from_resp(&RespValue::array(vec![
        RespValue::bulk("REPLCONF"),
        RespValue::bulk("odd"),
        RespValue::bulk("pair"),
        RespValue::bulk("dangling"),
    ]))
    .is_err());
}
