//! Fixture-driven tests: each rule must trip on its seeded-violation twin
//! under `fixtures/bad/` and stay silent on the clean twin under
//! `fixtures/good/`.

use abase_analysis::{analyze, Finding};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

/// Analyze one fixture as if it lived at `rel` inside the workspace.
fn run_at(rel: &str, name: &str) -> Vec<Finding> {
    analyze(&[(PathBuf::from(rel), fixture(name))])
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    let mut rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn a001_trips_on_unjustified_unsafe() {
    let findings = run_at("crates/util/src/fixture.rs", "bad/a001_unsafe.rs");
    let a001: Vec<_> = findings.iter().filter(|f| f.rule == "A001").collect();
    assert_eq!(a001.len(), 2, "both unsafe sites flagged: {findings:?}");
    assert!(a001.iter().all(|f| f.message.contains("SAFETY")));
}

#[test]
fn a001_accepts_safety_comments() {
    let findings = run_at("crates/util/src/fixture.rs", "good/a001_unsafe.rs");
    assert!(
        findings.is_empty(),
        "clean twin must be silent: {findings:?}"
    );
}

#[test]
fn a002_trips_on_unannotated_strong_orderings() {
    let findings = run_at("crates/util/src/fixture.rs", "bad/a002_ordering.rs");
    let a002: Vec<_> = findings.iter().filter(|f| f.rule == "A002").collect();
    assert_eq!(
        a002.len(),
        3,
        "SeqCst, Release, Acquire all flagged: {findings:?}"
    );
}

#[test]
fn a002_accepts_order_comments_and_ignores_relaxed_and_tests() {
    let findings = run_at("crates/util/src/fixture.rs", "good/a002_ordering.rs");
    assert!(
        findings.is_empty(),
        "clean twin must be silent: {findings:?}"
    );
}

#[test]
fn a003_trips_in_hot_crate_src_only() {
    let hot = run_at("crates/lavastore/src/fixture.rs", "bad/a003_panics.rs");
    assert_eq!(rules_of(&hot), vec!["A003"], "{hot:?}");
    assert_eq!(hot.len(), 2, "unwrap and bare expect both flagged: {hot:?}");

    // The same source in a cold crate or in a test tree is out of scope.
    let cold = run_at("crates/workload/src/fixture.rs", "bad/a003_panics.rs");
    assert!(cold.is_empty(), "cold crates exempt from A003: {cold:?}");
    let test_tree = run_at("crates/lavastore/tests/fixture.rs", "bad/a003_panics.rs");
    assert!(
        test_tree.is_empty(),
        "tests exempt from A003: {test_tree:?}"
    );
}

#[test]
fn a003_accepts_invariant_annotations_and_lint_waivers() {
    let findings = run_at("crates/lavastore/src/fixture.rs", "good/a003_panics.rs");
    assert!(
        findings.is_empty(),
        "clean twin must be silent: {findings:?}"
    );
}

#[test]
fn a004_trips_outside_shims_and_not_inside() {
    let findings = run_at("crates/core/src/fixture.rs", "bad/a004_std_sync.rs");
    let a004: Vec<_> = findings.iter().filter(|f| f.rule == "A004").collect();
    assert_eq!(a004.len(), 2, "use + inline RwLock flagged: {findings:?}");

    // The identical source inside the shim crate is the one allowed home.
    let shim = run_at(
        "crates/shims/parking_lot/src/fixture.rs",
        "bad/a004_std_sync.rs",
    );
    assert!(shim.is_empty(), "shims exempt from A004: {shim:?}");
}

#[test]
fn a004_accepts_shim_locks_atomics_and_channels() {
    let findings = run_at("crates/core/src/fixture.rs", "good/a004_std_sync.rs");
    assert!(
        findings.is_empty(),
        "clean twin must be silent: {findings:?}"
    );
}

#[test]
fn a005_trips_on_each_naming_violation() {
    let findings = run_at("crates/obs/src/fixture.rs", "bad/a005_metrics.rs");
    let msgs: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "A005")
        .map(|f| f.message.as_str())
        .collect();
    assert_eq!(msgs.len(), 4, "{findings:?}");
    assert!(msgs
        .iter()
        .any(|m| m.contains("abase_") && m.contains("prefix")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("`abase_server_errors` must end in `_total`")));
    assert!(msgs.iter().any(|m| m.contains("unit suffix")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("gauge `abase_queue_depth_total`")));
}

#[test]
fn a005_accepts_conventional_names() {
    let findings = run_at("crates/obs/src/fixture.rs", "good/a005_metrics.rs");
    assert!(
        findings.is_empty(),
        "clean twin must be silent: {findings:?}"
    );
}

#[test]
fn a006_trips_on_installed_but_never_checked_failpoint() {
    // The bad fixture installs "ghost.point" (no fire site) and
    // "wal.append"; pair it with the good fixture, whose hot path checks
    // wal.append, to prove only the ghost is flagged.
    let findings = analyze(&[
        (
            PathBuf::from("crates/chaos/src/fixture.rs"),
            fixture("bad/a006_failpoints.rs"),
        ),
        (
            PathBuf::from("crates/lavastore/src/fixture2.rs"),
            fixture("good/a006_failpoints.rs"),
        ),
    ]);
    let a006: Vec<_> = findings.iter().filter(|f| f.rule == "A006").collect();
    assert_eq!(a006.len(), 1, "{findings:?}");
    assert!(a006[0].message.contains("ghost.point"));
    assert!(a006[0].path.starts_with("crates/chaos"));
}

#[test]
fn a006_accepts_matched_install_and_check() {
    let findings = run_at("crates/lavastore/src/fixture.rs", "good/a006_failpoints.rs");
    assert!(
        findings.is_empty(),
        "clean twin must be silent: {findings:?}"
    );
}

#[test]
fn the_workspace_itself_is_clean() {
    // The committed tree must stay lint-clean: this is the same invariant CI
    // enforces with `--deny` against the (empty) baseline.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let findings = abase_analysis::scan_workspace(root).expect("scan workspace");
    assert!(
        findings.is_empty(),
        "workspace has un-baselined lint findings:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
