//! CLI driver for the workspace lint pass.
//!
//! ```text
//! cargo run -p abase-analysis --               # report findings, exit 0
//! cargo run -p abase-analysis -- --deny        # exit 1 on un-baselined findings
//! cargo run -p abase-analysis -- --write-baseline
//! cargo run -p abase-analysis -- --root <dir> --baseline <file>
//! ```

use abase_analysis::{scan_workspace, Baseline};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline: PathBuf,
    deny: bool,
    write_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    // Default to the workspace root: two levels up from this crate's
    // manifest, falling back to the current directory when run standalone.
    let default_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let mut args = Args {
        root: default_root,
        baseline: PathBuf::new(),
        deny: false,
        write_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    let mut baseline_set = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => args.deny = true,
            "--write-baseline" => args.write_baseline = true,
            "--root" => {
                args.root =
                    PathBuf::from(it.next().ok_or_else(|| "--root needs a path".to_string())?);
            }
            "--baseline" => {
                args.baseline = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--baseline needs a path".to_string())?,
                );
                baseline_set = true;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: abase-analysis [--deny] [--write-baseline] [--root DIR] \
                     [--baseline FILE]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !baseline_set {
        args.baseline = args.root.join("crates/analysis/baseline.txt");
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let findings = match scan_workspace(&args.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "abase-analysis: failed to scan {}: {e}",
                args.root.display()
            );
            return ExitCode::FAILURE;
        }
    };

    if args.write_baseline {
        if let Err(e) = Baseline::write(&args.baseline, &findings) {
            eprintln!(
                "abase-analysis: failed to write {}: {e}",
                args.baseline.display()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {} finding(s) to {}",
            findings.len(),
            args.baseline.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match Baseline::load(&args.baseline) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "abase-analysis: failed to read {}: {e}",
                args.baseline.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let fresh: Vec<_> = findings.iter().filter(|f| !baseline.contains(f)).collect();
    for f in &fresh {
        println!("{f}");
    }
    let stale = baseline.stale(&findings);
    for key in &stale {
        eprintln!(
            "note: stale baseline entry `{key}` (fixed or moved; re-run with \
             --write-baseline)"
        );
    }
    println!(
        "abase-analysis: {} finding(s) ({} new, {} baselined, {} stale baseline entr{})",
        findings.len(),
        fresh.len(),
        findings.len() - fresh.len(),
        stale.len(),
        if stale.len() == 1 { "y" } else { "ies" },
    );

    if args.deny && !fresh.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
