//! The lint rules.
//!
//! Every rule has a stable id (`A001`..`A006`), reports `file:line`
//! diagnostics, and can be silenced at a site with a
//! `// LINT: allow(A00x): reason` comment within the rule's lookback window.
//!
//! | id   | rule |
//! |------|------|
//! | A001 | `unsafe` requires a `// SAFETY:` comment |
//! | A002 | non-`Relaxed` atomic orderings require a `// ORDER:` comment |
//! | A003 | no `.unwrap()` / un-annotated `.expect(` in hot-crate non-test code |
//! | A004 | no `std::sync::{Mutex, RwLock, Condvar}` outside `crates/shims` |
//! | A005 | metric names follow the `abase_*` naming conventions |
//! | A006 | every installed failpoint name has a `failpoint::check` fire site |

use crate::lexer::{first_string_after, has_word, test_regions, Lexed};
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose `src/` trees are held to the A003 no-panic standard.
pub const HOT_CRATES: &[&str] = &["lavastore", "replication", "core", "cache", "proto"];

/// How many preceding lines a justification comment may sit on.
const SAFETY_WINDOW: usize = 6;
const ORDER_WINDOW: usize = 10;
const INVARIANT_WINDOW: usize = 10;

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path relative to the workspace root.
    pub path: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Stable rule id (`A001`..).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// The stable identity used for baseline matching.
    pub fn key(&self) -> String {
        format!("{} {}:{}", self.rule, self.path.display(), self.line)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Where a file sits in the workspace; drives which rules apply.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Path relative to the workspace root.
    pub rel: PathBuf,
    /// The `crates/<name>` component, if any.
    pub crate_name: Option<String>,
    /// Whole-file test/bench/example code (rules A002/A003/A005 skip it).
    pub is_test_file: bool,
    /// Inside `crates/shims` (exempt from A004 — the shims wrap std::sync).
    pub is_shims: bool,
    /// A hot crate's `src/` tree (subject to A003).
    pub is_hot_src: bool,
}

impl FileCtx {
    /// Classify `rel` (a workspace-root-relative path).
    pub fn from_rel(rel: &Path) -> Self {
        let comps: Vec<String> = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect();
        let crate_name = if comps.len() >= 2 && comps[0] == "crates" {
            Some(comps[1].clone())
        } else {
            None
        };
        let is_test_file = comps
            .iter()
            .any(|c| c == "tests" || c == "benches" || c == "examples" || c == "fixtures");
        let is_shims = comps.first().map(String::as_str) == Some("crates")
            && comps.get(1).map(String::as_str) == Some("shims");
        let is_hot_src = crate_name
            .as_deref()
            .is_some_and(|n| HOT_CRATES.contains(&n))
            && comps.iter().any(|c| c == "src")
            && !is_test_file;
        FileCtx {
            rel: rel.to_path_buf(),
            crate_name,
            is_test_file,
            is_shims,
            is_hot_src,
        }
    }
}

/// A failpoint name seen at an `install` or `check` call.
#[derive(Debug, Clone)]
pub struct FailpointRef {
    /// The failpoint name literal.
    pub name: String,
    /// File it appeared in.
    pub path: PathBuf,
    /// 1-based line of the call.
    pub line: usize,
}

/// Cross-file facts collected during the per-file pass, consumed by A006.
#[derive(Debug, Default)]
pub struct CrossFile {
    /// Failpoint names passed to `failpoint::install(...)`.
    pub installs: Vec<FailpointRef>,
    /// Failpoint names passed to `failpoint::check(...)`.
    pub checks: Vec<FailpointRef>,
}

/// True if any comment in the `window` lines ending at `line` (1-based)
/// contains `marker`.
fn comment_nearby(lexed: &Lexed, line: usize, window: usize, marker: &str) -> bool {
    let lo = line.saturating_sub(window);
    (lo..=line)
        .filter_map(|n| n.checked_sub(1).and_then(|i| lexed.lines.get(i)))
        .any(|info| info.comment.contains(marker))
}

/// True if an explicit `LINT: allow(<rule>)` waiver is in scope for `line`.
fn lint_allowed(lexed: &Lexed, line: usize, rule: &str) -> bool {
    let marker = format!("LINT: allow({rule})");
    comment_nearby(lexed, line, INVARIANT_WINDOW, &marker)
}

/// Byte offsets of every word-bounded occurrence of `needle` in `hay`.
fn word_positions(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = hay[..at]
            .chars()
            .next_back()
            .map(|c| !(c.is_alphanumeric() || c == '_'))
            .unwrap_or(true);
        if before_ok {
            out.push(at);
        }
        start = at + needle.len();
    }
    out
}

/// Run every per-file rule on one lexed file and collect cross-file facts.
pub fn check_file(ctx: &FileCtx, lexed: &Lexed, cross: &mut CrossFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let in_test = test_regions(&lexed.lines);
    let push = |findings: &mut Vec<Finding>, line: usize, rule: &'static str, msg: String| {
        findings.push(Finding {
            path: ctx.rel.clone(),
            line,
            rule,
            message: msg,
        });
    };

    for (idx, info) in lexed.lines.iter().enumerate() {
        let line = idx + 1;
        let code = info.code.as_str();
        let test_code = ctx.is_test_file || in_test[idx];

        // A001: every `unsafe` keyword needs a SAFETY comment nearby.
        if has_word(code, "unsafe")
            && !comment_nearby(lexed, line, SAFETY_WINDOW, "SAFETY:")
            && !lint_allowed(lexed, line, "A001")
        {
            push(
                &mut findings,
                line,
                "A001",
                "`unsafe` without a `// SAFETY:` comment within the preceding lines".into(),
            );
        }

        // A002: Acquire/Release/AcqRel/SeqCst need an ORDER comment naming
        // the pairing site. Relaxed needs no justification; test code is
        // exempt (ordering there is about convenience, not protocol).
        if !test_code {
            for variant in ["Acquire", "Release", "AcqRel", "SeqCst"] {
                let pat = format!("Ordering::{variant}");
                if code.contains(pat.as_str())
                    && !comment_nearby(lexed, line, ORDER_WINDOW, "ORDER:")
                    && !lint_allowed(lexed, line, "A002")
                {
                    push(
                        &mut findings,
                        line,
                        "A002",
                        format!("`{pat}` without a `// ORDER:` comment naming its pairing site"),
                    );
                    break; // one diagnostic per line is enough
                }
            }
        }

        // A003: hot-crate production code must not panic through
        // `.unwrap()`; `.expect(` is allowed only under an
        // `// INVARIANT:` annotation explaining why it cannot fire.
        if ctx.is_hot_src && !test_code {
            if code.contains(".unwrap()") && !lint_allowed(lexed, line, "A003") {
                push(
                    &mut findings,
                    line,
                    "A003",
                    "`.unwrap()` in hot-crate production code; propagate the error instead".into(),
                );
            }
            if code.contains(".expect(")
                && !comment_nearby(lexed, line, INVARIANT_WINDOW, "INVARIANT:")
                && !lint_allowed(lexed, line, "A003")
            {
                push(
                    &mut findings,
                    line,
                    "A003",
                    "`.expect(` in hot-crate production code without an `// INVARIANT:` \
                     justification"
                        .into(),
                );
            }
        }

        // A004: the workspace locks through the parking_lot shim (or the
        // ranked wrappers on top of it); bare std::sync locks are only
        // allowed inside the shim itself.
        if !ctx.is_shims
            && code.contains("std::sync")
            && ["Mutex", "RwLock", "Condvar"]
                .iter()
                .any(|t| has_word(code, t))
            && !lint_allowed(lexed, line, "A004")
        {
            push(
                &mut findings,
                line,
                "A004",
                "std::sync lock type outside crates/shims; use the parking_lot shim or \
                 abase_util::lockrank wrappers"
                    .into(),
            );
        }

        // A005: metric names must follow the registry conventions.
        if !test_code {
            for (kind, token) in [
                ("counter", "LazyCounter::new("),
                ("counter", "LazyCounterFamily::new("),
                ("gauge", "LazyGauge::new("),
                ("histogram", "LazyHisto::new("),
                ("histogram", "LazyHistoFamily::new("),
            ] {
                for at in word_positions(code, token) {
                    let col = code[..at].chars().count();
                    let Some(lit) = first_string_after(lexed, line, col) else {
                        continue;
                    };
                    if let Some(msg) = metric_name_violation(kind, &lit.value) {
                        if !lint_allowed(lexed, line, "A005") {
                            push(&mut findings, line, "A005", msg);
                        }
                    }
                }
            }
        }

        // A006 (collection): record failpoint install/check names. Installs
        // inside `#[cfg(test)]` mods are skipped (a test may install a point
        // it also defines locally), but whole-file tests count — the chaos
        // harness and integration tests are exactly who installs faults.
        for (list, token, skip) in [
            (&mut cross.installs, "failpoint::install(", in_test[idx]),
            (&mut cross.checks, "failpoint::check(", false),
        ] {
            if skip {
                continue;
            }
            for at in word_positions(code, token) {
                let col = code[..at].chars().count();
                if let Some(lit) = first_string_after(lexed, line, col) {
                    list.push(FailpointRef {
                        name: lit.value.clone(),
                        path: ctx.rel.clone(),
                        line,
                    });
                }
            }
        }
    }
    findings
}

/// Check one metric name against the conventions; `None` means clean.
///
/// Conventions (see `crates/obs`): every name starts `abase_`; counters end
/// in `_total`; histograms end in a unit (`_micros`, `_bytes`, `_frames`,
/// `_commands`); gauges are instantaneous so they must *not* carry a
/// cumulative (`_total`) or duration (`_micros`) suffix.
pub fn metric_name_violation(kind: &str, name: &str) -> Option<String> {
    if !name.starts_with("abase_") {
        return Some(format!(
            "metric `{name}` must start with the `abase_` namespace prefix"
        ));
    }
    match kind {
        "counter" if !name.ends_with("_total") => {
            Some(format!("counter `{name}` must end in `_total`"))
        }
        "histogram" => {
            const UNITS: &[&str] = &["_micros", "_bytes", "_frames", "_commands"];
            if UNITS.iter().any(|u| name.ends_with(u)) {
                None
            } else {
                Some(format!(
                    "histogram `{name}` must end in a unit suffix ({})",
                    UNITS.join(", ")
                ))
            }
        }
        "gauge" if name.ends_with("_total") || name.ends_with("_micros") => Some(format!(
            "gauge `{name}` must not use a cumulative/duration suffix"
        )),
        _ => None,
    }
}

/// A006: every installed failpoint name must have at least one fire site.
pub fn check_failpoints(cross: &CrossFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for inst in &cross.installs {
        if !cross.checks.iter().any(|c| c.name == inst.name) {
            findings.push(Finding {
                path: inst.path.clone(),
                line: inst.line,
                rule: "A006",
                message: format!(
                    "failpoint `{}` is installed here but no `failpoint::check(\"{}\")` \
                     fire site exists",
                    inst.name, inst.name
                ),
            });
        }
    }
    findings
}
