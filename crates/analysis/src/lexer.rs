//! A minimal, hand-rolled line lexer for Rust source.
//!
//! The analysis rules only need three views of a file, none of which require
//! a real parse tree:
//!
//! 1. **code**: each line with comments and string-literal *contents* blanked
//!    out to spaces (the delimiting quotes stay, so columns line up with the
//!    original source);
//! 2. **comment**: the comment text that appears on each line (line comments,
//!    doc comments, and every line of a block comment);
//! 3. **strings**: every string literal in source order, with the line and
//!    column where it starts.
//!
//! The lexer understands line comments, nested block comments, plain and raw
//! (byte) strings, character literals, and disambiguates lifetimes (`'a`)
//! from char literals (`'a'`). It deliberately does not build tokens — the
//! rules work on substring matches over the blanked `code` text, which cannot
//! be fooled by `unsafe` appearing inside a string or a doc comment.

/// One source line, split into its code and comment parts.
#[derive(Debug, Default, Clone)]
pub struct LineInfo {
    /// The line with comments and string contents replaced by spaces.
    /// Same char length as the original line, so columns are preserved.
    pub code: String,
    /// Comment text present on this line (empty if none).
    pub comment: String,
}

/// A string literal and where it starts.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// 1-based line of the opening quote.
    pub line: usize,
    /// 0-based char column of the opening quote (or prefix) on that line.
    pub col: usize,
    /// The literal's contents (escapes left as written, not decoded).
    pub value: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Per-line code/comment split, in order.
    pub lines: Vec<LineInfo>,
    /// Every string literal, in source order.
    pub strings: Vec<StrLit>,
}

enum State {
    Normal,
    /// Inside a block comment; the payload is the nesting depth.
    Block(u32),
    /// Inside a plain (or byte) string literal.
    Str,
    /// Inside a raw string literal closed by `"` followed by N hashes.
    RawStr(usize),
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into per-line code/comment views plus a string-literal table.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let mut state = State::Normal;
    // The literal currently being accumulated (spans lines for multi-line
    // strings). `(line, col)` is where it opened.
    let mut cur_lit: Option<(usize, usize, String)> = None;

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = raw.chars().collect();
        let mut code: Vec<char> = vec![' '; chars.len()];
        let mut comment = String::new();
        let mut i = 0;

        while i < chars.len() {
            match state {
                State::Block(ref mut depth) => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        comment.push_str("*/");
                        i += 2;
                        *depth -= 1;
                        if *depth == 0 {
                            state = State::Normal;
                        }
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        comment.push_str("/*");
                        i += 2;
                        *depth += 1;
                    } else {
                        comment.push(chars[i]);
                        i += 1;
                    }
                }
                State::Str => {
                    if chars[i] == '\\' {
                        if let Some((_, _, lit)) = cur_lit.as_mut() {
                            lit.push('\\');
                            if let Some(&next) = chars.get(i + 1) {
                                lit.push(next);
                            }
                        }
                        i += 2; // skips the escaped char; harmless past EOL
                    } else if chars[i] == '"' {
                        code[i] = '"';
                        if let Some((l, c, v)) = cur_lit.take() {
                            out.strings.push(StrLit {
                                line: l,
                                col: c,
                                value: v,
                            });
                        }
                        state = State::Normal;
                        i += 1;
                    } else {
                        if let Some((_, _, lit)) = cur_lit.as_mut() {
                            lit.push(chars[i]);
                        }
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    let closes =
                        chars[i] == '"' && (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
                    if closes {
                        code[i] = '"';
                        if let Some((l, c, v)) = cur_lit.take() {
                            out.strings.push(StrLit {
                                line: l,
                                col: c,
                                value: v,
                            });
                        }
                        state = State::Normal;
                        i += 1 + hashes;
                    } else {
                        if let Some((_, _, lit)) = cur_lit.as_mut() {
                            lit.push(chars[i]);
                        }
                        i += 1;
                    }
                }
                State::Normal => {
                    let c = chars[i];
                    let next = chars.get(i + 1).copied();
                    let prev_ident = i > 0 && is_ident(chars[i - 1]);
                    if c == '/' && next == Some('/') {
                        // Line (or doc) comment: the rest of the line.
                        comment.extend(chars[i..].iter());
                        break;
                    }
                    if c == '/' && next == Some('*') {
                        comment.push_str("/*");
                        state = State::Block(1);
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        code[i] = '"';
                        cur_lit = Some((lineno, i, String::new()));
                        state = State::Str;
                        i += 1;
                        continue;
                    }
                    // Raw strings: r"..." / r#"..."# / br#"..."#; and byte
                    // strings b"...". A preceding identifier char means this
                    // is just the tail of a name (e.g. `var` ends in `r`).
                    if (c == 'r' || c == 'b') && !prev_ident {
                        let after_prefix = if c == 'b' && next == Some('r') {
                            i + 2
                        } else if c == 'b' && next == Some('"') {
                            // byte string b"..."
                            code[i] = 'b';
                            code[i + 1] = '"';
                            cur_lit = Some((lineno, i, String::new()));
                            state = State::Str;
                            i += 2;
                            continue;
                        } else if c == 'r' {
                            i + 1
                        } else {
                            code[i] = c;
                            i += 1;
                            continue;
                        };
                        let mut hashes = 0;
                        while chars.get(after_prefix + hashes) == Some(&'#') {
                            hashes += 1;
                        }
                        if chars.get(after_prefix + hashes) == Some(&'"') {
                            code[i] = c;
                            code[after_prefix + hashes] = '"';
                            cur_lit = Some((lineno, i, String::new()));
                            state = State::RawStr(hashes);
                            i = after_prefix + hashes + 1;
                            continue;
                        }
                        // Not a raw string (raw identifier `r#ident`, or a
                        // bare `r`/`b` token): plain code.
                        code[i] = c;
                        i += 1;
                        continue;
                    }
                    if c == '\'' {
                        if next == Some('\\') {
                            // Escaped char literal: scan to the closing quote.
                            let mut j = i + 3; // skip ' \ and the escaped char
                            while j < chars.len() && chars[j] != '\'' {
                                j += 1;
                            }
                            code[i] = '\'';
                            if j < chars.len() {
                                code[j] = '\'';
                            }
                            i = j + 1;
                            continue;
                        }
                        if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                            // One-char literal like 'x'.
                            code[i] = '\'';
                            code[i + 2] = '\'';
                            i += 3;
                            continue;
                        }
                        // Lifetime (or label): keep the tick, move on.
                        code[i] = '\'';
                        i += 1;
                        continue;
                    }
                    code[i] = c;
                    i += 1;
                }
            }
        }

        // A string still open at EOL spans lines; record the newline.
        if let Some((_, _, lit)) = cur_lit.as_mut() {
            lit.push('\n');
        }
        out.lines.push(LineInfo {
            code: code.into_iter().collect(),
            comment,
        });
    }
    out
}

/// Mark the lines belonging to `#[cfg(test)]` items (in this codebase,
/// always `mod tests { ... }` blocks). Returns one flag per line.
///
/// The scan finds the first `{` after the attribute and brace-counts over the
/// blanked code text (string/comment braces are already erased). If a `;`
/// shows up before any `{`, the attribute guarded a non-block item and only
/// the lines up to the `;` are marked.
pub fn test_regions(lines: &[LineInfo]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth: usize = 0;
        let mut entered = false;
        let mut j = i;
        'scan: while j < lines.len() {
            for ch in lines[j].code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if entered && depth == 0 {
                            break 'scan;
                        }
                    }
                    ';' if !entered => break 'scan,
                    _ => {}
                }
            }
            j += 1;
        }
        let end = j.min(lines.len() - 1);
        for flag in &mut flags[i..=end] {
            *flag = true;
        }
        i = end + 1;
    }
    flags
}

/// Find the first string literal at or after `(line, col)` (1-based line).
pub fn first_string_after(lexed: &Lexed, line: usize, col: usize) -> Option<&StrLit> {
    lexed
        .strings
        .iter()
        .find(|s| s.line > line || (s.line == line && s.col >= col))
}

/// True if `needle` occurs in `hay` bounded by non-identifier chars.
pub fn has_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !hay[..at].chars().next_back().map(is_ident).unwrap_or(false);
        let after = at + needle.len();
        let after_ok =
            after >= hay.len() || !hay[after..].chars().next().map(is_ident).unwrap_or(false);
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let lexed = lex("let x = \"unsafe\"; // unsafe trailing\nunsafe { y() }\n");
        assert!(!lexed.lines[0].code.contains("unsafe"));
        assert!(lexed.lines[0].comment.contains("unsafe trailing"));
        assert!(lexed.lines[1].code.contains("unsafe"));
        assert_eq!(lexed.strings.len(), 1);
        assert_eq!(lexed.strings[0].value, "unsafe");
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let lexed =
            lex("let r = r#\"a \"quoted\" b\"#;\nlet c = '\\n';\nfn f<'a>(x: &'a str) {}\n");
        assert_eq!(lexed.strings[0].value, "a \"quoted\" b");
        assert!(!lexed.lines[1].code.contains('n') || lexed.lines[1].code.contains("let c"));
        assert!(lexed.lines[2].code.contains("fn f<'a>"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lexed = lex("/* outer /* inner */ still */ code()\n/* open\nmid\n*/ tail()\n");
        assert!(lexed.lines[0].code.contains("code()"));
        assert!(!lexed.lines[0].code.contains("inner"));
        assert!(lexed.lines[2].comment.contains("mid"));
        assert!(lexed.lines[3].code.contains("tail()"));
    }

    #[test]
    fn cfg_test_regions_cover_the_mod() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lexed = lex(src);
        let flags = test_regions(&lexed.lines);
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn multiline_strings_keep_state() {
        let lexed = lex("let s = \"line one\nline two\";\nlet t = 1;\n");
        assert_eq!(lexed.strings[0].value, "line one\nline two");
        assert!(lexed.lines[2].code.contains("let t"));
    }
}
