//! `abase-analysis`: a hand-rolled static analysis pass for this workspace.
//!
//! The workspace's concurrency core is hand-built (epoll event loop, striped
//! storage engine, group-commit WAL, replication sockets), so the invariants
//! that keep it correct live in comments and conventions rather than in the
//! type system. This crate mechanically enforces those conventions:
//!
//! * every `unsafe` block carries a `// SAFETY:` argument (A001);
//! * every non-`Relaxed` atomic ordering names its pairing site in an
//!   `// ORDER:` comment (A002);
//! * hot-crate production code never `.unwrap()`s and only `.expect(`s under
//!   an `// INVARIANT:` justification (A003);
//! * locking goes through the parking_lot shim / lockrank wrappers, never
//!   raw `std::sync` (A004);
//! * metric names follow the `abase_*` registry conventions (A005);
//! * every failpoint the chaos harness installs has a live fire site (A006).
//!
//! There is no `syn`, no proc-macro machinery, and no crates.io dependency:
//! a small line lexer ([`lexer`]) blanks comments and strings so the rules
//! ([`rules`]) can work on honest substring matches.
//!
//! Run it as `cargo run -p abase-analysis -- --deny`. Known, justified
//! findings can be parked in a committed baseline file; the goal state (and
//! the current state) is an **empty** baseline.

pub mod lexer;
pub mod rules;

pub use rules::{check_failpoints, check_file, CrossFile, FileCtx, Finding};

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never scanned (build output, VCS, fixture corpora).
const SKIP_DIRS: &[&str] = &["target", ".git", ".claude", "fixtures", "node_modules"];

/// Analyze a set of in-memory files (workspace-root-relative path, source).
///
/// This is the core entry point; [`scan_workspace`] is a thin walker on top
/// of it, and the fixture tests feed it synthetic trees directly.
pub fn analyze(files: &[(PathBuf, String)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut cross = CrossFile::default();
    for (rel, src) in files {
        let ctx = FileCtx::from_rel(rel);
        let lexed = lexer::lex(src);
        findings.extend(check_file(&ctx, &lexed, &mut cross));
    }
    findings.extend(check_failpoints(&cross));
    findings.sort();
    findings
}

/// Walk `root` for `.rs` files and run every rule over them.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(analyze(&files))
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<(PathBuf, String)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push((rel, fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// The committed set of known findings, keyed by `rule path:line`.
#[derive(Debug, Default)]
pub struct Baseline {
    keys: BTreeSet<String>,
}

impl Baseline {
    /// Load a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> io::Result<Baseline> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let keys = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(String::from)
            .collect();
        Ok(Baseline { keys })
    }

    /// Serialize `findings` as a baseline file.
    pub fn write(path: &Path, findings: &[Finding]) -> io::Result<()> {
        let mut text = String::from(
            "# abase-analysis baseline: one `RULE path:line` per line.\n\
             # Regenerate with `cargo run -p abase-analysis -- --write-baseline`.\n",
        );
        for f in findings {
            text.push_str(&f.key());
            text.push('\n');
        }
        fs::write(path, text)
    }

    /// True if `f` is already acknowledged.
    pub fn contains(&self, f: &Finding) -> bool {
        self.keys.contains(&f.key())
    }

    /// Baseline entries that no longer match any finding (fixed or drifted).
    pub fn stale<'a>(&'a self, findings: &[Finding]) -> Vec<&'a str> {
        let live: BTreeSet<String> = findings.iter().map(Finding::key).collect();
        self.keys
            .iter()
            .filter(|k| !live.contains(*k))
            .map(String::as_str)
            .collect()
    }

    /// Number of acknowledged findings.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the baseline acknowledges nothing (the goal state).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}
