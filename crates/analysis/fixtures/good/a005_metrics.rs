// Fixture: metric declarations following the registry conventions.

use abase_obs::{LazyCounter, LazyCounterFamily, LazyGauge, LazyHisto};

pub static OPS: LazyCounter = LazyCounter::new("abase_server_ops_total", "ops served");

pub static BYTES: LazyCounter =
    LazyCounter::new("abase_server_rx_bytes_total", "bytes received");

pub static LATENCY: LazyHisto =
    LazyHisto::new("abase_server_latency_micros", "request latency");

pub static BATCH: LazyHisto =
    LazyHisto::new("abase_server_batch_frames", "frames per batch");

pub static QUEUE: LazyGauge = LazyGauge::new("abase_queue_depth", "queue depth");

pub static PER_OP: LazyCounterFamily =
    LazyCounterFamily::new("abase_server_op_total", "op", "per-op counters");
