// Fixture: locking through the shim and atomics/channels from std::sync.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

pub struct State {
    inner: Mutex<u64>,
    ticks: AtomicU64,
}

pub fn bump(s: &Arc<State>) {
    *s.inner.lock() += 1;
    s.ticks.fetch_add(1, Ordering::Relaxed);
}

pub fn channel() -> (mpsc::Sender<u64>, mpsc::Receiver<u64>) {
    mpsc::channel()
}
