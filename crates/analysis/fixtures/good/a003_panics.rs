// Fixture: hot-crate code either propagates errors or justifies its expects.

use std::collections::BTreeMap;

pub fn lookup(map: &BTreeMap<u32, String>, key: u32) -> Option<&String> {
    map.get(&key)
}

pub fn first(values: &[u8]) -> u8 {
    // INVARIANT: the dispatcher only calls this with a frame it already
    // length-checked; an empty slice cannot reach here.
    *values.first().expect("caller promised a non-empty slice")
}

pub fn waived(values: &[u8]) -> u8 {
    // LINT: allow(A003): benchmark-only helper, panicking is the right call.
    *values.first().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        let mut m = BTreeMap::new();
        m.insert(1, "one".to_string());
        assert_eq!(lookup(&m, 1).unwrap(), "one");
    }
}
