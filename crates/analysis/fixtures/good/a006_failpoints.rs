// Fixture: every installed failpoint has a matching fire site.

use abase_util::failpoint::{self, FaultAction};

pub fn inject() {
    failpoint::install("wal.append", None, FaultAction::Error, 0, 1);
    failpoint::install(
        "db.checkpoint",
        None,
        FaultAction::DelayMs(5),
        0,
        2,
    );
}

pub fn hot_path(context: &str) {
    if failpoint::check("wal.append", context).is_some() {
        return;
    }
    let _ = failpoint::check("db.checkpoint", context);
}
