// Fixture: every unsafe site argues its safety.

pub fn read_raw(ptr: *const u8) -> u8 {
    // SAFETY: callers pass a pointer into a live, aligned buffer.
    unsafe { *ptr }
}

pub struct Wrapper(*mut u8);

// SAFETY: the pointer is owned exclusively by the wrapper and only
// dereferenced while holding the owning structure by value.
unsafe impl Send for Wrapper {}

/// Doc text mentioning unsafe code and `.unwrap()` must not trip anything.
pub fn doc_only() {
    let s = "unsafe in a string is not code";
    let _ = s;
}
