// Fixture: every strong ordering names its pairing site.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn publish(flag: &AtomicBool, seq: &AtomicU64) {
    // ORDER: SeqCst pairs with the SeqCst load in `drain` (not shown); the
    // counter orders against the flag publication below.
    seq.fetch_add(1, Ordering::SeqCst);
    // ORDER: Release pairs with the Acquire load in `consume`; publishes the
    // counter increment above.
    flag.store(true, Ordering::Release);
}

pub fn consume(flag: &AtomicBool) -> bool {
    // ORDER: Acquire pairs with the Release store in `publish`.
    flag.load(Ordering::Acquire)
}

pub fn relaxed_is_fine(seq: &AtomicU64) -> u64 {
    seq.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let flag = AtomicBool::new(false);
        flag.store(true, Ordering::SeqCst);
        assert!(flag.load(Ordering::SeqCst));
    }
}
