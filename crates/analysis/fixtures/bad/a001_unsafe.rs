// Fixture: unsafe block with no SAFETY justification anywhere nearby.

pub fn read_raw(ptr: *const u8) -> u8 {
    unsafe { *ptr }
}

pub struct Wrapper(*mut u8);

unsafe impl Send for Wrapper {}
