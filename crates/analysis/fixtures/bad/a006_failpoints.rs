// Fixture: installs a failpoint name that has no fire site anywhere.

use abase_util::failpoint::{self, FaultAction};

pub fn inject() {
    failpoint::install("wal.append", None, FaultAction::Error, 0, 1);
    failpoint::install("ghost.point", None, FaultAction::Error, 0, 1);
}
