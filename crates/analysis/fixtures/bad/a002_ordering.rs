// Fixture: strong atomic orderings with no ORDER pairing comment.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn publish(flag: &AtomicBool, seq: &AtomicU64) {
    seq.fetch_add(1, Ordering::SeqCst);
    flag.store(true, Ordering::Release);
}

pub fn consume(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Acquire)
}

pub fn relaxed_is_fine(seq: &AtomicU64) -> u64 {
    seq.load(Ordering::Relaxed)
}
