// Fixture: hot-crate production code panicking on Option/Result.
// Scanned as if it lived at crates/lavastore/src/<file>.rs.

use std::collections::BTreeMap;

pub fn lookup(map: &BTreeMap<u32, String>, key: u32) -> &String {
    map.get(&key).unwrap()
}

pub fn first(values: &[u8]) -> u8 {
    *values.first().expect("caller promised a non-empty slice")
}
