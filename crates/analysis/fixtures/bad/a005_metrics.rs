// Fixture: metric declarations violating every naming convention.

use abase_obs::{LazyCounter, LazyGauge, LazyHisto};

// Missing the abase_ namespace prefix.
pub static OPS: LazyCounter = LazyCounter::new("server_ops_total", "ops served");

// A counter must end in _total.
pub static ERRORS: LazyCounter = LazyCounter::new("abase_server_errors", "errors");

// A histogram needs a unit suffix.
pub static LATENCY: LazyHisto = LazyHisto::new("abase_server_latency", "latency");

// A gauge must not look cumulative.
pub static QUEUE: LazyGauge = LazyGauge::new("abase_queue_depth_total", "depth");
