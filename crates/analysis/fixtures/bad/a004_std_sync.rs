// Fixture: raw std::sync locks outside the shim crate.

use std::sync::Mutex;

pub struct State {
    inner: Mutex<u64>,
    table: std::sync::RwLock<Vec<u8>>,
}

pub fn bump(s: &State) {
    if let Ok(mut g) = s.inner.lock() {
        *g += 1;
    }
    drop(s.table.read());
}
