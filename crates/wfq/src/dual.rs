//! Dual-layer (CPU over I/O) weighted fair queueing and the per-node scheduler.
//!
//! A request admitted by the partition quota first enters the **CPU-WFQ** for
//! its class. The DataNode drains the CPU-WFQ each tick within an RU budget;
//! drained requests are checked against the node cache — hits complete
//! immediately, misses are pushed into the **I/O-WFQ**, which a thread pool
//! drains by IOPS (paper §4.3, Figure 2).
//!
//! The four practical rules from the paper are enforced here:
//!
//! * **Rule 1** — cost units differ per layer: the caller pushes RU costs into
//!   the CPU queue and IOPS costs into the I/O queue.
//! * **Rule 2** — per-tick concurrency limits for reads and writes, plus a
//!   total write-RU ceiling that shields LavaStore compaction from write
//!   bursts.
//! * **Rule 3** — one tenant may consume at most 90 % of a tick's CPU budget
//!   *when other tenants are waiting* (the cap is work-conserving: a lone
//!   tenant may use the whole budget).
//! * **Rule 4** — the I/O pool's basic threads are supplemented by extra
//!   threads reserved for *other* tenants whenever a single tenant monopolizes
//!   the basic pool.

use crate::class::QueueClass;
use crate::queue::{TenantId, WfqItem, WfqQueue};
use std::collections::HashMap;

/// Tuning knobs shared by the four dual-layer queues of a node.
#[derive(Debug, Clone, Copy)]
pub struct DualWfqConfig {
    /// Rule 3: a single tenant's maximum share of one tick's CPU budget when
    /// other tenants have queued requests. Paper value: 0.9.
    pub single_tenant_cpu_share: f64,
    /// Rule 2: maximum read requests scheduled per tick per class.
    pub max_reads_per_tick: usize,
    /// Rule 2: maximum write requests scheduled per tick per class.
    pub max_writes_per_tick: usize,
    /// Rule 2: ceiling on write RU per tick per class (compaction stability).
    pub write_ru_ceiling: f64,
}

impl Default for DualWfqConfig {
    fn default() -> Self {
        Self {
            single_tenant_cpu_share: 0.9,
            max_reads_per_tick: 4096,
            max_writes_per_tick: 2048,
            write_ru_ceiling: f64::INFINITY,
        }
    }
}

/// CPU budget for draining one class for one tick.
#[derive(Debug, Clone, Copy)]
pub struct CpuTickBudget {
    /// Request units the class may consume this tick.
    pub ru: f64,
}

/// I/O budget for draining one class for one tick, derived from its thread pool.
#[derive(Debug, Clone, Copy)]
pub struct IoTickBudget {
    /// IOPS capacity of the basic threads.
    pub basic_iops: f64,
    /// IOPS capacity of the extra threads (Rule 4: non-monopolist tenants only).
    pub extra_iops: f64,
}

/// The I/O-WFQ thread pool model: `basic` threads serve everyone in VFT order;
/// `extra` threads activate only for non-monopolizing tenants (Rule 4).
#[derive(Debug, Clone, Copy)]
pub struct IoThreadPool {
    /// Always-on worker threads.
    pub basic_threads: usize,
    /// Standby threads for Rule 4.
    pub extra_threads: usize,
    /// I/O operations one thread completes per tick.
    pub iops_per_thread: f64,
}

impl IoThreadPool {
    /// The per-tick budget this pool provides.
    pub fn tick_budget(&self) -> IoTickBudget {
        IoTickBudget {
            basic_iops: self.basic_threads as f64 * self.iops_per_thread,
            extra_iops: self.extra_threads as f64 * self.iops_per_thread,
        }
    }
}

impl Default for IoThreadPool {
    fn default() -> Self {
        Self {
            basic_threads: 8,
            extra_threads: 2,
            iops_per_thread: 100.0,
        }
    }
}

/// One dual-layer WFQ: a CPU queue stacked on an I/O queue.
#[derive(Debug)]
pub struct DualWfq<T> {
    /// Upper layer; push with RU cost.
    cpu: WfqQueue<T>,
    /// Lower layer; push with IOPS cost (cache misses only).
    io: WfqQueue<T>,
    config: DualWfqConfig,
}

impl<T> DualWfq<T> {
    /// An empty dual queue with the given rules.
    pub fn new(config: DualWfqConfig) -> Self {
        Self {
            cpu: WfqQueue::new(),
            io: WfqQueue::new(),
            config,
        }
    }

    /// Queue a request into the CPU layer (cost = RU, Rule 1).
    pub fn push_cpu(&mut self, item: WfqItem<T>) {
        self.cpu.push(item);
    }

    /// Queue a cache-missing request into the I/O layer (cost = IOPS, Rule 1).
    pub fn push_io(&mut self, item: WfqItem<T>) {
        self.io.push(item);
    }

    /// Requests waiting in the CPU layer.
    pub fn cpu_depth(&self) -> usize {
        self.cpu.len()
    }

    /// Requests of `tenant` waiting in the CPU layer.
    pub fn cpu_tenant_depth(&self, tenant: TenantId) -> usize {
        self.cpu.tenant_depth(tenant)
    }

    /// Requests waiting in the I/O layer.
    pub fn io_depth(&self) -> usize {
        self.io.len()
    }

    /// Drain the CPU layer for one tick.
    ///
    /// `is_write_class` selects which Rule 2 limits apply. Returns the
    /// scheduled requests in service order and the RU actually consumed.
    pub fn drain_cpu(
        &mut self,
        budget: CpuTickBudget,
        is_write_class: bool,
    ) -> (Vec<WfqItem<T>>, f64) {
        let max_count = if is_write_class {
            self.config.max_writes_per_tick
        } else {
            self.config.max_reads_per_tick
        };
        let ru_cap = if is_write_class {
            budget.ru.min(self.config.write_ru_ceiling)
        } else {
            budget.ru
        };
        let tenant_cap = self.config.single_tenant_cpu_share * ru_cap;
        let mut consumed: HashMap<TenantId, f64> = HashMap::new();
        let mut total = 0.0_f64;
        let mut out = Vec::new();
        while out.len() < max_count && total < ru_cap {
            let multi_tenant = self.cpu_distinct_tenants() > 1;
            let item = self.cpu.pop_eligible(|t| {
                // Rule 3 applies only while other tenants are waiting.
                !multi_tenant || consumed.get(&t).copied().unwrap_or(0.0) < tenant_cap
            });
            let Some(item) = item else { break };
            // Admit an item that overshoots the budget only as the first item
            // of the tick, so oversized requests still make progress.
            if total + item.cost > ru_cap && !out.is_empty() {
                // Return it to the queue head-equivalent: re-push keeps its
                // tenant VFT monotone (slightly pessimistic, acceptable).
                self.cpu.push(item);
                break;
            }
            total += item.cost;
            *consumed.entry(item.tenant).or_insert(0.0) += item.cost;
            out.push(item);
        }
        (out, total)
    }

    /// Drain the I/O layer for one tick using the pool budget.
    ///
    /// Returns the scheduled requests and the IOPS consumed. Rule 4: extra
    /// capacity is granted only to tenants other than the one that monopolized
    /// the basic threads.
    pub fn drain_io(&mut self, budget: IoTickBudget) -> (Vec<WfqItem<T>>, f64) {
        let mut out = Vec::new();
        let mut consumed: HashMap<TenantId, f64> = HashMap::new();
        let mut total = 0.0_f64;
        // Phase 1: basic threads serve strictly by VFT.
        while total < budget.basic_iops {
            let Some(item) = self.io.pop() else { break };
            if total + item.cost > budget.basic_iops && !out.is_empty() {
                self.io.push(item);
                break;
            }
            total += item.cost;
            *consumed.entry(item.tenant).or_insert(0.0) += item.cost;
            out.push(item);
        }
        // Phase 2 (Rule 4): if a single tenant received all basic service and
        // other tenants are still queued, extra threads serve only the others.
        let monopolist = if consumed.len() == 1 {
            consumed.keys().next().copied()
        } else {
            None
        };
        if let Some(mono) = monopolist {
            let mut extra_used = 0.0_f64;
            while extra_used < budget.extra_iops {
                let Some(item) = self.io.pop_eligible(|t| t != mono) else {
                    break;
                };
                if extra_used + item.cost > budget.extra_iops && extra_used > 0.0 {
                    self.io.push(item);
                    break;
                }
                extra_used += item.cost;
                total += item.cost;
                out.push(item);
            }
        }
        (out, total)
    }

    fn cpu_distinct_tenants(&self) -> usize {
        self.cpu.distinct_tenants()
    }
}

/// Per-node scheduler: the four class queues plus budget allocation.
#[derive(Debug, Clone)]
pub struct NodeSchedulerConfig {
    /// Small/large boundary in bytes.
    pub large_threshold: usize,
    /// Guaranteed share of the node CPU budget per class
    /// (small-read, large-read, small-write, large-write); should sum to 1.
    pub class_cpu_share: [f64; 4],
    /// Rules shared by all four dual queues.
    pub dual: DualWfqConfig,
    /// One I/O thread pool per class (Figure 2 shows a pool per dual queue).
    pub io_pool: IoThreadPool,
}

impl Default for NodeSchedulerConfig {
    fn default() -> Self {
        Self {
            large_threshold: crate::class::DEFAULT_LARGE_THRESHOLD,
            class_cpu_share: [0.4, 0.2, 0.25, 0.15],
            dual: DualWfqConfig::default(),
            io_pool: IoThreadPool::default(),
        }
    }
}

/// The four dual-layer WFQs of one DataNode, with work-conserving budget split.
#[derive(Debug)]
pub struct NodeScheduler<T> {
    classes: [DualWfq<T>; 4],
    config: NodeSchedulerConfig,
}

impl<T> NodeScheduler<T> {
    /// A scheduler with the given configuration.
    pub fn new(config: NodeSchedulerConfig) -> Self {
        let mk = || DualWfq::new(config.dual);
        Self {
            classes: [mk(), mk(), mk(), mk()],
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &NodeSchedulerConfig {
        &self.config
    }

    /// Classify a request by direction and size.
    pub fn classify(&self, is_write: bool, size_bytes: usize) -> QueueClass {
        QueueClass::classify(is_write, size_bytes, self.config.large_threshold)
    }

    /// Push a request into the CPU layer of its class.
    pub fn push_cpu(&mut self, class: QueueClass, item: WfqItem<T>) {
        self.classes[class.index()].push_cpu(item);
    }

    /// Push a cache-missing request into the I/O layer of its class.
    pub fn push_io(&mut self, class: QueueClass, item: WfqItem<T>) {
        self.classes[class.index()].push_io(item);
    }

    /// Total queued requests in the CPU layers.
    pub fn cpu_depth(&self) -> usize {
        self.classes.iter().map(DualWfq::cpu_depth).sum()
    }

    /// Queued CPU-layer requests belonging to `tenant`, across classes.
    pub fn cpu_tenant_depth(&self, tenant: TenantId) -> usize {
        self.classes
            .iter()
            .map(|c| c.cpu_tenant_depth(tenant))
            .sum()
    }

    /// Total queued requests in the I/O layers.
    pub fn io_depth(&self) -> usize {
        self.classes.iter().map(DualWfq::io_depth).sum()
    }

    /// Drain all CPU layers for one tick with a total RU budget.
    ///
    /// Each class first receives its guaranteed share; leftover budget is then
    /// re-offered to classes that still have queued work (work conservation).
    /// Returns `(class, item)` pairs in service order per class.
    pub fn drain_cpu_tick(&mut self, total_ru: f64) -> Vec<(QueueClass, WfqItem<T>)> {
        let mut out = Vec::new();
        let mut leftover = 0.0_f64;
        for class in QueueClass::ALL {
            let share = self.config.class_cpu_share[class.index()];
            let budget = CpuTickBudget {
                ru: total_ru * share,
            };
            let (items, used) = self.classes[class.index()].drain_cpu(budget, class.is_write());
            leftover += (total_ru * share - used).max(0.0);
            out.extend(items.into_iter().map(|i| (class, i)));
        }
        // Second, work-conserving pass over classes with remaining queue depth.
        if leftover > 0.0 {
            for class in QueueClass::ALL {
                if leftover <= 0.0 {
                    break;
                }
                if self.classes[class.index()].cpu_depth() == 0 {
                    continue;
                }
                let (items, used) = self.classes[class.index()]
                    .drain_cpu(CpuTickBudget { ru: leftover }, class.is_write());
                leftover -= used;
                out.extend(items.into_iter().map(|i| (class, i)));
            }
        }
        out
    }

    /// Drain all I/O layers for one tick; each class uses its own thread pool.
    pub fn drain_io_tick(&mut self) -> Vec<(QueueClass, WfqItem<T>)> {
        let budget = self.config.io_pool.tick_budget();
        let mut out = Vec::new();
        for class in QueueClass::ALL {
            let (items, _) = self.classes[class.index()].drain_io(budget);
            out.extend(items.into_iter().map(|i| (class, i)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(tenant: TenantId, cost: f64) -> WfqItem<u32> {
        WfqItem {
            tenant,
            cost,
            weight: 0.5,
            payload: 0,
        }
    }

    #[test]
    fn rule3_caps_single_tenant_when_others_wait() {
        let mut q = DualWfq::new(DualWfqConfig {
            single_tenant_cpu_share: 0.9,
            ..Default::default()
        });
        // Tenant 1 floods; tenant 2 queues a little.
        for _ in 0..100 {
            q.push_cpu(item(1, 1.0));
        }
        for _ in 0..10 {
            q.push_cpu(item(2, 1.0));
        }
        let (scheduled, used) = q.drain_cpu(CpuTickBudget { ru: 20.0 }, false);
        let t1_ru: f64 = scheduled
            .iter()
            .filter(|i| i.tenant == 1)
            .map(|i| i.cost)
            .sum();
        assert!(t1_ru <= 0.9 * 20.0 + 1.0, "tenant 1 used {t1_ru} RU");
        assert!(scheduled.iter().any(|i| i.tenant == 2), "tenant 2 starved");
        assert!(used <= 20.0 + 1.0);
    }

    #[test]
    fn rule3_cap_is_work_conserving_for_lone_tenant() {
        let mut q = DualWfq::new(DualWfqConfig::default());
        for _ in 0..100 {
            q.push_cpu(item(1, 1.0));
        }
        let (scheduled, used) = q.drain_cpu(CpuTickBudget { ru: 20.0 }, false);
        // A lone tenant gets the full budget, not 90 %.
        assert_eq!(scheduled.len(), 20);
        assert!((used - 20.0).abs() < 1e-9);
    }

    #[test]
    fn rule2_write_ceiling_limits_write_ru() {
        let mut q = DualWfq::new(DualWfqConfig {
            write_ru_ceiling: 5.0,
            ..Default::default()
        });
        for _ in 0..100 {
            q.push_cpu(item(1, 1.0));
        }
        let (_, used) = q.drain_cpu(CpuTickBudget { ru: 50.0 }, true);
        assert!(used <= 5.0 + 1e-9, "write RU {used} exceeds ceiling");
        // Reads are unaffected by the write ceiling.
        let mut r = DualWfq::new(DualWfqConfig {
            write_ru_ceiling: 5.0,
            ..Default::default()
        });
        for _ in 0..100 {
            r.push_cpu(item(1, 1.0));
        }
        let (_, used_r) = r.drain_cpu(CpuTickBudget { ru: 50.0 }, false);
        assert!((used_r - 50.0).abs() < 1e-9);
    }

    #[test]
    fn rule2_concurrency_limit_bounds_scheduled_count() {
        let mut q = DualWfq::new(DualWfqConfig {
            max_reads_per_tick: 3,
            ..Default::default()
        });
        for _ in 0..10 {
            q.push_cpu(item(1, 0.1));
        }
        let (scheduled, _) = q.drain_cpu(CpuTickBudget { ru: 100.0 }, false);
        assert_eq!(scheduled.len(), 3);
        assert_eq!(q.cpu_depth(), 7);
    }

    #[test]
    fn oversized_first_item_still_progresses() {
        let mut q = DualWfq::new(DualWfqConfig::default());
        q.push_cpu(item(1, 100.0));
        let (scheduled, used) = q.drain_cpu(CpuTickBudget { ru: 1.0 }, false);
        assert_eq!(scheduled.len(), 1);
        assert!((used - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rule4_extra_threads_rescue_other_tenants() {
        let mut q = DualWfq::new(DualWfqConfig::default());
        // Tenant 1 monopolizes; tenant 2 queues behind with higher VFTs.
        for _ in 0..50 {
            q.push_io(item(1, 1.0));
        }
        for _ in 0..5 {
            q.push_io(item(2, 1.0));
        }
        // Basic can serve 10 ops; tenant 1's first 10 VFTs (2,4,..20) are all
        // below tenant 2's first (2 because weight .5... both weights equal) —
        // craft the budget so phase 1 is all tenant 1.
        let budget = IoTickBudget {
            basic_iops: 4.0,
            extra_iops: 3.0,
        };
        let (scheduled, total) = q.drain_io(budget);
        let t1 = scheduled.iter().filter(|i| i.tenant == 1).count();
        let t2 = scheduled.iter().filter(|i| i.tenant == 2).count();
        // Interleaving may schedule tenant 2 in phase 1; if not, Rule 4 must.
        assert!(t2 >= 1, "tenant 2 starved: t1={t1}, t2={t2}");
        assert!(total <= 7.0 + 1e-9);
    }

    #[test]
    fn rule4_no_extra_capacity_without_monopoly() {
        let mut q = DualWfq::new(DualWfqConfig::default());
        for _ in 0..10 {
            q.push_io(item(1, 1.0));
            q.push_io(item(2, 1.0));
        }
        let budget = IoTickBudget {
            basic_iops: 4.0,
            extra_iops: 100.0,
        };
        let (scheduled, _) = q.drain_io(budget);
        // Both tenants served in phase 1 ⇒ no monopoly ⇒ extra stays idle.
        assert_eq!(scheduled.len(), 4);
    }

    #[test]
    fn node_scheduler_routes_classes_independently() {
        let mut ns: NodeScheduler<u32> = NodeScheduler::new(NodeSchedulerConfig::default());
        let small_read = ns.classify(false, 100);
        let large_write = ns.classify(true, 1 << 20);
        assert_eq!(small_read, QueueClass::SmallRead);
        assert_eq!(large_write, QueueClass::LargeWrite);
        ns.push_cpu(small_read, item(1, 1.0));
        ns.push_cpu(large_write, item(2, 1.0));
        assert_eq!(ns.cpu_depth(), 2);
        let scheduled = ns.drain_cpu_tick(100.0);
        assert_eq!(scheduled.len(), 2);
        assert_eq!(ns.cpu_depth(), 0);
    }

    #[test]
    fn node_scheduler_is_work_conserving_across_classes() {
        let mut ns: NodeScheduler<u32> = NodeScheduler::new(NodeSchedulerConfig::default());
        // Only small reads queued: they should be able to use ~all of the node
        // budget, not just their 40 % share.
        for _ in 0..100 {
            ns.push_cpu(QueueClass::SmallRead, item(1, 1.0));
        }
        let scheduled = ns.drain_cpu_tick(50.0);
        assert!(
            scheduled.len() >= 49,
            "only {} scheduled of a 50 RU budget",
            scheduled.len()
        );
    }

    #[test]
    fn io_tick_drains_each_class_pool() {
        let mut ns: NodeScheduler<u32> = NodeScheduler::new(NodeSchedulerConfig {
            io_pool: IoThreadPool {
                basic_threads: 1,
                extra_threads: 0,
                iops_per_thread: 2.0,
            },
            ..Default::default()
        });
        for _ in 0..10 {
            ns.push_io(QueueClass::SmallRead, item(1, 1.0));
            ns.push_io(QueueClass::LargeRead, item(1, 1.0));
        }
        let scheduled = ns.drain_io_tick();
        // 2 IOPS per class pool, two classes queued.
        assert_eq!(scheduled.len(), 4);
        assert_eq!(ns.io_depth(), 16);
    }
}
