//! The core weighted fair queue: a min-heap over virtual finish times.
//!
//! "WFQ acts as a min-heap to prioritize requests with the customized smallest
//! virtual finish time (VFT)" (§4.3). The VFT of a request from tenant `T` is
//!
//! ```text
//! wPartition(Q_i) = Q_i / Σ Q_p            // partition's share of node quota
//! wReqCost(Q_i)   = Cost(Q_i) / wPartition(Q_i)
//! VFT(Q_i)        = preVFT_T + wReqCost(Q_i)
//! ```
//!
//! i.e. costs are scaled down for tenants holding a larger share of the node's
//! quota, and VFTs accumulate per tenant so no tenant is "consistently
//! prioritized high, even if that tenant has a larger partition quota or lower
//! request costs".

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Identifier for the tenant (or partition) owning a queued request.
pub type TenantId = u32;

/// A request queued for fair scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct WfqItem<T> {
    /// Owning tenant.
    pub tenant: TenantId,
    /// Scheduling cost: RU in the CPU-WFQ, IOPS in the I/O-WFQ (Rule 1).
    pub cost: f64,
    /// The tenant's weight — its share of the node's total partition quota
    /// (`wPartition`), in `(0, 1]`.
    pub weight: f64,
    /// Caller payload carried through scheduling.
    pub payload: T,
}

#[derive(Debug)]
struct HeapEntry<T> {
    vft: f64,
    /// FIFO tie-break so equal VFTs pop in arrival order (determinism).
    seq: u64,
    item: WfqItem<T>,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.vft == other.vft && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for min-VFT-first.
        other
            .vft
            .partial_cmp(&self.vft)
            .expect("VFT is finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A weighted fair queue over per-tenant cumulative virtual finish times.
#[derive(Debug)]
pub struct WfqQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    /// preVFT per tenant: the finish time of the tenant's last enqueued request.
    tenant_vft: HashMap<TenantId, f64>,
    /// Queue virtual time: advances to the VFT of each dequeued request.
    virtual_time: f64,
    seq: u64,
    /// Count of items per tenant currently queued.
    tenant_depth: HashMap<TenantId, usize>,
}

impl<T> Default for WfqQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WfqQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            tenant_vft: HashMap::new(),
            virtual_time: 0.0,
            seq: 0,
            tenant_depth: HashMap::new(),
        }
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Queued requests belonging to `tenant`.
    pub fn tenant_depth(&self, tenant: TenantId) -> usize {
        self.tenant_depth.get(&tenant).copied().unwrap_or(0)
    }

    /// Number of distinct tenants with queued requests.
    pub fn distinct_tenants(&self) -> usize {
        self.tenant_depth.len()
    }

    /// Current queue virtual time.
    pub fn virtual_time(&self) -> f64 {
        self.virtual_time
    }

    /// Enqueue a request, computing its VFT from the tenant's cumulative
    /// virtual time and the quota-weighted cost.
    ///
    /// # Panics
    /// Panics if `weight` is not in `(0, 1]` or `cost` is negative/NaN.
    pub fn push(&mut self, item: WfqItem<T>) {
        assert!(
            item.weight > 0.0 && item.weight <= 1.0,
            "weight must be in (0, 1]"
        );
        assert!(item.cost >= 0.0, "cost must be non-negative");
        let w_req_cost = item.cost / item.weight;
        // A tenant idle since before the current virtual time restarts at the
        // queue's virtual time (standard WFQ); an active tenant accumulates.
        let pre = self
            .tenant_vft
            .get(&item.tenant)
            .copied()
            .unwrap_or(self.virtual_time)
            .max(self.virtual_time);
        let vft = pre + w_req_cost;
        self.tenant_vft.insert(item.tenant, vft);
        *self.tenant_depth.entry(item.tenant).or_insert(0) += 1;
        self.heap.push(HeapEntry {
            vft,
            seq: self.seq,
            item,
        });
        self.seq += 1;
    }

    /// Dequeue the request with the smallest VFT.
    pub fn pop(&mut self) -> Option<WfqItem<T>> {
        let entry = self.heap.pop()?;
        self.virtual_time = self.virtual_time.max(entry.vft);
        self.note_removed(entry.item.tenant);
        Some(entry.item)
    }

    /// Dequeue the lowest-VFT request whose tenant satisfies `eligible`.
    ///
    /// Ineligible requests keep their original VFT and remain queued (they are
    /// temporarily set aside and restored). Used for Rule 3's 90 % single-tenant
    /// cap: when one tenant has consumed its share for this tick, the scheduler
    /// skips it but must not reorder or re-price its queued work.
    pub fn pop_eligible(
        &mut self,
        mut eligible: impl FnMut(TenantId) -> bool,
    ) -> Option<WfqItem<T>> {
        let mut set_aside = Vec::new();
        let mut found = None;
        while let Some(entry) = self.heap.pop() {
            if eligible(entry.item.tenant) {
                found = Some(entry);
                break;
            }
            set_aside.push(entry);
        }
        for entry in set_aside {
            self.heap.push(entry);
        }
        let entry = found?;
        self.virtual_time = self.virtual_time.max(entry.vft);
        self.note_removed(entry.item.tenant);
        Some(entry.item)
    }

    /// Peek at the smallest-VFT request without removing it.
    pub fn peek(&self) -> Option<&WfqItem<T>> {
        self.heap.peek().map(|e| &e.item)
    }

    /// Drop every queued request, returning them in arbitrary order.
    pub fn drain_all(&mut self) -> Vec<WfqItem<T>> {
        self.tenant_depth.clear();
        self.heap.drain().map(|e| e.item).collect()
    }

    fn note_removed(&mut self, tenant: TenantId) {
        if let Some(d) = self.tenant_depth.get_mut(&tenant) {
            *d -= 1;
            if *d == 0 {
                self.tenant_depth.remove(&tenant);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(tenant: TenantId, cost: f64, weight: f64) -> WfqItem<u32> {
        WfqItem {
            tenant,
            cost,
            weight,
            payload: 0,
        }
    }

    #[test]
    fn equal_weights_interleave_fairly() {
        let mut q = WfqQueue::new();
        // Tenant 1 floods 6 requests; tenant 2 enqueues 3. Equal weights and
        // costs: dequeue order must interleave rather than drain tenant 1 first.
        for _ in 0..6 {
            q.push(item(1, 1.0, 0.5));
        }
        for _ in 0..3 {
            q.push(item(2, 1.0, 0.5));
        }
        let order: Vec<_> = (0..9).map(|_| q.pop().unwrap().tenant).collect();
        // First six pops must contain all three tenant-2 requests.
        let t2_in_first6 = order[..6].iter().filter(|&&t| t == 2).count();
        assert_eq!(t2_in_first6, 3, "order={order:?}");
    }

    #[test]
    fn higher_weight_gets_proportionally_more_service() {
        let mut q = WfqQueue::new();
        // Tenant 1 has 3x the weight of tenant 2; both flood.
        for _ in 0..40 {
            q.push(item(1, 1.0, 0.75));
            q.push(item(2, 1.0, 0.25));
        }
        let first20: Vec<_> = (0..20).map(|_| q.pop().unwrap().tenant).collect();
        let t1 = first20.iter().filter(|&&t| t == 1).count();
        // Expect roughly 3:1 service (15 of 20), allow slack of 1.
        assert!((14..=16).contains(&t1), "t1 got {t1} of 20: {first20:?}");
    }

    #[test]
    fn cumulative_vft_prevents_low_cost_monopoly() {
        let mut q = WfqQueue::new();
        // Tenant 1 sends many tiny requests, tenant 2 one large request.
        // Tenant 2's request must not starve behind all of tenant 1's.
        for _ in 0..100 {
            q.push(item(1, 0.1, 0.5));
        }
        q.push(item(2, 5.0, 0.5));
        let mut pos = None;
        for i in 0..101 {
            if q.pop().unwrap().tenant == 2 {
                pos = Some(i);
                break;
            }
        }
        // VFT of tenant 2 = 10.0 (5.0/0.5); tenant 1's requests reach VFT 10
        // after 50 requests (0.1/0.5 each). So tenant 2 pops around index 50.
        let pos = pos.expect("tenant 2 scheduled");
        assert!((45..=55).contains(&pos), "tenant 2 scheduled at {pos}");
    }

    #[test]
    fn idle_tenant_rejoins_at_queue_virtual_time() {
        let mut q = WfqQueue::new();
        for _ in 0..10 {
            q.push(item(1, 1.0, 0.5));
        }
        for _ in 0..10 {
            q.pop();
        }
        // Tenant 2 was idle the whole time; its first request must not be
        // back-dated to VFT 0 (which would let it burst ahead unfairly *and*
        // must not be penalized by tenant 1's accumulated VFT).
        q.push(item(2, 1.0, 0.5));
        q.push(item(1, 1.0, 0.5));
        // Tenant 1 resumes from its accumulated VFT (20.0); tenant 2 starts at
        // the queue virtual time (20.0). Tenant 2 arrived first with equal VFT
        // base, so it pops first on cost parity.
        assert_eq!(q.pop().unwrap().tenant, 2);
    }

    #[test]
    fn pop_eligible_skips_but_preserves_queue() {
        let mut q = WfqQueue::new();
        q.push(item(1, 1.0, 0.5));
        q.push(item(2, 2.0, 0.5));
        // Skip tenant 1.
        let got = q.pop_eligible(|t| t != 1).unwrap();
        assert_eq!(got.tenant, 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().tenant, 1);
    }

    #[test]
    fn pop_eligible_returns_none_when_no_tenant_qualifies() {
        let mut q = WfqQueue::new();
        q.push(item(1, 1.0, 0.5));
        assert!(q.pop_eligible(|_| false).is_none());
        assert_eq!(q.len(), 1, "ineligible item must remain queued");
    }

    #[test]
    fn fifo_tie_break_is_deterministic() {
        let mut q = WfqQueue::new();
        q.push(WfqItem {
            tenant: 1,
            cost: 1.0,
            weight: 1.0,
            payload: 10,
        });
        q.push(WfqItem {
            tenant: 2,
            cost: 1.0,
            weight: 1.0,
            payload: 20,
        });
        // Equal VFT (both 1.0): arrival order wins.
        assert_eq!(q.pop().unwrap().payload, 10);
        assert_eq!(q.pop().unwrap().payload, 20);
    }

    #[test]
    fn tenant_depth_tracks_queue_contents() {
        let mut q = WfqQueue::new();
        q.push(item(7, 1.0, 0.5));
        q.push(item(7, 1.0, 0.5));
        assert_eq!(q.tenant_depth(7), 2);
        q.pop();
        assert_eq!(q.tenant_depth(7), 1);
        q.pop();
        assert_eq!(q.tenant_depth(7), 0);
    }

    #[test]
    #[should_panic(expected = "weight must be in (0, 1]")]
    fn zero_weight_rejected() {
        let mut q = WfqQueue::new();
        q.push(item(1, 1.0, 0.0));
    }

    #[test]
    fn virtual_time_monotone() {
        let mut q = WfqQueue::new();
        q.push(item(1, 3.0, 1.0));
        q.push(item(2, 1.0, 1.0));
        let mut last = 0.0;
        while q.pop().is_some() {
            assert!(q.virtual_time() >= last);
            last = q.virtual_time();
        }
    }
}
