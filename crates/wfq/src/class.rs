//! Request classification into the four independent dual-layer WFQs.
//!
//! "All requests are categorized into four independent dual-layer WFQs based on
//! their type (read/write) and their size (large/small)" (§4.3). Separating the
//! classes prevents interference between heavyweight and lightweight requests —
//! the failure mode 2DFQ identifies in single-queue fair schedulers.

/// The four scheduling classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueClass {
    /// Reads at or below the size threshold.
    SmallRead,
    /// Reads above the size threshold.
    LargeRead,
    /// Writes at or below the size threshold.
    SmallWrite,
    /// Writes above the size threshold.
    LargeWrite,
}

impl QueueClass {
    /// All classes, in a fixed order (used for budget allocation).
    pub const ALL: [QueueClass; 4] = [
        QueueClass::SmallRead,
        QueueClass::LargeRead,
        QueueClass::SmallWrite,
        QueueClass::LargeWrite,
    ];

    /// Classify a request by direction and payload size.
    ///
    /// `large_threshold` is the boundary in bytes between "small" and "large";
    /// ABase defaults it to 4 KiB (two RU units), separating e.g. 0.1 KB comment
    /// reads from 10 KB advertisement blobs (Table 1).
    pub fn classify(is_write: bool, size_bytes: usize, large_threshold: usize) -> Self {
        match (is_write, size_bytes > large_threshold) {
            (false, false) => QueueClass::SmallRead,
            (false, true) => QueueClass::LargeRead,
            (true, false) => QueueClass::SmallWrite,
            (true, true) => QueueClass::LargeWrite,
        }
    }

    /// Stable dense index for array-backed per-class state.
    pub fn index(self) -> usize {
        match self {
            QueueClass::SmallRead => 0,
            QueueClass::LargeRead => 1,
            QueueClass::SmallWrite => 2,
            QueueClass::LargeWrite => 3,
        }
    }

    /// True for the two read classes.
    pub fn is_read(self) -> bool {
        matches!(self, QueueClass::SmallRead | QueueClass::LargeRead)
    }

    /// True for the two write classes.
    pub fn is_write(self) -> bool {
        !self.is_read()
    }
}

/// Default boundary between small and large requests (bytes).
pub const DEFAULT_LARGE_THRESHOLD: usize = 4 << 10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_covers_quadrants() {
        let th = DEFAULT_LARGE_THRESHOLD;
        assert_eq!(QueueClass::classify(false, 100, th), QueueClass::SmallRead);
        assert_eq!(
            QueueClass::classify(false, th + 1, th),
            QueueClass::LargeRead
        );
        assert_eq!(QueueClass::classify(true, th, th), QueueClass::SmallWrite);
        assert_eq!(
            QueueClass::classify(true, 1 << 20, th),
            QueueClass::LargeWrite
        );
    }

    #[test]
    fn indexes_are_dense_and_distinct() {
        let mut seen = [false; 4];
        for c in QueueClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn read_write_predicates() {
        assert!(QueueClass::SmallRead.is_read());
        assert!(QueueClass::LargeRead.is_read());
        assert!(QueueClass::SmallWrite.is_write());
        assert!(QueueClass::LargeWrite.is_write());
    }
}
