//! # abase-wfq
//!
//! ABase's dual-layer Weighted Fair Queueing (paper §4.3).
//!
//! Every DataNode hosts partitions of many tenants; requests that survive quota
//! admission compete for the node's CPU and disk. ABase schedules them with:
//!
//! * **Four independent dual-layer WFQs**, one per [`class::QueueClass`]
//!   (read/write × small/large), "ensuring closely matched request latencies
//!   within each queue type" as 2DFQ observes for mixed request weights.
//! * A **CPU-WFQ** upper layer whose request cost is the request's RU (Rule 1),
//!   with read/write concurrency limits and a write-RU ceiling protecting the
//!   storage engine during compaction (Rule 2), and a 90 % single-tenant share
//!   cap (Rule 3).
//! * An **I/O-WFQ** lower layer, entered only on a data-node cache miss, whose
//!   cost is the request's IOPS ("a single I/O operation generally has a similar
//!   execution time"), executed by a pool of basic threads plus extra threads
//!   that activate only when one tenant monopolizes the basic pool (Rule 4).
//!
//! Virtual finish times are cumulative **per tenant** — "preVFT_Ti +
//! wReqCost(Q_i)" — so a tenant with a large quota cannot indefinitely
//! front-run others, and costs are weighted by the partition's share of the
//! node's quota (`wPartition`).

#![deny(missing_docs)]

pub mod class;
pub mod dual;
pub mod queue;

pub use class::QueueClass;
pub use dual::{
    CpuTickBudget, DualWfq, DualWfqConfig, IoThreadPool, IoTickBudget, NodeScheduler,
    NodeSchedulerConfig,
};
pub use queue::{WfqItem, WfqQueue};
